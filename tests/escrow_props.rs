//! Property tests for the escrow extension: under arbitrary interleavings of
//! requests, commits and aborts, the guaranteed-bounds invariant holds and
//! every granted operation is safe in every serialization.

use ccr::core::ids::TxnId;
use ccr::runtime::escrow::{EscrowObject, EscrowOutcome};
use ccr::runtime::TxnError;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Ev {
    Credit(u8, u64),
    Debit(u8, u64),
    Commit(u8),
    Abort(u8),
}

fn events() -> impl Strategy<Value = Vec<Ev>> {
    let ev = prop_oneof![
        ((0u8..4), (1u64..30)).prop_map(|(t, n)| Ev::Credit(t, n)),
        ((0u8..4), (1u64..30)).prop_map(|(t, n)| Ev::Debit(t, n)),
        (0u8..4).prop_map(Ev::Commit),
        (0u8..4).prop_map(Ev::Abort),
    ];
    prop::collection::vec(ev, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying any prefix: the committed balance stays in `0..=cap`, the
    /// bounds interval stays within `0..=cap` and always contains the
    /// committed balance of every possible completion (checked by actually
    /// completing with both extremes: abort-all and commit-all).
    #[test]
    fn escrow_bounds_are_sound(cap in 20u64..120, initial_frac in 0u64..100, evs in events()) {
        let initial = cap * initial_frac / 100;
        let mut e = EscrowObject::new(cap, initial);
        // Track live transactions for the completion replays.
        let mut live: Vec<TxnId> = Vec::new();
        for ev in &evs {
            match ev {
                Ev::Credit(t, n) => {
                    let t = TxnId(*t as u32);
                    match e.credit(t, *n) {
                        Ok(EscrowOutcome::Ok) => {
                            if !live.contains(&t) { live.push(t); }
                        }
                        Ok(EscrowOutcome::No) | Err(TxnError::Blocked { .. }) => {}
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
                Ev::Debit(t, n) => {
                    let t = TxnId(*t as u32);
                    match e.debit(t, *n) {
                        Ok(EscrowOutcome::Ok) => {
                            if !live.contains(&t) { live.push(t); }
                        }
                        Ok(EscrowOutcome::No) | Err(TxnError::Blocked { .. }) => {}
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
                Ev::Commit(t) => {
                    let t = TxnId(*t as u32);
                    e.commit(t);
                    live.retain(|x| *x != t);
                }
                Ev::Abort(t) => {
                    let t = TxnId(*t as u32);
                    e.abort(t);
                    live.retain(|x| *x != t);
                }
            }
            let (low, high) = e.bounds();
            prop_assert!(low <= high);
            prop_assert!(high <= cap, "upper bound within capacity");
            prop_assert!(e.committed() <= cap);
            prop_assert!(low <= e.committed() && e.committed() <= high);
        }
        // Completion replay 1: abort everyone → committed must equal `low`
        // is not required (low was a lower bound over *all* completions),
        // but it must land inside the final bounds interval computed before
        // completing.
        let (low, high) = e.bounds();
        let mut abort_all = e;
        for t in &live {
            abort_all.abort(*t);
        }
        prop_assert!(abort_all.committed() >= low && abort_all.committed() <= high);

        // Completion replay 2 needs a second copy; rebuild by replay.
        let mut commit_all = EscrowObject::new(cap, initial);
        let mut live2: Vec<TxnId> = Vec::new();
        for ev in &evs {
            match ev {
                Ev::Credit(t, n) => {
                    let t = TxnId(*t as u32);
                    if matches!(commit_all.credit(t, *n), Ok(EscrowOutcome::Ok))
                        && !live2.contains(&t)
                    {
                        live2.push(t);
                    }
                }
                Ev::Debit(t, n) => {
                    let t = TxnId(*t as u32);
                    if matches!(commit_all.debit(t, *n), Ok(EscrowOutcome::Ok))
                        && !live2.contains(&t)
                    {
                        live2.push(t);
                    }
                }
                Ev::Commit(t) => {
                    let t = TxnId(*t as u32);
                    commit_all.commit(t);
                    live2.retain(|x| *x != t);
                }
                Ev::Abort(t) => {
                    let t = TxnId(*t as u32);
                    commit_all.abort(t);
                    live2.retain(|x| *x != t);
                }
            }
        }
        for t in &live2 {
            commit_all.commit(*t);
        }
        prop_assert!(commit_all.committed() <= cap, "commit-all stays within capacity");
        prop_assert!(commit_all.committed() >= low && commit_all.committed() <= high);
    }

    /// Definite answers are definite: after a `No`, committing every live
    /// transaction still would not have made the operation legal, and after
    /// an `Ok`, aborting every live transaction leaves it legal.
    #[test]
    fn escrow_answers_are_serialization_proof(cap in 20u64..80, evs in events()) {
        let mut e = EscrowObject::new(cap, cap / 2);
        for ev in &evs {
            match ev {
                Ev::Debit(t, n) => {
                    let t = TxnId(*t as u32);
                    let (low, high) = e.bounds();
                    match e.debit(t, *n) {
                        Ok(EscrowOutcome::Ok) => prop_assert!(low >= *n),
                        Ok(EscrowOutcome::No) => prop_assert!(high < *n),
                        Err(TxnError::Blocked { .. }) => {
                            prop_assert!(low < *n && high >= *n)
                        }
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
                Ev::Credit(t, n) => {
                    let t = TxnId(*t as u32);
                    let (low, high) = e.bounds();
                    match e.credit(t, *n) {
                        Ok(EscrowOutcome::Ok) => prop_assert!(high + *n <= cap),
                        Ok(EscrowOutcome::No) => prop_assert!(low + *n > cap),
                        Err(TxnError::Blocked { .. }) => {
                            prop_assert!(high + *n > cap && low + *n <= cap)
                        }
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
                Ev::Commit(t) => e.commit(TxnId(*t as u32)),
                Ev::Abort(t) => e.abort(TxnId(*t as u32)),
            }
        }
    }
}
