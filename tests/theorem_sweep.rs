//! Theorems 9 and 10 swept across the ADT library — the characterisations
//! are type-independent, so the boundary must hold for every specification,
//! not just the paper's bank account.

mod common;

use ccr::core::adt::{EnumerableAdt, Op, StateCover};
use ccr::core::conflict::{nfc_table, nrbc_table, Conflict};
use ccr::core::equieffect::InclusionCfg;
use ccr::core::explore::ExploreCfg;
use ccr::core::ids::{ObjectId, TxnId};
use ccr::core::object::ObjectAutomaton;
use ccr::core::theorems::{check_correctness, probe_du_boundary, probe_uip_boundary};
use ccr::core::view::{Du, Uip};
use common::table_adt;
use proptest::prelude::*;

fn explore_cfg() -> ExploreCfg {
    ExploreCfg {
        txns: vec![TxnId(0), TxnId(1)],
        max_ops_per_txn: 2,
        max_total_ops: 2,
        allow_aborts: true,
        max_histories: 20_000,
    }
}

/// Both directions of both theorems over the given ADT and operation grid.
fn sweep<A: EnumerableAdt + StateCover>(adt: A, grid: Vec<Op<A>>) {
    let cfg = InclusionCfg::default();
    let nrbc = nrbc_table(&adt, &grid, cfg);
    let nfc = nfc_table(&adt, &grid, cfg);

    // If directions (bounded).
    let uip = ObjectAutomaton::new(adt.clone(), Uip, nrbc.clone(), ObjectId::SOLE);
    let r = check_correctness(&uip, &explore_cfg(), false);
    assert!(r.correct(), "UIP+NRBC violated on {adt:?}: {:?}", r.violation);
    let du = ObjectAutomaton::new(adt.clone(), Du, nfc.clone(), ObjectId::SOLE);
    let r = check_correctness(&du, &explore_cfg(), false);
    assert!(r.correct(), "DU+NFC violated on {adt:?}: {:?}", r.violation);

    // Only-if: dropping any pair must be refuted by a verified
    // counterexample.
    for (p, q) in nrbc.pairs() {
        let weakened = nrbc.without(&p, &q);
        let v = probe_uip_boundary(&adt, &grid, &weakened, cfg)
            .unwrap_or_else(|e| panic!("harness error on {adt:?}: {e:?}"));
        assert!(
            v.iter().any(|b| b.requested == p && b.held == q),
            "dropping ({p:?},{q:?}) from NRBC must break UIP on {adt:?}"
        );
    }
    for (p, q) in nfc.pairs() {
        let weakened = nfc.without(&p, &q);
        let v = probe_du_boundary(&adt, &grid, &weakened, cfg)
            .unwrap_or_else(|e| panic!("harness error on {adt:?}: {e:?}"));
        assert!(
            v.iter().any(|b| b.requested == p && b.held == q),
            "dropping ({p:?},{q:?}) from NFC must break DU on {adt:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The "if" directions of Theorems 9/10 on *randomly generated*
    /// specifications: the minimal relations computed from an arbitrary
    /// table machine must make the matching pairings correct. (The only-if
    /// per-pair probes stay on the curated ADTs above — bounded exploration
    /// is not guaranteed to refute every dropped pair of an arbitrary
    /// random machine within the budget.)
    #[test]
    fn random_specs_satisfy_the_if_directions(adt in table_adt()) {
        let grid = adt.grid();
        let cfg = InclusionCfg::default();
        let nrbc = nrbc_table(&adt, &grid, cfg);
        let uip = ObjectAutomaton::new(adt.clone(), Uip, nrbc, ObjectId::SOLE);
        let r = check_correctness(&uip, &explore_cfg(), false);
        prop_assert!(r.correct(), "UIP+NRBC violated on {:?}: {:?}", &adt, r.violation);
        let nfc = nfc_table(&adt, &grid, cfg);
        let du = ObjectAutomaton::new(adt.clone(), Du, nfc, ObjectId::SOLE);
        let r = check_correctness(&du, &explore_cfg(), false);
        prop_assert!(r.correct(), "DU+NFC violated on {:?}: {:?}", &adt, r.violation);
    }

    /// `NRBC` built from a random specification reflects RBC's asymmetry
    /// faithfully: `conflicts(p, q)` must equal the (directional) failure of
    /// "p right commutes backward with q", never its symmetrisation.
    #[test]
    fn random_nrbc_tables_preserve_direction(adt in table_adt()) {
        use ccr::core::commutativity::right_commutes_backward;
        let grid = adt.grid();
        let cfg = InclusionCfg::default();
        let nrbc = nrbc_table(&adt, &grid, cfg);
        for p in &grid {
            for q in &grid {
                prop_assert_eq!(
                    nrbc.conflicts(p, q),
                    right_commutes_backward(&adt, p, q, cfg).is_err(),
                    "NRBC direction mismatch for ({:?}, {:?}) on {:?}", p, q, &adt
                );
            }
        }
    }
}

#[test]
fn counter_boundary() {
    use ccr::adt::counter::{Counter, CounterInv, CounterResp};
    let grid = vec![
        Op::new(CounterInv::Inc, CounterResp::Ok),
        Op::new(CounterInv::Dec, CounterResp::Ok),
        Op::new(CounterInv::Dec, CounterResp::No),
        Op::new(CounterInv::Read, CounterResp::Val(0)),
        Op::new(CounterInv::Read, CounterResp::Val(1)),
    ];
    sweep(Counter, grid);
}

#[test]
fn escrow_boundary() {
    use ccr::adt::escrow::{ops, EscrowAccount};
    let adt = EscrowAccount::new(3, [1, 2]);
    let grid = vec![
        ops::credit_ok(1),
        ops::credit_ok(2),
        ops::credit_no(2),
        ops::debit_ok(1),
        ops::debit_ok(2),
        ops::debit_no(2),
    ];
    sweep(adt, grid);
}

#[test]
fn register_boundary() {
    use ccr::adt::register::{ops, RwRegister};
    let adt = RwRegister { values: vec![0, 1] };
    let grid = vec![ops::write(0), ops::write(1), ops::read(0), ops::read(1)];
    sweep(adt, grid);
}

#[test]
fn semiqueue_boundary() {
    use ccr::adt::semiqueue::{ops, Semiqueue};
    let adt = Semiqueue { values: vec![0, 1] };
    let grid = vec![ops::enq(0), ops::enq(1), ops::deq_got(0), ops::deq_got(1), ops::deq_empty()];
    sweep(adt, grid);
}

#[test]
fn maxreg_boundary() {
    use ccr::adt::maxreg::{ops, MaxRegister};
    let adt = MaxRegister { values: vec![0, 1, 2] };
    let grid = vec![ops::write_max(1), ops::write_max(2), ops::read(0), ops::read(1), ops::read(2)];
    sweep(adt, grid);
}

#[test]
fn pqueue_boundary() {
    use ccr::adt::pqueue::{ops, PQueue};
    let adt = PQueue { values: vec![0, 1] };
    let grid = vec![
        ops::insert(0),
        ops::insert(1),
        ops::extract_got(0),
        ops::extract_got(1),
        ops::extract_empty(),
    ];
    sweep(adt, grid);
}
