//! End-to-end correctness property: every execution the runtime produces
//! under a Theorem-9/10-correct pairing is dynamic atomic — checked by the
//! independent formal machinery of `ccr-core` on randomly generated
//! workloads, schedules and seeds. This is the strongest cross-crate
//! invariant in the repository.

use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr::adt::semiqueue::{semiqueue_nfc, semiqueue_nrbc, Semiqueue, SqInv};
use ccr::core::atomicity::{check_dynamic_atomic, check_dynamic_atomic_auto, SystemSpec};
use ccr::core::conflict::{Conflict, SymmetricClosure, TotalConflict};
use ccr::core::ids::ObjectId;
use ccr::runtime::engine::{DuEngine, RecoveryEngine, UipEngine, UipInverseEngine};
use ccr::runtime::scheduler::{run, SchedulerCfg};
use ccr::runtime::script::{OpsScript, Script};
use ccr::runtime::threaded::{run_threaded, ThreadedCfg};
use ccr::runtime::{ConflictPolicy, TxnSystem};
use proptest::prelude::*;

/// A random bank workload: per-script lists of (object, invocation).
fn bank_scripts() -> impl Strategy<Value = Vec<Vec<(u32, BankInv)>>> {
    let inv = prop_oneof![
        (1u64..=3).prop_map(BankInv::Deposit),
        (1u64..=3).prop_map(BankInv::Withdraw),
        Just(BankInv::Balance),
    ];
    prop::collection::vec(prop::collection::vec(((0u32..2), inv), 1..4), 1..6)
}

fn to_scripts(raw: &[Vec<(u32, BankInv)>]) -> Vec<Box<dyn Script<BankAccount>>> {
    raw.iter()
        .map(|steps| {
            Box::new(OpsScript::new(steps.iter().map(|(o, i)| (ObjectId(*o), i.clone())).collect()))
                as Box<dyn Script<BankAccount>>
        })
        .collect()
}

fn run_and_check<E, C>(raw: &[Vec<(u32, BankInv)>], conflict: C, seed: u64) -> (u64, bool)
where
    E: RecoveryEngine<BankAccount>,
    C: Conflict<BankAccount>,
{
    let mut sys: TxnSystem<BankAccount, E, C> = TxnSystem::new(BankAccount::default(), 2, conflict);
    // Seed funds so withdrawals can succeed.
    let t = sys.begin();
    sys.invoke(t, ObjectId(0), BankInv::Deposit(20)).unwrap();
    sys.invoke(t, ObjectId(1), BankInv::Deposit(20)).unwrap();
    sys.commit(t).unwrap();
    let report = run(&mut sys, to_scripts(raw), &SchedulerCfg { seed, ..Default::default() });
    let spec = SystemSpec::uniform(BankAccount::default(), 2);
    (report.committed, check_dynamic_atomic(&spec, sys.trace()).is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// UIP + NRBC (Theorem 9's pairing): all commit, trace dynamic atomic.
    #[test]
    fn uip_nrbc_always_dynamic_atomic(raw in bank_scripts(), seed in 0u64..1000) {
        let n = raw.len() as u64;
        let (committed, da) = run_and_check::<UipEngine<BankAccount>, _>(&raw, bank_nrbc(), seed);
        prop_assert_eq!(committed, n, "every script must eventually commit");
        prop_assert!(da, "trace must be dynamic atomic");
    }

    /// Same with inverse-based undo — the ablation must not change
    /// semantics.
    #[test]
    fn uip_inverse_always_dynamic_atomic(raw in bank_scripts(), seed in 0u64..1000) {
        let (committed, da) =
            run_and_check::<UipInverseEngine<BankAccount>, _>(&raw, bank_nrbc(), seed);
        prop_assert_eq!(committed, raw.len() as u64);
        prop_assert!(da);
    }

    /// DU + NFC (Theorem 10's pairing).
    #[test]
    fn du_nfc_always_dynamic_atomic(raw in bank_scripts(), seed in 0u64..1000) {
        let (committed, da) = run_and_check::<DuEngine<BankAccount>, _>(&raw, bank_nfc(), seed);
        prop_assert_eq!(committed, raw.len() as u64);
        prop_assert!(da);
    }

    /// Over-approximating the required relation stays safe: UIP with
    /// sym(NRBC) and with the total relation.
    #[test]
    fn stronger_relations_remain_safe(raw in bank_scripts(), seed in 0u64..100) {
        let (_, da) = run_and_check::<UipEngine<BankAccount>, _>(
            &raw,
            SymmetricClosure(bank_nrbc()),
            seed,
        );
        prop_assert!(da);
        let (_, da) = run_and_check::<UipEngine<BankAccount>, _>(&raw, TotalConflict, seed);
        prop_assert!(da);
    }

    /// The *mismatched* pairing DU + NRBC may abort transactions at
    /// validation, but the committed trace must still be dynamic atomic
    /// (the runtime's last line of defence holds).
    #[test]
    fn du_with_nrbc_commits_are_still_atomic(raw in bank_scripts(), seed in 0u64..100) {
        let (_, da) = run_and_check::<DuEngine<BankAccount>, _>(&raw, bank_nrbc(), seed);
        prop_assert!(da);
    }
}

/// Crosswise balance-then-deposit scripts over two objects — the classic
/// deadlock-prone pattern (each script reads one object, then updates the
/// other, half of them in each order).
fn crosswise_scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
    let (x, y) = (ObjectId(0), ObjectId(1));
    (0..n)
        .map(|i| {
            let (first, second) = if i % 2 == 0 { (x, y) } else { (y, x) };
            Box::new(OpsScript::new(vec![(first, BankInv::Balance), (second, BankInv::Deposit(1))]))
                as Box<dyn Script<BankAccount>>
        })
        .collect()
}

/// Wound-wait under the threaded executor (≥ 4 workers): an older requester
/// wounds younger lock holders, so wait-for edges only ever point from
/// younger to older transactions — the graph stays acyclic and the
/// deadlock detector must never fire, while the deadlock-prone crosswise
/// workload still commits completely and stays dynamic atomic.
#[test]
fn threaded_wound_wait_keeps_wait_for_acyclic() {
    let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 2, bank_nrbc())
            .with_policy(ConflictPolicy::WoundWait);
    let cfg = ThreadedCfg { workers: 6, max_retries: 512, ..Default::default() };
    let (report, sys) = run_threaded(sys, crosswise_scripts(10), &cfg);
    assert_eq!(report.deadlock_aborts, 0, "wound-wait admits no wait-for cycles");
    assert_eq!(report.gave_up, 0, "the oldest transaction always progresses");
    assert_eq!(report.committed, 10);
    let spec = SystemSpec::uniform(BankAccount::default(), 2);
    assert!(check_dynamic_atomic_auto(&spec, sys.trace(), 6, 64, 0).is_ok());
}

/// No-wait under the threaded executor: a conflicting request aborts
/// immediately instead of blocking, so nothing ever waits — zero blocked
/// operations and zero deadlock aborts by construction; every script either
/// commits or exhausts its retry budget, and the committed trace is dynamic
/// atomic.
#[test]
fn threaded_no_wait_never_deadlocks() {
    let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 2, bank_nrbc()).with_policy(ConflictPolicy::NoWait);
    let cfg = ThreadedCfg { workers: 6, max_retries: 512, ..Default::default() };
    let (report, sys) = run_threaded(sys, crosswise_scripts(10), &cfg);
    assert_eq!(report.blocked_ops, 0, "no-wait must never block");
    assert_eq!(report.deadlock_aborts, 0, "nothing waits, so nothing deadlocks");
    assert_eq!(report.committed + report.gave_up, 10);
    let spec = SystemSpec::uniform(BankAccount::default(), 2);
    assert!(check_dynamic_atomic_auto(&spec, sys.trace(), 6, 64, 0).is_ok());
}

// Non-deterministic specification end-to-end: semiqueue producers and
// consumers under both pairings.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn semiqueue_runs_dynamic_atomic(
        producers in 1usize..4,
        consumers in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut scripts: Vec<Box<dyn Script<Semiqueue>>> = Vec::new();
        for i in 0..producers {
            scripts.push(Box::new(OpsScript::on(
                ObjectId::SOLE,
                vec![SqInv::Enq(i as u8 % 3), SqInv::Enq((i as u8 + 1) % 3)],
            )));
        }
        for _ in 0..consumers {
            scripts.push(Box::new(OpsScript::on(ObjectId::SOLE, vec![SqInv::Deq])));
        }
        let spec = SystemSpec::single(Semiqueue::default());

        let mut sys: TxnSystem<Semiqueue, UipEngine<Semiqueue>, _> =
            TxnSystem::new(Semiqueue::default(), 1, semiqueue_nrbc());
        let report = run(&mut sys, scripts, &SchedulerCfg { seed, ..Default::default() });
        prop_assert_eq!(report.gave_up, 0);
        prop_assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn semiqueue_du_runs_dynamic_atomic(
        producers in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut scripts: Vec<Box<dyn Script<Semiqueue>>> = Vec::new();
        for i in 0..producers {
            scripts.push(Box::new(OpsScript::on(
                ObjectId::SOLE,
                vec![SqInv::Enq(i as u8 % 3), SqInv::Deq],
            )));
        }
        let spec = SystemSpec::single(Semiqueue::default());
        let mut sys: TxnSystem<Semiqueue, DuEngine<Semiqueue>, _> =
            TxnSystem::new(Semiqueue::default(), 1, semiqueue_nfc());
        let report = run(&mut sys, scripts, &SchedulerCfg { seed, ..Default::default() });
        prop_assert_eq!(report.gave_up, 0);
        prop_assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }
}
