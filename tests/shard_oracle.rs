//! Acceptance tests for the sharded durable runtime (DESIGN.md §15), driven
//! through the public facade exactly as the `ccr-experiments sim --shards N`
//! CLI drives it: 32-seed sweeps whose fault plans crash every shard subset
//! and every canonical 2PC step (including a crash inside a participant's
//! own recovery), the eighth oracle leg (global dynamic atomicity across
//! shards) staying quiet on correct runs, and the lose-the-decision-record
//! negative control being caught, shrunk, and pinned in its reproducer.

use ccr::runtime::fault::FaultPlan;
use ccr::workload::shard_sim::{run_shard_scenario, shrink_shard, sweep_shard};
use ccr::workload::sim::{Backend, Combo, SimScenario, SweepCfg};

/// The acceptance sweep: 32 seeds per cell over shard count × group commit
/// on the disk backend, every cross-shard commit routed through
/// `commit_global_with_crash` (crash-at-every-2PC-step, cycling all four
/// canonical points), with the seeded fault plans additionally drawing
/// crash-of-any-shard-subset and 2PC-step arms. Every run must pass the
/// full oracle battery including the eighth (global atomicity) leg.
#[test]
fn sharded_sweep_survives_crashes_of_every_shard_subset_and_2pc_step() {
    for shards in [2usize, 3] {
        for group_commit in [false, true] {
            let cfg = SweepCfg {
                horizon: 60,
                faults: 4,
                shards,
                group_commit,
                twopc_crash: true,
                ..SweepCfg::new(Combo::UipNrbc, 32)
            };
            let failure = sweep_shard(&cfg);
            assert!(
                failure.is_none(),
                "sharded sweep failed (shards: {shards}, group_commit: {group_commit}): {:?}",
                failure.map(|f| f.shrunk.reproducer())
            );
        }
    }
}

/// The same sweep on the mem backend: crash-subset arms degrade to
/// volatile-state loss without WAL recovery, and the global-atomicity leg
/// must still hold (the coordinator log is the only durable truth).
#[test]
fn sharded_sweep_passes_on_the_mem_backend() {
    let cfg = SweepCfg {
        horizon: 60,
        faults: 4,
        backend: Backend::Mem,
        shards: 2,
        twopc_crash: true,
        ..SweepCfg::new(Combo::UipNrbc, 32)
    };
    assert!(sweep_shard(&cfg).is_none(), "mem-backend sharded sweep must pass");
}

/// Same sharded scenario ⇒ identical reports and byte-identical JSON —
/// the determinism contract the CI `shard-fuzz` job enforces end to end
/// with `cmp` on two CLI runs.
#[test]
fn sharded_runs_are_deterministic_through_the_facade() {
    let plan = FaultPlan::from_seed_sharded(9, 60, 4, 3);
    let mut scenario = SimScenario::new(Combo::UipNrbc, 9, plan);
    scenario.shards = 3;
    scenario.twopc_crash = true;
    let a = run_shard_scenario(&scenario).expect("correct run must pass the oracle");
    let b = run_shard_scenario(&scenario).expect("correct run must pass the oracle");
    assert_eq!(a, b, "sharded report must be identical across runs");
    assert_eq!(a.to_json(&scenario), b.to_json(&scenario), "JSON must be byte-identical");
    assert!(a.crash_subsets + a.twopc_crashes > 0, "the sharded fault arms must actually fire");
}

/// Negative control for the eighth oracle leg: losing the coordinator's
/// decision record after one participant applied the commit must be caught
/// as a global split, shrink to a minimal scenario that still fails with
/// the same kind, and emit a reproducer pinning the sharded knobs
/// (`--shards`, `--lose-decision`) — the flag-pinning bug class fixed for
/// `--backend` in PR 6 and `--gray` in PR 8 must not recur here.
#[test]
fn lost_decision_record_is_caught_shrunk_and_pinned() {
    let plan = FaultPlan::from_seed_sharded(11, 40, 3, 2);
    let mut scenario = SimScenario::new(Combo::UipNrbc, 11, plan);
    scenario.shards = 2;
    scenario.lose_decision = true;
    let failure = run_shard_scenario(&scenario).expect_err("the planted bug must be caught");
    assert_eq!(failure.kind(), "global-split", "wrong leg fired: {failure}");

    let (shrunk, shrunk_failure, _) = shrink_shard(&scenario);
    assert_eq!(shrunk_failure.kind(), "global-split", "shrinking must preserve the kind");
    assert!(
        run_shard_scenario(&shrunk).is_err(),
        "shrunk reproducer must still fail: {}",
        shrunk.reproducer()
    );
    let line = shrunk.reproducer();
    for flag in [" --shards 2", " --lose-decision", " --backend "] {
        assert!(line.contains(flag), "reproducer missing {flag:?}: {line}");
    }
}
