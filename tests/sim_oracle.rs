//! Acceptance tests for the deterministic fault-injection simulator, driven
//! through the public facade crate exactly as the `ccr-experiments sim` CLI
//! drives it: determinism of `(seed, FaultPlan)` runs, detection + shrinking
//! of a deliberately weakened conflict relation, and torn-write crashes
//! surfacing as `RedoError`s rather than silent state divergence.

use ccr::runtime::fault::FaultPlan;
use ccr::workload::sim::{
    run_scenario, run_scenario_traced, sweep, Backend, Combo, SimScenario, SweepCfg,
};

/// Same `(seed, FaultPlan)` ⇒ identical run reports (which embed the
/// history fingerprint and every per-fault-kind counter), run twice through
/// the full public pipeline.
#[test]
fn same_seed_and_plan_give_identical_reports() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let a = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let b = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        assert_eq!(a, b, "report must be identical across runs of {combo}");
        assert!(a.faults_injected > 0, "the plan must actually fire on {combo}");
    }
}

/// The `SystemStats` counters are now a projection of the tracer's event
/// stream; a traced run (events recorded, artifacts rendered) must report
/// exactly the counters the untraced legacy path reports, and event
/// recording must not perturb the run itself.
#[test]
fn traced_runs_report_the_legacy_counters() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let untraced = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let (traced, artifacts) = run_scenario_traced(&scenario);
        let traced = traced.expect("correct pairing must pass the oracle");
        assert_eq!(untraced, traced, "recording events must not perturb the run of {combo}");
        assert_eq!(
            artifacts.metrics.stats, untraced.stats,
            "metrics stats must equal the legacy counters on {combo}"
        );
        assert!(artifacts.chrome.contains("\"recovery\""), "{combo}: crash must be traced");
    }
}

/// The weakened relation (symmetric-FC under update-in-place recovery) is
/// caught by the oracle within a bounded seed sweep, and the shrinker
/// reduces the failure to at most three live transactions whose reproducer
/// still fails.
#[test]
fn weakened_relation_is_caught_and_shrunk() {
    let cfg = SweepCfg { horizon: 60, faults: 4, ..SweepCfg::new(Combo::UipSymNfc, 64) };
    let f = sweep(&cfg).expect("weakened combo must be caught");
    assert!(f.shrunk.live_txns() <= 3, "reproducer too large: {}", f.shrunk.reproducer());
    assert!(
        run_scenario(&f.shrunk).is_err(),
        "shrunk reproducer must still fail: {}",
        f.shrunk.reproducer()
    );
}

/// Acceptance sweep for the sixth oracle leg (recovery convergence): 32
/// seeds per configuration on the disk backend, with and without group
/// commit, each run ending with crashes injected at every device-op index
/// of recovery itself. Every eventual recovery must reproduce the baseline
/// outcome, under both the update-in-place and deferred-update pairings.
#[test]
fn recovery_convergence_survives_a_32_seed_sweep() {
    for combo in [Combo::UipNrbc, Combo::DuNfc] {
        for group_commit in [false, true] {
            let cfg = SweepCfg {
                horizon: 60,
                faults: 4,
                group_commit,
                fault_during_recovery: true,
                ..SweepCfg::new(combo, 32)
            };
            assert!(
                sweep(&cfg).is_none(),
                "recovery convergence failed for {combo} (group_commit: {group_commit})"
            );
        }
    }
}

/// Negative control for the convergence leg, end to end through the
/// runtime: a recovery that forgets the epoch bump reuses batch ids across
/// the crash boundary, and the probe must refuse it rather than converge.
#[test]
fn skipped_epoch_bump_divergence_is_caught_by_the_convergence_leg() {
    use ccr::adt::bank::{bank_nrbc, BankAccount, BankInv};
    use ccr::core::conflict::FnConflict;
    use ccr::core::ids::ObjectId;
    use ccr::runtime::crash::DurableSystem;
    use ccr::runtime::engine::UipEngine;
    use ccr::store::{LogBackend, TailPolicy, WalBackend, WalConfig};

    let mut sys: DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    > = DurableSystem::with_backend(
        BankAccount::default(),
        2,
        bank_nrbc(),
        WalBackend::new(WalConfig::default()),
    );
    for i in 0..3u32 {
        let t = sys.begin();
        sys.invoke(t, ObjectId(i % 2), BankInv::Deposit(u64::from(i) + 1)).unwrap();
        sys.commit(t).unwrap();
    }
    let ok = sys
        .backend_mut()
        .check_recovery_convergence(TailPolicy::DiscardTail)
        .expect("a faithful recovery must converge");
    assert!(ok.trials > 0, "the probe must exercise at least one nested crash");

    sys.backend_mut().set_skip_epoch_bump(true);
    let err = sys
        .backend_mut()
        .check_recovery_convergence(TailPolicy::DiscardTail)
        .expect_err("skipping the epoch bump must be caught");
    assert!(err.reason.contains("epoch"), "unexpected divergence reason: {}", err.reason);
}

// ---------------------------------------------------------------------------
// Mutation-style negative controls: one seeded bug per oracle leg, each
// asserting that *this* leg — not a test-side recomputation — flags it.
// `tests/mc_props.rs` holds the model-checker counterparts: the `ccr-mc`
// explorer catches the same bug classes (drop-acked-commit, reorder,
// resurrection, skipped epoch bump) with minimized replayable traces.
// Leg 1 (dynamic atomicity) is controlled by
// `weakened_relation_is_caught_and_shrunk` above: the deliberately
// symmetric conflict relation is exactly the §6.3 seeded bug, and the
// sweep's first failure is `NotDynamicAtomic`.
// ---------------------------------------------------------------------------

mod leg_controls {
    use std::collections::BTreeMap;

    use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv, BankResp};
    use ccr::core::adt::Op;
    use ccr::core::atomicity::SystemSpec;
    use ccr::core::conflict::FnConflict;
    use ccr::core::ids::ObjectId;
    use ccr::runtime::fault::{FaultKind, FaultPlan, FaultSpec};
    use ccr::runtime::script::{OpsScript, Script};
    use ccr::runtime::sim::{run_sim, OracleFailure, SimCfg};
    use ccr::runtime::{DuEngine, DurableSystem, RedoError, UipEngine};
    use ccr::store::{CommitRecord, LogBackend, WalBackend, WalConfig};

    type DiskUip = DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;
    type DiskDu = DurableSystem<
        BankAccount,
        DuEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;

    const X: ObjectId = ObjectId(0);
    /// Larger than any balance the scripts can reach, so a forged
    /// `withdraw(HUGE)` refuses wherever the replay puts it.
    const HUGE: u64 = 1 << 40;

    fn fresh_uip() -> DiskUip {
        DurableSystem::with_backend(
            BankAccount::default(),
            1,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        )
    }

    fn scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
        (0..n)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    fn spec() -> SystemSpec<BankAccount> {
        SystemSpec::single(BankAccount::default())
    }

    fn one_crash() -> FaultPlan {
        FaultPlan::new(vec![FaultSpec { at_event: 10, kind: FaultKind::Crash }])
    }

    /// Leg 2 (journal equieffectivity): a WAL record whose recorded
    /// response is serially impossible — `withdraw(HUGE) → Ok` on an empty
    /// account — must be refused by the replay's response check when a
    /// crash forces the journal to be rebuilt from the log. The mc
    /// counterpart is `Mutation::ResurrectAborted` (a forged record the
    /// decode/presence invariant rejects).
    #[test]
    fn forged_impossible_response_is_refused_by_replay() {
        let mut sys = fresh_uip();
        let forged = CommitRecord {
            floor: 50,
            ops: vec![(500, X, Op::new(BankInv::Withdraw(HUGE), BankResp::Ok))],
        };
        sys.backend_mut().append_commit(&forged).unwrap();
        let err = run_sim(&mut sys, scripts(4), &one_crash(), &SimCfg::default(), &spec(), None)
            .expect_err("a serially impossible journal record must not replay");
        assert!(
            matches!(
                err.failure,
                OracleFailure::Redo(RedoError::ResponseDiverged { .. })
                    | OracleFailure::Redo(RedoError::ReplayRefused { .. })
                    | OracleFailure::ShadowRefused { .. }
            ),
            "wrong leg fired: {}",
            err.failure
        );
    }

    /// Leg 3 (committed-prefix durability): a committed effect appearing
    /// from nowhere — a forged but serially *legal* deposit record — makes
    /// post-recovery state differ from the pre-crash snapshot, and the
    /// crash-state leg must say so. The mc counterpart is
    /// `Mutation::DropAckedCommit` (the same leg, in the losing direction).
    #[test]
    fn forged_committed_effect_is_caught_by_the_crash_state_leg() {
        let mut sys = fresh_uip();
        let forged = CommitRecord {
            floor: 50,
            ops: vec![(500, X, Op::new(BankInv::Deposit(7), BankResp::Ok))],
        };
        sys.backend_mut().append_commit(&forged).unwrap();
        let err = run_sim(&mut sys, scripts(4), &one_crash(), &SimCfg::default(), &spec(), None)
            .expect_err("recovery must not invent committed state");
        assert!(
            matches!(err.failure, OracleFailure::CrashStateMismatch { .. }),
            "wrong leg fired: {}",
            err.failure
        );
    }

    /// Leg 4 (caller-supplied state invariant): a workload that leaks units
    /// against a conservation invariant must be reported as
    /// `InvariantViolated` with the invariant's own detail string.
    #[test]
    fn conservation_invariant_violations_are_reported() {
        let mut sys = fresh_uip();
        let inv = |states: &BTreeMap<ObjectId, u64>| -> Result<(), String> {
            let total: u64 = states.values().sum();
            if total == 0 {
                Ok(())
            } else {
                Err(format!("leaked {total} units"))
            }
        };
        let err = run_sim(
            &mut sys,
            scripts(4),
            &FaultPlan::none(),
            &SimCfg::default(),
            &spec(),
            Some(&inv),
        )
        .expect_err("the leaking workload must violate the conservation invariant");
        match err.failure {
            OracleFailure::InvariantViolated { detail } => {
                assert!(detail.contains("leaked"), "wrong detail: {detail}")
            }
            other => panic!("wrong leg fired: {other}"),
        }
    }

    /// Leg 5 (recovery-view agreement): two forged records whose commit
    /// order is `deposit(HUGE); withdraw(HUGE)` (a legal, state-neutral DU
    /// fold) but whose execution sequence numbers put the withdrawal
    /// *first* (refused in the UIP view). Since the net effect is zero the
    /// durability leg stays quiet, and the view-agreement leg must be the
    /// one to flag the divergence. The mc explorer runs this same
    /// UIP-vs-DU comparison after every recovery (`ViewDivergence`).
    #[test]
    fn inverted_exec_order_is_caught_by_the_view_agreement_leg() {
        let mut sys: DiskDu = DurableSystem::with_backend(
            BankAccount::default(),
            1,
            bank_nfc(),
            WalBackend::new(WalConfig::default()),
        );
        let dep = CommitRecord {
            floor: 50,
            ops: vec![(999, X, Op::new(BankInv::Deposit(HUGE), BankResp::Ok))],
        };
        let wd = CommitRecord {
            floor: 51,
            ops: vec![(998, X, Op::new(BankInv::Withdraw(HUGE), BankResp::Ok))],
        };
        sys.backend_mut().append_commit(&dep).unwrap();
        sys.backend_mut().append_commit(&wd).unwrap();
        let err = run_sim(&mut sys, scripts(4), &one_crash(), &SimCfg::default(), &spec(), None)
            .expect_err("the UIP and DU views must be seen to disagree");
        match err.failure {
            OracleFailure::RecoveryViewDiverged { uip, .. } => {
                assert_eq!(uip, "refused", "the UIP view must refuse the inverted order")
            }
            other => panic!("wrong leg fired: {other}"),
        }
    }

    /// Leg 6 (recovery convergence): skipping the epoch bump — the seeded
    /// bug of DESIGN.md §11 — must surface through the full `run_sim`
    /// pipeline as `RecoveryDiverged`, not only through the direct probe
    /// (tested above). The mc counterpart is `Mutation::SkipEpochBump`,
    /// caught by the explorer's convergence invariant.
    #[test]
    fn skipped_epoch_bump_is_caught_end_to_end_by_the_convergence_leg() {
        let mut sys = fresh_uip();
        sys.backend_mut().set_skip_epoch_bump(true);
        let cfg = SimCfg { fault_during_recovery: true, ..Default::default() };
        let err = run_sim(&mut sys, scripts(4), &one_crash(), &cfg, &spec(), None)
            .expect_err("a recovery that forgets the epoch bump must not converge");
        match err.failure {
            OracleFailure::RecoveryDiverged { detail } => {
                assert!(detail.contains("epoch"), "wrong divergence detail: {detail}")
            }
            other => panic!("wrong leg fired: {other}"),
        }
    }
}

/// Satellite fix: reproducer lines must pin the *complete* configuration —
/// backend even when it is the default, group commit, and the
/// fault-during-recovery leg — so an emitted command never silently
/// replays under different settings than the failing run.
#[test]
fn reproducer_lines_pin_the_full_configuration() {
    let plan: FaultPlan = "5:crash".parse().unwrap();
    let mut scenario = SimScenario::new(Combo::UipNrbc, 3, plan);
    let line = scenario.reproducer();
    assert!(line.contains("--backend disk"), "default backend must be explicit: {line}");
    scenario.backend = Backend::Mem;
    scenario.group_commit = true;
    scenario.fault_during_recovery = true;
    let line = scenario.reproducer();
    assert!(line.contains("--backend mem"), "missing backend: {line}");
    assert!(line.contains("--group-commit"), "missing group commit: {line}");
    assert!(line.contains("--fault-during-recovery"), "missing recovery leg: {line}");
}
