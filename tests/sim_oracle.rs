//! Acceptance tests for the deterministic fault-injection simulator, driven
//! through the public facade crate exactly as the `ccr-experiments sim` CLI
//! drives it: determinism of `(seed, FaultPlan)` runs, detection + shrinking
//! of a deliberately weakened conflict relation, and torn-write crashes
//! surfacing as `RedoError`s rather than silent state divergence.

use ccr::runtime::fault::FaultPlan;
use ccr::workload::sim::{run_scenario, run_scenario_traced, sweep, Combo, SimScenario};

/// Same `(seed, FaultPlan)` ⇒ identical run reports (which embed the
/// history fingerprint and every per-fault-kind counter), run twice through
/// the full public pipeline.
#[test]
fn same_seed_and_plan_give_identical_reports() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let a = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let b = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        assert_eq!(a, b, "report must be identical across runs of {combo}");
        assert!(a.faults_injected > 0, "the plan must actually fire on {combo}");
    }
}

/// The `SystemStats` counters are now a projection of the tracer's event
/// stream; a traced run (events recorded, artifacts rendered) must report
/// exactly the counters the untraced legacy path reports, and event
/// recording must not perturb the run itself.
#[test]
fn traced_runs_report_the_legacy_counters() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let untraced = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let (traced, artifacts) = run_scenario_traced(&scenario);
        let traced = traced.expect("correct pairing must pass the oracle");
        assert_eq!(untraced, traced, "recording events must not perturb the run of {combo}");
        assert_eq!(
            artifacts.metrics.stats, untraced.stats,
            "metrics stats must equal the legacy counters on {combo}"
        );
        assert!(artifacts.chrome.contains("\"recovery\""), "{combo}: crash must be traced");
    }
}

/// The weakened relation (symmetric-FC under update-in-place recovery) is
/// caught by the oracle within a bounded seed sweep, and the shrinker
/// reduces the failure to at most three live transactions whose reproducer
/// still fails.
#[test]
fn weakened_relation_is_caught_and_shrunk() {
    let f = sweep(Combo::UipSymNfc, 64, 60, 4, false).expect("weakened combo must be caught");
    assert!(f.shrunk.live_txns() <= 3, "reproducer too large: {}", f.shrunk.reproducer());
    assert!(
        run_scenario(&f.shrunk).is_err(),
        "shrunk reproducer must still fail: {}",
        f.shrunk.reproducer()
    );
}
