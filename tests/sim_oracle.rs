//! Acceptance tests for the deterministic fault-injection simulator, driven
//! through the public facade crate exactly as the `ccr-experiments sim` CLI
//! drives it: determinism of `(seed, FaultPlan)` runs, detection + shrinking
//! of a deliberately weakened conflict relation, and torn-write crashes
//! surfacing as `RedoError`s rather than silent state divergence.

use ccr::runtime::fault::FaultPlan;
use ccr::workload::sim::{run_scenario, run_scenario_traced, sweep, Combo, SimScenario};

/// Same `(seed, FaultPlan)` ⇒ identical run reports (which embed the
/// history fingerprint and every per-fault-kind counter), run twice through
/// the full public pipeline.
#[test]
fn same_seed_and_plan_give_identical_reports() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let a = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let b = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        assert_eq!(a, b, "report must be identical across runs of {combo}");
        assert!(a.faults_injected > 0, "the plan must actually fire on {combo}");
    }
}

/// The `SystemStats` counters are now a projection of the tracer's event
/// stream; a traced run (events recorded, artifacts rendered) must report
/// exactly the counters the untraced legacy path reports, and event
/// recording must not perturb the run itself.
#[test]
fn traced_runs_report_the_legacy_counters() {
    let plan: FaultPlan = "5:crash,11:torn1,17:abort,23:delay2,29:wound".parse().unwrap();
    for combo in [Combo::UipNrbc, Combo::DuNfc, Combo::EscrowUipNrbc] {
        let scenario = SimScenario::new(combo, 42, plan.clone());
        let untraced = run_scenario(&scenario).expect("correct pairing must pass the oracle");
        let (traced, artifacts) = run_scenario_traced(&scenario);
        let traced = traced.expect("correct pairing must pass the oracle");
        assert_eq!(untraced, traced, "recording events must not perturb the run of {combo}");
        assert_eq!(
            artifacts.metrics.stats, untraced.stats,
            "metrics stats must equal the legacy counters on {combo}"
        );
        assert!(artifacts.chrome.contains("\"recovery\""), "{combo}: crash must be traced");
    }
}

/// The weakened relation (symmetric-FC under update-in-place recovery) is
/// caught by the oracle within a bounded seed sweep, and the shrinker
/// reduces the failure to at most three live transactions whose reproducer
/// still fails.
#[test]
fn weakened_relation_is_caught_and_shrunk() {
    let f =
        sweep(Combo::UipSymNfc, 64, 60, 4, false, false).expect("weakened combo must be caught");
    assert!(f.shrunk.live_txns() <= 3, "reproducer too large: {}", f.shrunk.reproducer());
    assert!(
        run_scenario(&f.shrunk).is_err(),
        "shrunk reproducer must still fail: {}",
        f.shrunk.reproducer()
    );
}

/// Acceptance sweep for the sixth oracle leg (recovery convergence): 32
/// seeds per configuration on the disk backend, with and without group
/// commit, each run ending with crashes injected at every device-op index
/// of recovery itself. Every eventual recovery must reproduce the baseline
/// outcome, under both the update-in-place and deferred-update pairings.
#[test]
fn recovery_convergence_survives_a_32_seed_sweep() {
    for combo in [Combo::UipNrbc, Combo::DuNfc] {
        for group_commit in [false, true] {
            assert!(
                sweep(combo, 32, 60, 4, group_commit, true).is_none(),
                "recovery convergence failed for {combo} (group_commit: {group_commit})"
            );
        }
    }
}

/// Negative control for the convergence leg, end to end through the
/// runtime: a recovery that forgets the epoch bump reuses batch ids across
/// the crash boundary, and the probe must refuse it rather than converge.
#[test]
fn skipped_epoch_bump_divergence_is_caught_by_the_convergence_leg() {
    use ccr::adt::bank::{bank_nrbc, BankAccount, BankInv};
    use ccr::core::conflict::FnConflict;
    use ccr::core::ids::ObjectId;
    use ccr::runtime::crash::DurableSystem;
    use ccr::runtime::engine::UipEngine;
    use ccr::store::{LogBackend, TailPolicy, WalBackend, WalConfig};

    let mut sys: DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    > = DurableSystem::with_backend(
        BankAccount::default(),
        2,
        bank_nrbc(),
        WalBackend::new(WalConfig::default()),
    );
    for i in 0..3u32 {
        let t = sys.begin();
        sys.invoke(t, ObjectId(i % 2), BankInv::Deposit(u64::from(i) + 1)).unwrap();
        sys.commit(t).unwrap();
    }
    let ok = sys
        .backend_mut()
        .check_recovery_convergence(TailPolicy::DiscardTail)
        .expect("a faithful recovery must converge");
    assert!(ok.trials > 0, "the probe must exercise at least one nested crash");

    sys.backend_mut().set_skip_epoch_bump(true);
    let err = sys
        .backend_mut()
        .check_recovery_convergence(TailPolicy::DiscardTail)
        .expect_err("skipping the epoch bump must be caught");
    assert!(err.reason.contains("epoch"), "unexpected divergence reason: {}", err.reason);
}
