//! Money-conservation property: transfer transactions (withdraw here,
//! deposit there; abort on refusal) never create or destroy money, under any
//! engine, conflict relation, policy, schedule seed, or executor — the
//! application-level face of atomicity.

use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv, BankResp};
use ccr::core::conflict::{Conflict, SymmetricClosure};
use ccr::core::ids::ObjectId;
use ccr::runtime::engine::{DuEngine, RecoveryEngine, UipEngine, UipInverseEngine};
use ccr::runtime::scheduler::{run, SchedulerCfg};
use ccr::runtime::script::{ConditionalScript, Script, Step};
use ccr::runtime::threaded::{run_threaded, ThreadedCfg};
use ccr::runtime::{ConflictPolicy, TxnSystem};
use proptest::prelude::*;

const ACCOUNTS: u32 = 3;
const SEED_FUNDS: u64 = 20;

/// Transfer 2 units from account `(k mod 3)` to `(k+1 mod 3)`; abort when
/// the withdrawal is refused. All scripts share this decision function with
/// the source/target rotated by the step-index trick, so four static
/// variants cover the rotations.
fn transfer(from: u32, to: u32) -> ConditionalScript<BankAccount> {
    // ConditionalScript requires a fn pointer, so enumerate rotations.
    match (from, to) {
        (0, 1) => ConditionalScript::new(|pos, last| step(pos, last, 0, 1)),
        (1, 2) => ConditionalScript::new(|pos, last| step(pos, last, 1, 2)),
        (2, 0) => ConditionalScript::new(|pos, last| step(pos, last, 2, 0)),
        _ => unreachable!("rotations only"),
    }
}

fn step(pos: usize, last: Option<&BankResp>, from: u32, to: u32) -> Step<BankAccount> {
    match pos {
        0 => Step::Invoke(ObjectId(from), BankInv::Withdraw(2)),
        1 => match last {
            Some(BankResp::Ok) => Step::Invoke(ObjectId(to), BankInv::Deposit(2)),
            _ => Step::Abort,
        },
        _ => Step::Commit,
    }
}

fn scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
    (0..n)
        .map(|i| {
            let from = (i as u32) % ACCOUNTS;
            let to = (from + 1) % ACCOUNTS;
            Box::new(transfer(from, to)) as Box<dyn Script<BankAccount>>
        })
        .collect()
}

fn total<E, C>(sys: &mut TxnSystem<BankAccount, E, C>) -> u64
where
    E: RecoveryEngine<BankAccount>,
    C: Conflict<BankAccount>,
{
    (0..ACCOUNTS).map(|i| sys.committed_state(ObjectId(i))).sum()
}

fn seed_funds<E, C>(sys: &mut TxnSystem<BankAccount, E, C>)
where
    E: RecoveryEngine<BankAccount>,
    C: Conflict<BankAccount>,
{
    let t = sys.begin();
    for i in 0..ACCOUNTS {
        sys.invoke(t, ObjectId(i), BankInv::Deposit(SEED_FUNDS)).unwrap();
    }
    sys.commit(t).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn conservation_under_every_configuration(
        seed in 0u64..10_000,
        n in 1usize..10,
        mpl in 0usize..4,
    ) {
        let cfg = SchedulerCfg { seed, mpl, ..Default::default() };

        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nrbc());
        seed_funds(&mut sys);
        run(&mut sys, scripts(n), &cfg);
        prop_assert_eq!(total(&mut sys), SEED_FUNDS * ACCOUNTS as u64);

        let mut sys: TxnSystem<BankAccount, UipInverseEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nrbc())
                .with_policy(ConflictPolicy::WoundWait);
        seed_funds(&mut sys);
        run(&mut sys, scripts(n), &cfg);
        prop_assert_eq!(total(&mut sys), SEED_FUNDS * ACCOUNTS as u64);

        let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nfc());
        seed_funds(&mut sys);
        run(&mut sys, scripts(n), &cfg);
        prop_assert_eq!(total(&mut sys), SEED_FUNDS * ACCOUNTS as u64);

        // Even the mismatched pairing conserves: validation aborts discard
        // whole transactions, never halves of them (atomic commitment).
        let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), ACCOUNTS, SymmetricClosure(bank_nrbc()));
        seed_funds(&mut sys);
        run(&mut sys, scripts(n), &cfg);
        prop_assert_eq!(total(&mut sys), SEED_FUNDS * ACCOUNTS as u64);
    }
}

#[test]
fn conservation_under_optimistic_execution() {
    use ccr::runtime::optimistic::OptimisticSystem;
    use ccr::runtime::TxnError;
    let mut sys = OptimisticSystem::new(BankAccount::default(), ACCOUNTS, bank_nfc());
    let t = sys.begin();
    for i in 0..ACCOUNTS {
        sys.invoke(t, ObjectId(i), BankInv::Deposit(SEED_FUNDS)).unwrap();
    }
    sys.commit(t).unwrap();

    // Drive transfer scripts manually with retry-on-validation.
    for mut script in scripts(24) {
        let mut attempts = 0;
        'retry: loop {
            attempts += 1;
            assert!(attempts < 100, "optimistic retry storm");
            script.reset();
            let txn = sys.begin();
            let mut last = None;
            loop {
                match script.next(last.as_ref()) {
                    Step::Invoke(obj, inv) => {
                        last = Some(sys.invoke(txn, obj, inv).unwrap());
                    }
                    Step::Commit => match sys.commit(txn) {
                        Ok(()) => break 'retry,
                        Err(TxnError::Aborted(_)) => continue 'retry,
                        Err(e) => panic!("{e}"),
                    },
                    Step::Abort => {
                        sys.abort(txn).unwrap();
                        break 'retry;
                    }
                }
            }
        }
    }
    let total: u64 = (0..ACCOUNTS).map(|i| sys.committed_state(ObjectId(i))).sum();
    assert_eq!(total, SEED_FUNDS * ACCOUNTS as u64);
}

#[test]
fn conservation_under_threads() {
    for workers in [2usize, 4, 8] {
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nrbc());
        seed_funds(&mut sys);
        let cfg = ThreadedCfg { workers, ..Default::default() };
        let (report, mut sys) = run_threaded(sys, scripts(24), &cfg);
        assert_eq!(report.committed + report.voluntary_aborts + report.gave_up, 24);
        assert_eq!(total(&mut sys), SEED_FUNDS * ACCOUNTS as u64, "{workers} workers");
    }
}
