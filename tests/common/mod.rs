//! Shared support for the integration tests: randomly generated
//! table-driven ADTs.
//!
//! A [`TableAdt`] is a deterministic partial state machine over a small
//! fixed state set and invocation alphabet, with a single (constant)
//! response. Random transition tables give random serial specifications, so
//! properties of the commutativity relations and of Theorems 9/10 can be
//! tested over *arbitrary* specifications rather than the curated ADT
//! library.

#![allow(dead_code)]

use ccr::core::adt::{Adt, EnumerableAdt, Op, StateCover};
use proptest::prelude::*;

/// States of a [`TableAdt`] are `0..N_STATES`.
pub const N_STATES: usize = 4;
/// Invocations of a [`TableAdt`] are `0..N_INVS`.
pub const N_INVS: usize = 3;

/// A randomly generated deterministic partial state machine.
///
/// `trans[s][i]` is the post-state of invocation `i` in state `s`, or `None`
/// when `i` is disabled there (partiality). Every invocation responds `0`,
/// so operations and invocations coincide.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableAdt {
    /// The transition table, indexed `[state][invocation]`.
    pub trans: Vec<Vec<Option<u8>>>,
}

impl TableAdt {
    /// Build a table from `N_STATES * N_INVS` raw values; each value is
    /// reduced mod `N_STATES + 1`, with the extra residue meaning
    /// "disabled".
    pub fn from_raw(raw: &[u8]) -> TableAdt {
        assert_eq!(raw.len(), N_STATES * N_INVS);
        let trans = (0..N_STATES)
            .map(|s| {
                (0..N_INVS)
                    .map(|i| {
                        let v = raw[s * N_INVS + i] % (N_STATES as u8 + 1);
                        (v < N_STATES as u8).then_some(v)
                    })
                    .collect()
            })
            .collect();
        TableAdt { trans }
    }

    /// Deterministically derive a table from a seed (splitmix64 stream).
    pub fn from_seed(seed: u64) -> TableAdt {
        let mut x = seed;
        let raw: Vec<u8> = (0..N_STATES * N_INVS)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z >> 56) as u8
            })
            .collect();
        TableAdt::from_raw(&raw)
    }

    /// All states reachable from the initial state, in BFS order.
    pub fn reachable(&self) -> Vec<u8> {
        let mut seen = [false; N_STATES];
        let mut out = vec![0u8];
        seen[0] = true;
        let mut head = 0;
        while head < out.len() {
            let s = out[head] as usize;
            head += 1;
            for t in self.trans[s].iter().flatten() {
                if !seen[*t as usize] {
                    seen[*t as usize] = true;
                    out.push(*t);
                }
            }
        }
        out
    }

    /// Every operation enabled in at least one reachable state.
    pub fn grid(&self) -> Vec<Op<TableAdt>> {
        self.ops_enabled_somewhere(&self.reachable())
    }
}

impl Adt for TableAdt {
    type State = u8;
    type Invocation = u8;
    type Response = u8;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, inv: &u8) -> Vec<(u8, u8)> {
        match self.trans[*s as usize][*inv as usize] {
            Some(t) => vec![(0, t)],
            None => vec![],
        }
    }
}

impl EnumerableAdt for TableAdt {
    fn invocations(&self) -> Vec<u8> {
        (0..N_INVS as u8).collect()
    }
}

impl StateCover for TableAdt {
    // Cover argument: the machine is deterministic with a single response
    // per invocation, so every legal operation sequence reaches exactly one
    // state. Covering the (finitely many) reachable states therefore covers
    // all prefixes, and the state-cover engine's verdicts are exact.
    fn state_cover(&self, _ops: &[Op<Self>]) -> Vec<u8> {
        self.reachable()
    }

    fn reach_sequence(&self, state: &u8) -> Option<Vec<Op<Self>>> {
        // BFS from the initial state, recording the operation that first
        // discovered each state.
        let mut parent: [Option<(u8, u8)>; N_STATES] = [None; N_STATES]; // (pred, inv)
        let mut seen = [false; N_STATES];
        let mut queue = vec![0u8];
        seen[0] = true;
        let mut head = 0;
        while head < queue.len() {
            let s = queue[head];
            head += 1;
            for (i, t) in self.trans[s as usize].iter().enumerate() {
                if let Some(t) = t {
                    if !seen[*t as usize] {
                        seen[*t as usize] = true;
                        parent[*t as usize] = Some((s, i as u8));
                        queue.push(*t);
                    }
                }
            }
        }
        if !seen[*state as usize] {
            return None;
        }
        let mut ops = Vec::new();
        let mut cur = *state;
        while let Some((pred, inv)) = parent[cur as usize] {
            ops.push(Op::new(inv, 0));
            cur = pred;
        }
        ops.reverse();
        Some(ops)
    }
}

/// A proptest strategy over random transition tables.
pub fn table_adt() -> impl Strategy<Value = TableAdt> {
    prop::collection::vec(0u8..(N_STATES as u8 + 1), N_STATES * N_INVS)
        .prop_map(|raw| TableAdt::from_raw(&raw))
}
