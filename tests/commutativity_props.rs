//! Property tests for the core formal machinery (spec legality,
//! equieffectiveness, commutativity) on the bank account.

use ccr::adt::bank::{ops, BankAccount};
use ccr::core::adt::Op;
use ccr::core::commutativity::{commute_forward, right_commutes_backward};
use ccr::core::equieffect::{equieffective, looks_like, InclusionCfg};
use ccr::core::spec::{legal, legal_prefix_len, reach};
use proptest::prelude::*;

/// Strategy: an arbitrary bank operation with small parameters. Responses
/// may be "wrong" (e.g. `withdraw → ok` at a low balance); legality filters
/// them, which is exactly what we want to exercise.
fn op_strategy() -> impl Strategy<Value = Op<BankAccount>> {
    prop_oneof![
        (1u64..=4).prop_map(ops::deposit),
        (1u64..=4).prop_map(ops::withdraw_ok),
        (1u64..=4).prop_map(ops::withdraw_no),
        (0u64..=6).prop_map(ops::balance),
    ]
}

fn seq_strategy(max: usize) -> impl Strategy<Value = Vec<Op<BankAccount>>> {
    prop::collection::vec(op_strategy(), 0..max)
}

proptest! {
    /// Spec membership is prefix-closed (the defining property of a serial
    /// specification, §3.2).
    #[test]
    fn legality_is_prefix_closed(seq in seq_strategy(10)) {
        let ba = BankAccount::default();
        let n = legal_prefix_len(&ba, &seq);
        for k in 0..=seq.len() {
            prop_assert_eq!(legal(&ba, &seq[..k]), k <= n);
        }
    }

    /// Reach-sets of the (deterministic) bank are at most singletons, and
    /// the reached balance equals the arithmetic fold.
    #[test]
    fn reach_matches_arithmetic(seq in seq_strategy(10)) {
        let ba = BankAccount::default();
        let r = reach(&ba, &seq);
        prop_assert!(r.states().len() <= 1);
        if let Some(&balance) = r.states().first() {
            let mut acc: i64 = 0;
            for op in &seq {
                match (&op.inv, &op.resp) {
                    (ccr::adt::bank::BankInv::Deposit(i), ccr::adt::bank::BankResp::Ok) => {
                        acc += *i as i64
                    }
                    (ccr::adt::bank::BankInv::Withdraw(i), ccr::adt::bank::BankResp::Ok) => {
                        acc -= *i as i64
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(balance as i64, acc);
        }
    }

    /// Lemma 3: *looks like* is transitive (checked on triples where the
    /// premises hold).
    #[test]
    fn looks_like_is_transitive(
        a in seq_strategy(5),
        b in seq_strategy(5),
        c in seq_strategy(5),
    ) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        if looks_like(&ba, &a, &b, cfg).holds() && looks_like(&ba, &b, &c, cfg).holds() {
            prop_assert!(looks_like(&ba, &a, &c, cfg).holds());
        }
    }

    /// Lemma 6: if α looks like β then αγ looks like βγ.
    #[test]
    fn looks_like_right_congruence(
        a in seq_strategy(5),
        b in seq_strategy(5),
        g in seq_strategy(3),
    ) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        if looks_like(&ba, &a, &b, cfg).holds() {
            let mut ag = a.clone();
            ag.extend(g.iter().cloned());
            let mut bg = b.clone();
            bg.extend(g.iter().cloned());
            prop_assert!(looks_like(&ba, &ag, &bg, cfg).holds());
        }
    }

    /// *Looks like* is reflexive; equieffectiveness is reflexive and
    /// symmetric (Lemmas 3 and 4).
    #[test]
    fn equieffective_is_reflexive_and_symmetric(
        a in seq_strategy(6),
        b in seq_strategy(6),
    ) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        prop_assert!(looks_like(&ba, &a, &a, cfg).holds());
        let ab = equieffective(&ba, &a, &b, cfg).holds();
        let ba_ = equieffective(&ba, &b, &a, cfg).holds();
        prop_assert_eq!(ab, ba_);
    }

    /// Lemma 7: equieffectiveness is preserved by appending a common suffix.
    #[test]
    fn equieffective_right_congruence(
        a in seq_strategy(5),
        b in seq_strategy(5),
        suffix in seq_strategy(3),
    ) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        if equieffective(&ba, &a, &b, cfg).holds() {
            let mut a2 = a.clone();
            a2.extend(suffix.iter().cloned());
            let mut b2 = b.clone();
            b2.extend(suffix.iter().cloned());
            prop_assert!(equieffective(&ba, &a2, &b2, cfg).holds());
        }
    }

    /// Lemma 8: forward commutativity is symmetric.
    #[test]
    fn fc_is_symmetric(p in op_strategy(), q in op_strategy()) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        prop_assert_eq!(
            commute_forward(&ba, &p, &q, cfg).is_ok(),
            commute_forward(&ba, &q, &p, cfg).is_ok()
        );
    }

    /// An RBC refutation witness really is a witness:
    /// `α·Q·P·γ ∈ Spec ∧ α·P·Q·γ ∉ Spec`.
    #[test]
    fn rbc_witnesses_replay(p in op_strategy(), q in op_strategy()) {
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        if let Err(f) = right_commutes_backward(&ba, &p, &q, cfg) {
            let mut qp = f.prefix.clone();
            qp.extend([q.clone(), p.clone()]);
            qp.extend(f.continuation.iter().cloned());
            prop_assert!(legal(&ba, &qp), "αQPγ must be legal");
            let mut pq = f.prefix.clone();
            pq.extend([p.clone(), q.clone()]);
            pq.extend(f.continuation.iter().cloned());
            prop_assert!(!legal(&ba, &pq), "αPQγ must be illegal");
        }
    }

    /// An FC refutation witness replays: `αP, αQ ∈ Spec` and the failure
    /// mode is real.
    #[test]
    fn fc_witnesses_replay(p in op_strategy(), q in op_strategy()) {
        use ccr::core::commutativity::FcFailureKind;
        let ba = BankAccount::default();
        let cfg = InclusionCfg::default();
        if let Err(f) = commute_forward(&ba, &p, &q, cfg) {
            let mut ap = f.prefix.clone();
            ap.push(p.clone());
            prop_assert!(legal(&ba, &ap));
            let mut aq = f.prefix.clone();
            aq.push(q.clone());
            prop_assert!(legal(&ba, &aq));
            match &f.kind {
                FcFailureKind::PqIllegal => {
                    let mut pq = f.prefix.clone();
                    pq.extend([p.clone(), q.clone()]);
                    prop_assert!(!legal(&ba, &pq));
                }
                FcFailureKind::Distinguished { after_pq, continuation } => {
                    let mut pq = f.prefix.clone();
                    pq.extend([p.clone(), q.clone()]);
                    pq.extend(continuation.iter().cloned());
                    let mut qp = f.prefix.clone();
                    qp.extend([q.clone(), p.clone()]);
                    qp.extend(continuation.iter().cloned());
                    if *after_pq {
                        prop_assert!(legal(&ba, &pq) && !legal(&ba, &qp));
                    } else {
                        prop_assert!(legal(&ba, &qp) && !legal(&ba, &pq));
                    }
                }
            }
        }
    }
}
