//! Property tests for the history algebra of §2–3, driven by random walks
//! of the abstract object automaton (so every input is a *realisable*
//! history, not just a well-formed one).

use ccr::adt::bank::{bank_nrbc, BankAccount};
use ccr::core::explore::{random_history, ExploreCfg};
use ccr::core::ids::TxnId;
use ccr::core::object::ObjectAutomaton;
use ccr::core::order::TxnOrder;
use ccr::core::view::Uip;
use ccr::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_history(seed: u64, steps: usize) -> History<BankAccount> {
    let automaton =
        ObjectAutomaton::new(BankAccount { amounts: vec![1, 2] }, Uip, bank_nrbc(), ObjectId::SOLE);
    let cfg = ExploreCfg {
        txns: vec![TxnId(0), TxnId(1), TxnId(2)],
        max_ops_per_txn: 3,
        max_total_ops: 8,
        allow_aborts: true,
        max_histories: 0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    random_history(&automaton, &cfg, steps, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Serial(H, T)` is equivalent to `H` (same per-transaction steps) for
    /// any permutation covering `H`'s transactions, and is serial and
    /// failure-free when `H` is failure-free.
    #[test]
    fn serial_is_equivalent_and_serial(seed in 0u64..5000, steps in 4usize..20) {
        let h = sample_history(seed, steps);
        let txns: Vec<TxnId> = h.txns().into_iter().collect();
        let s = h.serial(&txns);
        prop_assert!(h.equivalent(&s));
        if h.aborted().is_empty() {
            prop_assert!(s.is_serial_failure_free());
        }
    }

    /// `permanent(H)` contains exactly the committed transactions' events.
    #[test]
    fn permanent_projects_committed(seed in 0u64..5000, steps in 4usize..20) {
        let h = sample_history(seed, steps);
        let p = h.permanent();
        prop_assert_eq!(p.txns(), h.committed());
        for t in h.committed() {
            let lhs = p.project_txn(t);
            let rhs = h.project_txn(t);
            prop_assert_eq!(lhs.events(), rhs.events());
        }
    }

    /// `precedes(H)` is a partial order (acyclic), and `Commit-order(H)` is
    /// one of its linear extensions (restricted to committed transactions).
    #[test]
    fn precedes_is_acyclic_and_commit_order_consistent(
        seed in 0u64..5000,
        steps in 4usize..24,
    ) {
        let h = sample_history(seed, steps);
        let committed: Vec<TxnId> = h.committed().into_iter().collect();
        let prec = TxnOrder::from_pairs(h.precedes()).restrict(&committed);
        // Acyclicity ⇔ at least one linear extension exists (when the set is
        // non-empty).
        if !committed.is_empty() {
            let mut found = false;
            prec.for_each_extension(&committed, |_| {
                found = true;
                false
            });
            prop_assert!(found, "precedes must be acyclic");
        }
        prop_assert!(
            prec.consistent(&h.commit_order()),
            "commit order must extend precedes"
        );
    }

    /// Projection commutes with `permanent` and preserves well-formedness
    /// invariants surfaced through the public API (Lemma 1 direction:
    /// `precedes(H|X) ⊆ precedes(H)`).
    #[test]
    fn lemma_1_precedes_projection(seed in 0u64..5000, steps in 4usize..24) {
        let h = sample_history(seed, steps);
        let local = h.project_obj(ObjectId::SOLE);
        let global: Vec<_> = h.precedes();
        for pair in local.precedes() {
            prop_assert!(
                global.contains(&pair),
                "precedes(H|X) ⊄ precedes(H): {pair:?}"
            );
        }
    }

    /// Opseq length equals the number of response events.
    #[test]
    fn opseq_counts_responses(seed in 0u64..5000, steps in 4usize..24) {
        let h = sample_history(seed, steps);
        let responses = h
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Respond { .. }))
            .count();
        prop_assert_eq!(h.opseq().len(), responses);
    }
}
