//! Cross-crate verification that every ADT's hand-written conflict tables
//! equal the relations computed from its specification — the public-API
//! version of the reproduction of Figures 6-1/6-2, extended to the whole
//! ADT library.

mod common;

use ccr::core::adt::{EnumerableAdt, Op, StateCover};
use ccr::core::commutativity::{
    build_tables, build_tables_bounded, commute_forward, right_commutes_backward, FcFailure,
    FcFailureKind, PrefixCfg,
};
use ccr::core::conflict::{Conflict, FnConflict};
use ccr::core::equieffect::InclusionCfg;
use ccr::core::spec;
use common::{table_adt, TableAdt};
use proptest::prelude::*;

fn verify<A: EnumerableAdt + StateCover>(
    adt: &A,
    grid: &[Op<A>],
    nfc: &FnConflict<A>,
    nrbc: &FnConflict<A>,
) {
    let cfg = InclusionCfg::default();
    for p in grid {
        for q in grid {
            assert_eq!(
                nfc.conflicts(p, q),
                commute_forward(adt, p, q, cfg).is_err(),
                "NFC mismatch for ({p:?}, {q:?})"
            );
            assert_eq!(
                nrbc.conflicts(p, q),
                right_commutes_backward(adt, p, q, cfg).is_err(),
                "NRBC mismatch for ({p:?}, {q:?})"
            );
        }
    }
}

#[test]
fn bank_tables_match_over_a_wide_grid() {
    use ccr::adt::bank::{bank_nfc, bank_nrbc, ops, BankAccount};
    let adt = BankAccount { amounts: vec![1, 2, 3, 4] };
    let mut grid = Vec::new();
    for i in 1..=4 {
        grid.push(ops::deposit(i));
        grid.push(ops::withdraw_ok(i));
        grid.push(ops::withdraw_no(i));
    }
    for v in 0..=5 {
        grid.push(ops::balance(v));
    }
    verify(&adt, &grid, &bank_nfc(), &bank_nrbc());
}

#[test]
fn escrow_tables_match_for_several_capacities() {
    use ccr::adt::escrow::{escrow_nfc, escrow_nrbc, ops, EscrowAccount};
    for cap in [3u64, 5, 7] {
        let adt = EscrowAccount::new(cap, [1, 2]);
        let mut grid = Vec::new();
        for i in 1..=cap.min(3) {
            grid.push(ops::credit_ok(i));
            grid.push(ops::credit_no(i));
            grid.push(ops::debit_ok(i));
            grid.push(ops::debit_no(i));
        }
        verify(&adt, &grid, &escrow_nfc(), &escrow_nrbc());
    }
}

#[test]
fn queue_and_stack_tables_match() {
    {
        use ccr::adt::queue::{ops, queue_nfc, queue_nrbc, FifoQueue};
        let adt = FifoQueue { values: vec![0, 1, 2] };
        let grid = vec![
            ops::enq(0),
            ops::enq(1),
            ops::enq(2),
            ops::deq_got(0),
            ops::deq_got(1),
            ops::deq_empty(),
        ];
        verify(&adt, &grid, &queue_nfc(), &queue_nrbc());
    }
    {
        use ccr::adt::stack::{ops, stack_nfc, stack_nrbc, Stack};
        let adt = Stack { values: vec![0, 1, 2] };
        let grid =
            vec![ops::push(0), ops::push(1), ops::pop_got(0), ops::pop_got(1), ops::pop_empty()];
        verify(&adt, &grid, &stack_nfc(), &stack_nrbc());
    }
}

#[test]
fn semiqueue_tables_match_and_beat_the_queue() {
    use ccr::adt::semiqueue::{ops, semiqueue_nfc, semiqueue_nrbc, Semiqueue};
    let adt = Semiqueue { values: vec![0, 1] };
    let grid = vec![ops::enq(0), ops::enq(1), ops::deq_got(0), ops::deq_got(1), ops::deq_empty()];
    verify(&adt, &grid, &semiqueue_nfc(), &semiqueue_nrbc());

    // The concurrency pay-off of specification non-determinism: strictly
    // fewer conflicts than the FIFO queue over the analogous grid.
    use ccr::adt::queue::{queue_nfc, queue_nrbc};
    let count = |f: &dyn Fn(usize, usize) -> bool| {
        (0..grid.len())
            .flat_map(|i| (0..grid.len()).map(move |j| (i, j)))
            .filter(|(i, j)| f(*i, *j))
            .count()
    };
    let q_grid = [
        ccr::adt::queue::ops::enq(0),
        ccr::adt::queue::ops::enq(1),
        ccr::adt::queue::ops::deq_got(0),
        ccr::adt::queue::ops::deq_got(1),
        ccr::adt::queue::ops::deq_empty(),
    ];
    let sq_nfc = semiqueue_nfc();
    let sq_nrbc = semiqueue_nrbc();
    let q_nfc = queue_nfc();
    let q_nrbc = queue_nrbc();
    let sq_nfc_n = count(&|i, j| sq_nfc.conflicts(&grid[i], &grid[j]));
    let q_nfc_n = count(&|i, j| q_nfc.conflicts(&q_grid[i], &q_grid[j]));
    let sq_nrbc_n = count(&|i, j| sq_nrbc.conflicts(&grid[i], &grid[j]));
    let q_nrbc_n = count(&|i, j| q_nrbc.conflicts(&q_grid[i], &q_grid[j]));
    assert!(sq_nfc_n < q_nfc_n, "semiqueue NFC {sq_nfc_n} vs queue {q_nfc_n}");
    assert!(sq_nrbc_n < q_nrbc_n, "semiqueue NRBC {sq_nrbc_n} vs queue {q_nrbc_n}");
}

#[test]
fn kv_and_register_tables_match() {
    {
        use ccr::adt::kv::{kv_nfc, kv_nrbc, ops, KvStore};
        let adt = KvStore { keys: vec![0, 1], values: vec![0, 1] };
        let grid = vec![
            ops::put(0, 0),
            ops::put(0, 1),
            ops::get(0, None),
            ops::get(0, Some(0)),
            ops::get(0, Some(1)),
            ops::del(0),
            ops::put(1, 1),
            ops::get(1, Some(1)),
        ];
        verify(&adt, &grid, &kv_nfc(), &kv_nrbc());
    }
    {
        use ccr::adt::register::{ops, register_nfc, register_nrbc, RwRegister};
        let adt = RwRegister { values: vec![0, 1, 2] };
        let grid = vec![
            ops::write(0),
            ops::write(1),
            ops::write(2),
            ops::read(0),
            ops::read(1),
            ops::read(3),
        ];
        verify(&adt, &grid, &register_nfc(), &register_nrbc());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random specifications: FC is symmetric (Lemma 8) and the two
    /// decision engines agree pair-by-pair — so neither the curated ADT
    /// library nor hand-picked grids are load-bearing for the tables.
    #[test]
    fn random_tables_are_fc_symmetric_and_engine_agreed(adt in table_adt()) {
        let grid = adt.grid();
        let t = build_tables(&adt, &grid, InclusionCfg::default());
        prop_assert!(t.exact, "state-cover verdicts must be exact on {adt:?}");
        prop_assert!(t.fc_symmetric(), "Lemma 8: FC must be symmetric on {adt:?}");
        let b = build_tables_bounded(&adt, &grid, &PrefixCfg::default());
        prop_assert!(b.exact, "finite machine must close under prefixes");
        prop_assert_eq!(&t.fc, &b.fc, "engines disagree on FC for {:?}", &adt);
        prop_assert_eq!(&t.rbc, &b.rbc, "engines disagree on RBC for {:?}", &adt);
    }

    /// Every negative verdict on a random specification carries a witness
    /// that replays against the specification itself: `αQPγ` legal but
    /// `αPQγ` illegal for RBC, and `αP, αQ` legal with `αPQ` illegal for
    /// the `PqIllegal` mode of FC.
    #[test]
    fn random_table_refutations_are_replayable(adt in table_adt()) {
        let grid = adt.grid();
        let cfg = InclusionCfg::default();
        for p in &grid {
            for q in &grid {
                if let Err(f) = right_commutes_backward(&adt, p, q, cfg) {
                    let mut aqp = f.prefix.clone();
                    aqp.extend([q.clone(), p.clone()]);
                    aqp.extend(f.continuation.iter().cloned());
                    prop_assert!(spec::legal(&adt, &aqp), "αQPγ must be legal on {adt:?}");
                    let mut apq = f.prefix.clone();
                    apq.extend([p.clone(), q.clone()]);
                    apq.extend(f.continuation.iter().cloned());
                    prop_assert!(!spec::legal(&adt, &apq), "αPQγ must be illegal on {adt:?}");
                }
                if let Err(FcFailure { prefix, kind }) = commute_forward(&adt, p, q, cfg) {
                    let mut ap = prefix.clone();
                    ap.push(p.clone());
                    prop_assert!(spec::legal(&adt, &ap), "αP must be legal on {adt:?}");
                    let mut aq = prefix.clone();
                    aq.push(q.clone());
                    prop_assert!(spec::legal(&adt, &aq), "αQ must be legal on {adt:?}");
                    if matches!(kind, FcFailureKind::PqIllegal) {
                        let mut apq = ap;
                        apq.push(q.clone());
                        prop_assert!(!spec::legal(&adt, &apq), "αPQ must be illegal on {adt:?}");
                    }
                }
            }
        }
    }
}

/// FC and RBC are *incomparable* — in particular the tempting containment
/// "RBC admits every pair FC admits" (FC ⊆ RBC) is **false**. This is the
/// paper's §6.4 point: neither recovery method needs a subset of the other's
/// conflicts. Witnessed on the paper's own bank account:
///
/// * `(withdraw_ok, deposit)`: FC holds (both enabled ⇒ funds suffice in
///   either order, same final balance) yet withdraw_ok does **not** right
///   commute backward with deposit (`α·deposit·withdraw_ok` may be legal
///   only *because* of the deposit) — so FC ⊄ RBC;
/// * `(withdraw_ok, withdraw_ok)`: RBC holds (`α·w·w` legal ⇒ funds cover
///   both) yet FC fails (`αP, αQ` legal needs one withdrawal's funds, the
///   sequence needs both) — so RBC ⊄ FC.
///
/// RBC is also asymmetric on exactly this pair: deposit *does* right commute
/// backward with withdraw_ok while the converse fails (Figure 6-2's
/// asymmetric row).
#[test]
fn fc_and_rbc_are_incomparable_and_rbc_is_asymmetric() {
    use ccr::adt::bank::{ops, BankAccount};
    let adt = BankAccount { amounts: vec![1, 2, 3] };
    let cfg = InclusionCfg::default();
    let dep = ops::deposit(2);
    let wok = ops::withdraw_ok(2);

    // FC ⊄ RBC.
    assert!(commute_forward(&adt, &wok, &dep, cfg).is_ok());
    assert!(right_commutes_backward(&adt, &wok, &dep, cfg).is_err());
    // RBC ⊄ FC.
    assert!(right_commutes_backward(&adt, &wok, &wok, cfg).is_ok());
    assert!(commute_forward(&adt, &wok, &wok, cfg).is_err());
    // RBC asymmetry on (deposit, withdraw_ok).
    assert!(right_commutes_backward(&adt, &dep, &wok, cfg).is_ok());
}

/// RBC asymmetry is not a bank-account quirk: it shows up in randomly
/// generated specifications too (while FC symmetry never breaks — Lemma 8).
#[test]
fn rbc_asymmetry_appears_in_random_tables() {
    let mut asymmetric = 0u32;
    for seed in 0..64u64 {
        let adt = TableAdt::from_seed(seed);
        let grid = adt.grid();
        let t = build_tables(&adt, &grid, InclusionCfg::default());
        assert!(t.fc_symmetric(), "Lemma 8 violated on seed {seed}: {adt:?}");
        if !t.rbc_symmetric() {
            asymmetric += 1;
        }
    }
    assert!(asymmetric > 0, "no asymmetric RBC table in 64 random machines");
}

/// The two engines (state cover vs bounded prefix exploration) agree on a
/// finite-state ADT — cross-validation of the decision procedures
/// themselves.
#[test]
fn cover_and_bounded_engines_agree_on_escrow() {
    use ccr::adt::escrow::{ops, EscrowAccount};
    let adt = EscrowAccount::new(3, [1, 2]);
    let grid = vec![
        ops::credit_ok(1),
        ops::credit_ok(2),
        ops::credit_no(2),
        ops::debit_ok(1),
        ops::debit_no(2),
    ];
    let cfg = InclusionCfg::default();
    let bounded = build_tables_bounded(&adt, &grid, &PrefixCfg::default());
    assert!(bounded.exact, "escrow prefix space must close");
    for (i, p) in grid.iter().enumerate() {
        for (j, q) in grid.iter().enumerate() {
            assert_eq!(
                bounded.fc[i][j],
                commute_forward(&adt, p, q, cfg).is_ok(),
                "engines disagree on FC({p:?},{q:?})"
            );
            assert_eq!(
                bounded.rbc[i][j],
                right_commutes_backward(&adt, p, q, cfg).is_ok(),
                "engines disagree on RBC({p:?},{q:?})"
            );
        }
    }
}
