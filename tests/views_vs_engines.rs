//! The runtime's recovery engines must realise the paper's `View` functions
//! exactly: at every step of an execution, the state an engine shows a
//! transaction equals the fold of `UIP(H, A)` / `DU(H, A)` computed by the
//! abstract definitions over the recorded history.

use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr::core::ids::{ObjectId, TxnId};
use ccr::core::spec::reach;
use ccr::core::view::{Du, Uip, ViewFn};
use ccr::runtime::engine::{DuEngine, RecoveryEngine, UipEngine};
use ccr::runtime::{TxnError, TxnSystem};
use proptest::prelude::*;

const OBJS: u32 = 2;

#[derive(Clone, Debug)]
enum Action {
    Invoke(u8, u32, BankInv), // txn slot, object, invocation
    Commit(u8),
    Abort(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    let inv = prop_oneof![
        (1u64..=3).prop_map(BankInv::Deposit),
        (1u64..=3).prop_map(BankInv::Withdraw),
        Just(BankInv::Balance),
    ];
    prop_oneof![
        ((0u8..4), (0u32..OBJS), inv).prop_map(|(t, o, i)| Action::Invoke(t, o, i)),
        (0u8..4).prop_map(Action::Commit),
        (0u8..4).prop_map(Action::Abort),
    ]
}

/// Drive a random action sequence through the system, and after every
/// successful step compare each engine view with the abstract view computed
/// from the recorded trace.
fn check_views<E, V, C>(actions: &[Action], conflict: C, view: V)
where
    E: RecoveryEngine<BankAccount>,
    V: ViewFn<BankAccount>,
    C: ccr::core::conflict::Conflict<BankAccount>,
{
    let adt = BankAccount::default();
    let mut sys: TxnSystem<BankAccount, E, C> = TxnSystem::new(adt.clone(), OBJS, conflict);
    let mut slots: [Option<TxnId>; 4] = [None; 4];
    for a in actions {
        match a {
            Action::Invoke(slot, obj, inv) => {
                let txn = *slots[*slot as usize].get_or_insert_with(|| sys.begin());
                match sys.invoke(txn, ObjectId(*obj), inv.clone()) {
                    Ok(_) | Err(TxnError::Blocked { .. }) => {}
                    Err(TxnError::Aborted(_)) => slots[*slot as usize] = None,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            Action::Commit(slot) => {
                if let Some(txn) = slots[*slot as usize].take() {
                    let _ = sys.commit(txn);
                }
            }
            Action::Abort(slot) => {
                if let Some(txn) = slots[*slot as usize].take() {
                    let _ = sys.abort(txn);
                }
            }
        }
        // Engine views ≡ abstract views, for every live transaction and
        // object.
        let trace = sys.trace().clone();
        for slot in slots.iter().flatten() {
            for obj in 0..OBJS {
                let abstract_ops = view.view(&trace, ObjectId(obj), *slot);
                let abstract_state = reach(&adt, &abstract_ops);
                let engine_state = sys.view_state(*slot, ObjectId(obj)).expect("object exists");
                assert_eq!(
                    abstract_state.states(),
                    &[engine_state],
                    "engine diverged from {} view for {slot} at X{obj}",
                    view.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uip_engine_realises_uip_view(
        actions in prop::collection::vec(action_strategy(), 1..25)
    ) {
        check_views::<UipEngine<BankAccount>, _, _>(&actions, bank_nrbc(), Uip);
    }

    #[test]
    fn du_engine_realises_du_view(
        actions in prop::collection::vec(action_strategy(), 1..25)
    ) {
        check_views::<DuEngine<BankAccount>, _, _>(&actions, bank_nfc(), Du);
    }
}

/// A deterministic spot check including an abort in the middle — the
/// interesting case for UIP (replay) and DU (workspace discard).
#[test]
fn views_agree_across_aborts() {
    let actions = vec![
        Action::Invoke(0, 0, BankInv::Deposit(5)),
        Action::Invoke(1, 0, BankInv::Deposit(3)),
        Action::Invoke(0, 1, BankInv::Deposit(7)),
        Action::Abort(0),
        Action::Invoke(2, 0, BankInv::Balance),
        Action::Commit(1),
        Action::Invoke(2, 1, BankInv::Balance),
        Action::Commit(2),
    ];
    check_views::<UipEngine<BankAccount>, _, _>(&actions, bank_nrbc(), Uip);
    check_views::<DuEngine<BankAccount>, _, _>(&actions, bank_nfc(), Du);
}
