//! Property tests for the durable storage engine (`ccr-store`) as driven by
//! the runtime's `DurableSystem`:
//!
//! * **Checkpoint equivalence** — checkpointing (which folds the log prefix
//!   into a checkpoint image and truncates whole segments) must be invisible
//!   to recovery: for any workload, crash schedule and tail policy, a run
//!   that checkpoints recovers to exactly the state of the run that never
//!   does, under both the UIP and DU engine/conflict pairings.
//! * **Corruption exhaustion** — flipping *every single stable bit* of a
//!   small committed log image either leaves recovery unaffected (the bit
//!   was slack) or fails loudly with a CRC/torn-tail error. Silent
//!   divergence of the recovered state is the one outcome that must never
//!   happen.

use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr::core::conflict::FnConflict;
use ccr::core::ids::{ObjectId, TxnId};
use ccr::runtime::crash::{DurableSystem, RedoError, TornPolicy};
use ccr::runtime::engine::{DuEngine, RecoveryEngine, UipEngine};
use ccr::store::{LogBackend, WalBackend, WalConfig};
use proptest::prelude::*;

type Durable<E> = DurableSystem<BankAccount, E, FnConflict<BankAccount>, WalBackend<BankAccount>>;

const OBJECTS: u32 = 2;

#[derive(Clone, Debug)]
enum Ev {
    Begin(u8),
    Op(u8, u32, BankInv),
    Commit(u8),
    Abort(u8),
    Checkpoint,
    Crash,
}

fn events() -> impl Strategy<Value = Vec<Ev>> {
    let inv = prop_oneof![
        (1u64..=3).prop_map(BankInv::Deposit),
        (1u64..=3).prop_map(BankInv::Withdraw),
        Just(BankInv::Balance),
    ];
    let ev = prop_oneof![
        4 => (0u8..3).prop_map(Ev::Begin),
        8 => ((0u8..3), (0u32..OBJECTS), inv).prop_map(|(t, o, i)| Ev::Op(t, o, i)),
        4 => (0u8..3).prop_map(Ev::Commit),
        2 => (0u8..3).prop_map(Ev::Abort),
        2 => Just(Ev::Checkpoint),
        1 => Just(Ev::Crash),
    ];
    prop::collection::vec(ev, 1..48)
}

/// Drive `evs` through a fresh disk-backed system. `Checkpoint` events fire
/// only when `checkpoints` is set — the event stream is otherwise identical,
/// and since `checkpoint()` never touches transactional state the two runs
/// make the same commit decisions. Every crash (in-stream and the final one)
/// recovers under `policy`. Returns the recovered per-object state plus the
/// number of checkpoints actually written.
fn run<E: RecoveryEngine<BankAccount>>(
    conflict: FnConflict<BankAccount>,
    evs: &[Ev],
    checkpoints: bool,
    policy: TornPolicy,
) -> (Vec<u64>, u64) {
    let mut sys: Durable<E> = DurableSystem::with_backend(
        BankAccount::default(),
        OBJECTS,
        conflict,
        WalBackend::new(WalConfig::default()),
    );
    let mut slots: [Option<TxnId>; 3] = [None; 3];
    for ev in evs {
        match ev {
            Ev::Begin(s) => {
                if slots[*s as usize].is_none() {
                    slots[*s as usize] = Some(sys.begin());
                }
            }
            Ev::Op(s, o, inv) => {
                if let Some(t) = slots[*s as usize] {
                    // Refusals and conflict blocks are legal outcomes; the
                    // equivalence holds because both runs see the same ones.
                    let _ = sys.invoke(t, ObjectId(*o), inv.clone());
                }
            }
            Ev::Commit(s) => {
                if let Some(t) = slots[*s as usize].take() {
                    let _ = sys.commit(t);
                }
            }
            Ev::Abort(s) => {
                if let Some(t) = slots[*s as usize].take() {
                    let _ = sys.abort(t);
                }
            }
            Ev::Checkpoint => {
                if checkpoints {
                    sys.checkpoint();
                }
            }
            Ev::Crash => {
                sys.crash_and_recover_with(policy).expect("clean crash must recover");
                slots = [None; 3];
            }
        }
    }
    sys.crash_and_recover_with(policy).expect("final clean crash must recover");
    let states = (0..OBJECTS).map(|o| sys.committed_state(ObjectId(o))).collect();
    (states, sys.store_stats().checkpoints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (checkpoint + truncate + crash + recover) ≡ (no checkpoint + crash +
    /// recover), for both engine/conflict pairings and every tail policy.
    #[test]
    fn checkpointing_never_changes_the_recovered_state(evs in events()) {
        let wants_checkpoint = evs.iter().any(|e| matches!(e, Ev::Checkpoint));
        for policy in [TornPolicy::Strict, TornPolicy::DiscardTail] {
            let (uip_ck, ck_count) =
                run::<UipEngine<BankAccount>>(bank_nrbc(), &evs, true, policy);
            let (uip_no, no_count) =
                run::<UipEngine<BankAccount>>(bank_nrbc(), &evs, false, policy);
            prop_assert_eq!(&uip_ck, &uip_no, "UIP diverged under {:?}", policy);
            prop_assert_eq!(no_count, 0);
            // A checkpoint event after at least one commit really truncates.
            if wants_checkpoint {
                prop_assert!(ck_count >= u64::from(!uip_ck.iter().all(|&s| s == 0)));
            }

            let (du_ck, _) = run::<DuEngine<BankAccount>>(bank_nfc(), &evs, true, policy);
            let (du_no, _) = run::<DuEngine<BankAccount>>(bank_nfc(), &evs, false, policy);
            prop_assert_eq!(&du_ck, &du_no, "DU diverged under {:?}", policy);
        }
    }
}

/// Build a small deterministic committed image: three transactions over two
/// objects, mixing deposits and (sometimes refused) withdrawals.
fn committed_image() -> Durable<UipEngine<BankAccount>> {
    let mut sys: Durable<UipEngine<BankAccount>> = DurableSystem::with_backend(
        BankAccount::default(),
        OBJECTS,
        bank_nrbc(),
        WalBackend::new(WalConfig::default()),
    );
    for i in 0..3u32 {
        let t = sys.begin();
        sys.invoke(t, ObjectId(i % 2), BankInv::Deposit(5 + u64::from(i))).unwrap();
        sys.invoke(t, ObjectId((i + 1) % 2), BankInv::Withdraw(1)).unwrap();
        sys.commit(t).unwrap();
    }
    sys
}

/// Crash during a group flush: build one four-record batch made durable by
/// a single fsync, then exhaustively tear every sector position off the end
/// of that flush. Strict recovery must refuse the torn batch loudly; after
/// the `DiscardTail` repair the recovered state must be *a prefix of the
/// batch in commit order* — never a subset that skips a record, never a
/// reordering — under both the update-in-place and deferred-update
/// replayers.
#[test]
fn torn_group_flush_recovers_a_prefix_under_both_replayers() {
    fn image<E: RecoveryEngine<BankAccount>>(
        conflict: FnConflict<BankAccount>,
    ) -> DurableSystem<BankAccount, E, FnConflict<BankAccount>, WalBackend<BankAccount>> {
        let mut sys = DurableSystem::with_backend(
            BankAccount::default(),
            4,
            conflict,
            WalBackend::new(WalConfig::default()),
        );
        // Disjoint objects: txn i deposits 1<<i on object i, so every prefix
        // of the batch recovers to a distinct, recognisable state.
        let txns: Vec<TxnId> = (0..4u32)
            .map(|i| {
                let t = sys.begin();
                sys.invoke(t, ObjectId(i), BankInv::Deposit(1 << i)).unwrap();
                t
            })
            .collect();
        for r in sys.commit_group(&txns) {
            r.unwrap();
        }
        sys
    }

    fn sweep<E: RecoveryEngine<BankAccount>>(conflict: FnConflict<BankAccount>, name: &str) {
        let prefix_states: Vec<Vec<u64>> = (0..=4usize)
            .map(|k| (0..4).map(|i| if i < k { 1u64 << i } else { 0 }).collect())
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for n in 1usize.. {
            let mut sys = image::<E>(conflict.clone());
            if !sys.tear_last_flush(n) {
                // n reached the whole flush; the sweep is exhausted.
                break;
            }
            match sys.crash_and_recover_with(TornPolicy::Strict) {
                Err(RedoError::TornRecord { .. }) => {}
                other => panic!("{name}: tear {n}: strict recovery must refuse, got {other:?}"),
            }
            sys.recover_with(TornPolicy::DiscardTail)
                .unwrap_or_else(|e| panic!("{name}: tear {n}: discard-tail must recover: {e:?}"));
            let k = sys.journal().len();
            assert!(k < 4, "{name}: tear {n}: a torn batch must lose a suffix (kept {k})");
            let got: Vec<u64> = (0..4).map(|o| sys.committed_state(ObjectId(o))).collect();
            assert_eq!(
                got, prefix_states[k],
                "{name}: tear {n}: recovered state must be the length-{k} batch prefix"
            );
            seen.insert(k);
        }
        assert!(
            seen.len() >= 2,
            "{name}: the sector sweep must hit multiple distinct prefixes (saw {seen:?})"
        );
    }

    sweep::<UipEngine<BankAccount>>(bank_nrbc(), "uip");
    sweep::<DuEngine<BankAccount>>(bank_nfc(), "du");
}

/// Satellite of the sharded 2PC work (DESIGN.md §15): a torn **or missing**
/// DECIDE record must resolve to presumed abort on *all* participants —
/// never a mixed outcome where the shard that saw the decision keeps the
/// commit while the others abort. The sweep prepares a two-shard global
/// transaction, journals the commit decision on shard 0 only (the
/// coordinator's own record is never made durable), then loses every
/// persisted prefix of that decide frame in turn: `n = 0` models the
/// decision missing outright (crash before phase two), `n >= 1` tears `n`
/// sectors off the decide flush. A deliberately small sector (16 bytes —
/// the scanner needs the 13-byte frame head in the first sector) makes the
/// 22-byte decide frame span two sectors, so the sweep exercises every
/// expressible persisted prefix of the record: none, and a CRC-torn half.
#[test]
fn torn_or_missing_decide_presumed_aborts_every_participant() {
    use ccr::runtime::shard::{check_uniform_outcome, ShardedSystem};

    type Fleet = ShardedSystem<
        BankAccount,
        UipEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;

    /// Two shards, one global transaction touching both, fully prepared.
    fn prepared_fleet() -> (Fleet, u64) {
        let cfg = WalConfig { sector: 16, seg_sectors: 128 };
        let mut fleet = ShardedSystem::new_with(2, |_| {
            DurableSystem::with_backend(
                BankAccount::default(),
                2,
                bank_nrbc(),
                WalBackend::new(cfg),
            )
        });
        let g = fleet.begin_global();
        fleet.invoke_global(g, ObjectId(0), BankInv::Deposit(7)).unwrap();
        fleet.invoke_global(g, ObjectId(1), BankInv::Deposit(9)).unwrap();
        fleet.prepare_all(g).expect("both participants vote yes");
        (fleet, g)
    }

    let mut torn_positions = 0usize;
    for n in 0usize.. {
        let (mut fleet, g) = prepared_fleet();
        if n > 0 {
            fleet.resolve_participant(g, 0, true).expect("phase two applies on shard 0");
            assert_eq!(
                fleet.shard_mut(0).committed_state(ObjectId(0)),
                7,
                "tear {n}: shard 0 applied the commit before the tear"
            );
            if !fleet.shard_mut(0).tear_last_flush(n) {
                // n reached the whole decide flush; the sweep is exhausted
                // (losing the entire flush is the n == 0 missing case).
                break;
            }
            torn_positions += 1;
        }
        fleet.crash_subset(0b11).unwrap_or_else(|e| panic!("tear {n}: crash must recover: {e:?}"));
        fleet.crash_coordinator();
        assert_eq!(
            fleet.in_doubt(),
            vec![g],
            "tear {n}: the torn decide must put the transaction back in doubt"
        );
        let resolved = fleet.resolve_in_doubt();
        assert_eq!(resolved, 2, "tear {n}: both participants resolve");
        assert!(fleet.in_doubt().is_empty(), "tear {n}: nothing stays in doubt");
        let states: Vec<u64> =
            (0..2).map(|s| fleet.shard_mut(s).committed_state(ObjectId(s as u32))).collect();
        check_uniform_outcome(&[(g, vec![0, 1])], |_, s| states[s] != 0)
            .unwrap_or_else(|v| panic!("tear {n}: mixed outcome: {v:?}"));
        assert_eq!(
            states,
            vec![0, 0],
            "tear {n}: without a durable decision the outcome is presumed abort everywhere"
        );
    }
    assert!(
        torn_positions >= 1,
        "the decide frame must span multiple sectors so the sweep hits a real \
         torn prefix, not only the missing-record case (saw {torn_positions})"
    );
}

/// Exhaustive crash-at-every-device-op sweep during `write_checkpoint`: a
/// checkpoint is a multi-op sequence (image frames, header rewrite, segment
/// truncation) and a crash at any point must leave the replay base either
/// the *old* checkpoint (the journal suffix replays the post-checkpoint
/// commits) or the *new* one (nothing left to replay) — never a hybrid.
/// Either way the recovered state is the full committed state.
#[test]
fn checkpoint_crash_sweep_recovers_old_or_new_base_never_hybrid() {
    /// Three committed txns, a first checkpoint (the "old" base), then two
    /// more committed txns that only the log suffix carries.
    fn ckpt_image() -> Durable<UipEngine<BankAccount>> {
        let mut sys = committed_image();
        sys.checkpoint();
        for i in 0..2u32 {
            let t = sys.begin();
            sys.invoke(t, ObjectId(i % 2), BankInv::Deposit(100 + u64::from(i))).unwrap();
            sys.commit(t).unwrap();
        }
        sys
    }

    // Probe run: how many device ops does a clean second checkpoint take,
    // and what state must every trial recover to?
    let mut probe = ckpt_image();
    assert_eq!(probe.store_stats().checkpoints, 1, "the old base is durable");
    let ops_before = probe.backend_mut().disk_mut().device_ops();
    probe.checkpoint();
    let ckpt_ops = probe.backend_mut().disk_mut().device_ops() - ops_before;
    assert!(ckpt_ops > 0, "a checkpoint must touch the device");
    assert_eq!(probe.store_stats().checkpoints, 2);
    probe.crash_and_recover().expect("clean image recovers");
    let expect: Vec<u64> = (0..OBJECTS).map(|o| probe.committed_state(ObjectId(o))).collect();

    // One trial per device-op index: kill the checkpoint there, power-cycle,
    // and demand an old-XOR-new replay base with the full committed state.
    let mut base_counts = std::collections::BTreeSet::new();
    for i in 0..ckpt_ops {
        let mut sys = ckpt_image();
        sys.backend_mut().disk_mut().arm_crash_at_op(i);
        sys.checkpoint();
        assert!(
            !sys.backend_mut().disk_mut().is_tripped(),
            "op {i}: the runtime must power-cycle a tripped device"
        );
        assert!(!sys.is_degraded(), "op {i}: a crash is not a degradation");
        let got: Vec<u64> = (0..OBJECTS).map(|o| sys.committed_state(ObjectId(o))).collect();
        assert_eq!(got, expect, "op {i}: recovered state must be the full committed state");
        // `base_records` counts the commits folded into the replay base: 3
        // under the old checkpoint (the two later commits replay from the
        // log suffix), 5 under the new one (nothing left to replay).
        let base = sys.journal().base_records();
        assert!(
            base == 3 || base == 5,
            "op {i}: replay base must be the old checkpoint (3 folded records) \
             or the new one (5), got a hybrid of {base}"
        );
        base_counts.insert(base);
        // The survivor keeps working: one more commit and a clean recovery.
        let t = sys.begin();
        sys.invoke(t, ObjectId(0), BankInv::Deposit(1)).unwrap();
        sys.commit(t).unwrap();
        sys.crash_and_recover().unwrap_or_else(|e| panic!("op {i}: final recovery: {e:?}"));
    }
    assert!(
        base_counts.contains(&3),
        "early crashes must leave the old base (folded-record counts seen: {base_counts:?})"
    );
    assert!(
        base_counts.contains(&5),
        "late crashes must keep the new base (folded-record counts seen: {base_counts:?})"
    );
}

/// Satellite of the honesty model: flip every single stable bit of the
/// committed image. Recovery must either succeed with the untouched state
/// (the flip hit slack bytes) or refuse loudly with `CorruptRecord` /
/// `TornRecord`; after repairing the medium, a plain re-scan must recover
/// the original state. A recovered-but-different state is silent corruption
/// and fails the test.
#[test]
fn exhaustive_bit_flip_sweep_never_diverges_silently() {
    let mut clean = committed_image();
    clean.crash_and_recover().expect("clean image recovers");
    let expect: Vec<u64> = (0..OBJECTS).map(|o| clean.committed_state(ObjectId(o))).collect();
    let bits = clean.backend().storage_bits();
    assert!(bits > 0, "image must occupy stable storage");
    assert!(bits < 64_000, "keep the exhaustive sweep small (got {bits} bits)");

    let mut detected = 0u64;
    for bit in 0..bits {
        let mut sys = committed_image();
        assert!(sys.flip_bit(bit), "bit {bit} must be flippable");
        match sys.crash_and_recover() {
            Ok(()) => {
                let got: Vec<u64> =
                    (0..OBJECTS).map(|o| sys.committed_state(ObjectId(o))).collect();
                assert_eq!(got, expect, "silent divergence after flipping bit {bit}");
            }
            Err(RedoError::CorruptRecord { .. }) | Err(RedoError::TornRecord { .. }) => {
                detected += 1;
                assert_eq!(sys.repair_flips(), 1, "exactly the injected flip is repaired");
                sys.recover_with(TornPolicy::Strict)
                    .unwrap_or_else(|e| panic!("bit {bit}: repaired medium must recover: {e:?}"));
                let got: Vec<u64> =
                    (0..OBJECTS).map(|o| sys.committed_state(ObjectId(o))).collect();
                assert_eq!(got, expect, "bit {bit}: repaired recovery must match");
            }
            Err(e) => panic!("bit {bit}: unexpected redo error {e:?}"),
        }
    }
    assert!(detected > 0, "the CRC layer must detect at least the payload flips");
}

// ---------------------------------------------------------------------------
// Wire-format properties (DESIGN.md §9/§10): epoch-header and group-commit
// batch frames round-trip exactly, impossible batch metas are refused, and
// every single-byte corruption of a sector-aligned frame is detected by the
// same `check_frame` validation the recovery scanner runs.
// ---------------------------------------------------------------------------

mod wire_format {
    use ccr::adt::bank::{BankAccount, BankInv, BankResp};
    use ccr::core::adt::Op;
    use ccr::core::ids::ObjectId;
    use ccr::store::{
        build_frame, check_frame, decode_batch, encode_batch, BatchMeta, CommitRecord, SegHeader,
        StoreStats,
    };
    use proptest::prelude::*;

    fn stats() -> impl Strategy<Value = StoreStats> {
        (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX)
            .prop_map(|(checkpoints, recoveries, sector_tears, reordered_flushes, bitflips)| {
                StoreStats {
                    checkpoints,
                    recoveries,
                    sector_tears,
                    reordered_flushes,
                    bitflips_detected: bitflips,
                }
            })
    }

    fn headers() -> impl Strategy<Value = SegHeader> {
        (0u64..=u64::MAX, 0u64..=u64::MAX, 0u8..=1, 0u32..=u32::MAX, 0u64..=u64::MAX, stats())
            .prop_map(|(epoch, seg_index, rc, txn_floor, next_exec_seq, stats)| SegHeader {
                epoch,
                seg_index,
                requires_checkpoint: rc != 0,
                txn_floor,
                next_exec_seq,
                stats,
            })
    }

    fn records() -> impl Strategy<Value = CommitRecord<BankAccount>> {
        let inv_resp = prop_oneof![
            (1u64..=9).prop_map(|i| (BankInv::Deposit(i), BankResp::Ok)),
            (1u64..=9).prop_map(|i| (BankInv::Withdraw(i), BankResp::Ok)),
            (1u64..=9).prop_map(|i| (BankInv::Withdraw(i), BankResp::No)),
            (0u64..=9).prop_map(|v| (BankInv::Balance, BankResp::Val(v))),
        ];
        let op = (0u64..=u64::MAX, 0u32..4, inv_resp)
            .prop_map(|(seq, obj, (inv, resp))| (seq, ObjectId(obj), Op::new(inv, resp)));
        (0u32..=u32::MAX, prop::collection::vec(op, 0..5))
            .prop_map(|(floor, ops)| CommitRecord { floor, ops })
    }

    /// Valid metas: `len >= 1`, `pos < len` — exactly what the scanner may
    /// legally encounter, including the `len == 1` repair-rewrite case.
    fn metas() -> impl Strategy<Value = BatchMeta> {
        (0u64..=u64::MAX, 1u32..6, 0u32..6).prop_map(|(id, len, raw)| BatchMeta {
            id,
            pos: raw % len,
            len,
        })
    }

    proptest! {
        /// Any epoch header decodes back to an equal value.
        #[test]
        fn seg_header_round_trips(h in headers()) {
            prop_assert_eq!(SegHeader::decode(&h.encode()), Some(h));
        }

        /// A header payload with any byte appended or removed is refused:
        /// the fixed width is load-bearing.
        #[test]
        fn seg_header_rejects_wrong_width(h in headers(), junk in 0u8..=u8::MAX) {
            let enc = h.encode();
            let mut longer = enc.clone();
            longer.push(junk);
            prop_assert_eq!(SegHeader::decode(&longer), None);
            prop_assert_eq!(SegHeader::decode(&enc[..enc.len() - 1]), None);
        }

        /// Any group-flush member (meta + commit record) round-trips.
        #[test]
        fn batch_frames_round_trip(meta in metas(), rec in records()) {
            let enc = encode_batch(meta, &rec);
            prop_assert_eq!(decode_batch::<BankAccount>(&enc), Some((meta, rec)));
        }

        /// Impossible metas (`len == 0` or `pos >= len`) are classified as
        /// damage, whatever the record says.
        #[test]
        fn impossible_batch_metas_are_refused(
            id in 0u64..=u64::MAX,
            len in 0u32..6,
            beyond in 0u32..4,
            rec in records(),
        ) {
            let meta = BatchMeta { id, pos: len + beyond, len };
            let enc = encode_batch(meta, &rec);
            prop_assert_eq!(decode_batch::<BankAccount>(&enc), None);
        }

        /// A truncated batch payload never decodes.
        #[test]
        fn truncated_batch_frames_are_refused(meta in metas(), rec in records()) {
            let enc = encode_batch(meta, &rec);
            for cut in 0..enc.len() {
                prop_assert_eq!(decode_batch::<BankAccount>(&enc[..cut]), None, "cut {}", cut);
            }
        }

        /// Exhaustive single-byte corruption of a framed header: for every
        /// byte position and every wrong value class, the recovery
        /// scanner's validation (`check_frame`) must classify the frame as
        /// corrupt — there is no byte whose damage goes unnoticed, because
        /// the CRC covers the whole sector-aligned extent including the
        /// padding.
        #[test]
        fn every_single_byte_corruption_of_a_header_frame_is_detected(
            h in headers(),
            delta in 1u8..=255,
        ) {
            let frame = build_frame(1, &h.encode(), 32);
            prop_assert!(check_frame(&frame).is_some(), "pristine frame must verify");
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] = bad[i].wrapping_add(delta);
                prop_assert_eq!(check_frame(&bad), None, "byte {} undetected", i);
            }
        }

        /// The same exhaustive corruption sweep over a framed group-commit
        /// batch member, which also exercises variable-length payloads.
        #[test]
        fn every_single_byte_corruption_of_a_batch_frame_is_detected(
            meta in metas(),
            rec in records(),
            delta in 1u8..=255,
        ) {
            let frame = build_frame(4, &encode_batch(meta, &rec), 32);
            prop_assert!(check_frame(&frame).is_some(), "pristine frame must verify");
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] = bad[i].wrapping_add(delta);
                prop_assert_eq!(check_frame(&bad), None, "byte {} undetected", i);
            }
        }

        /// What `check_frame` accepts it returns exactly: kind and payload
        /// of an intact frame come back unmodified for every frame kind.
        #[test]
        fn intact_frames_return_kind_and_payload(kind in 1u8..=4, rec in records()) {
            let payload = encode_batch(BatchMeta { id: 7, pos: 0, len: 1 }, &rec);
            let frame = build_frame(kind, &payload, 32);
            prop_assert_eq!(check_frame(&frame), Some((kind, payload)));
        }
    }
}
