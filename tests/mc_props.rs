//! Acceptance tests for the `ccr-mc` bounded exhaustive model checker
//! (DESIGN.md §12), driven through the public facade exactly as the
//! `ccr-experiments mc` CLI drives it: the pinned instance matrix is
//! violation-free with deterministic byte-identical JSON verdicts, and
//! every mutation-style negative control is caught with a minimized,
//! replayable trace. These are the model-checker counterparts of the
//! per-leg oracle controls in `tests/sim_oracle.rs`.

use ccr::mc::explorer::run_trace;
use ccr::mc::{
    explore, generate_module, lint_tla, reproducer, McBackendKind, McConfig, McTrace, Mutation,
};

fn base(backend: McBackendKind, group_commit: bool) -> McConfig {
    McConfig { backend, group_commit, ..Default::default() }
}

/// The acceptance-criteria instance matrix: 2 txns × 2 objects, crash
/// budget 2, mem + disk × group-commit on/off. Every interleaving the
/// explorer enumerates must satisfy the full invariant battery, and the
/// state space must be non-trivially large (the CI job pins tighter
/// `--min-states` floors per cell).
#[test]
fn pinned_instance_matrix_is_violation_free() {
    for backend in [McBackendKind::Mem, McBackendKind::Disk] {
        for group_commit in [false, true] {
            let v = explore(base(backend, group_commit));
            assert!(
                v.passed(),
                "violation on {backend} (group_commit: {group_commit}): {:?}",
                v.violation
            );
            assert!(
                v.stats.states >= 100,
                "suspiciously small state space on {backend}: {:?}",
                v.stats
            );
            assert!(v.stats.terminals > 0, "no terminal states explored: {:?}", v.stats);
        }
    }
}

/// Same instance ⇒ byte-identical JSON verdict, the determinism half of
/// the acceptance criteria. DFS order, canonicalization, and the verdict
/// rendering must all be free of incidental nondeterminism.
#[test]
fn same_instance_runs_produce_byte_identical_json() {
    let cfg = base(McBackendKind::Disk, true);
    let (a, b) = (explore(cfg), explore(cfg));
    assert_eq!(a.to_json(), b.to_json(), "verdict JSON must be byte-identical");
}

/// Negative control for the durability invariant (sim-oracle leg 3):
/// dropping an acknowledged commit from the last flush must be caught.
/// On the mem backend the loss is visible directly as a missing committed
/// txn; on the disk backend the tear corrupts the live log and strict
/// recovery refuses it — either way the seeded bug cannot pass silently.
#[test]
fn dropped_acked_commit_is_caught() {
    for (backend, kinds) in [
        (McBackendKind::Mem, &["durability-lost"][..]),
        (McBackendKind::Disk, &["durability-lost", "recovery-refused"][..]),
    ] {
        let cfg = McConfig { mutation: Some(Mutation::DropAckedCommit), ..base(backend, false) };
        let v = explore(cfg);
        let (violation, trace) = v.violation.expect("the dropped commit must be caught");
        assert!(
            kinds.contains(&violation.kind()),
            "wrong invariant fired on {backend}: {violation}"
        );
        assert_minimized_and_replayable(cfg, &trace, violation.kind());
    }
}

/// Negative control for the torn-batch prefix rule: reordering the
/// records of the last group flush breaks the "surviving batch members
/// are a prefix" guarantee the WAL's framing enforces.
#[test]
fn reordered_group_flush_is_caught() {
    let cfg =
        McConfig { mutation: Some(Mutation::ReorderLastBatch), ..base(McBackendKind::Disk, true) };
    let v = explore(cfg);
    let (violation, trace) = v.violation.expect("the reordered batch must be caught");
    assert!(
        ["not-prefix", "recovery-refused"].contains(&violation.kind()),
        "wrong invariant fired: {violation}"
    );
    assert_minimized_and_replayable(cfg, &trace, violation.kind());
}

/// Negative control for the no-resurrection invariant (sim-oracle legs
/// 2/3): a forged commit record for an aborted transaction must be
/// flagged after recovery, on both backends.
#[test]
fn resurrected_aborted_txn_is_caught() {
    for backend in [McBackendKind::Mem, McBackendKind::Disk] {
        let cfg = McConfig { mutation: Some(Mutation::ResurrectAborted), ..base(backend, false) };
        let v = explore(cfg);
        let (violation, trace) = v.violation.expect("the resurrected txn must be caught");
        assert_eq!(violation.kind(), "resurrection", "wrong invariant fired: {violation}");
        assert_minimized_and_replayable(cfg, &trace, violation.kind());
    }
}

/// Negative control for the convergence/idempotence invariant (sim-oracle
/// leg 6): a recovery that skips the epoch bump is refused by the checked
/// convergence probe the explorer runs after every recovery.
#[test]
fn skipped_epoch_bump_is_caught() {
    let cfg =
        McConfig { mutation: Some(Mutation::SkipEpochBump), ..base(McBackendKind::Disk, false) };
    let v = explore(cfg);
    let (violation, trace) = v.violation.expect("the skipped epoch bump must be caught");
    assert_eq!(violation.kind(), "not-idempotent", "wrong invariant fired: {violation}");
    assert_minimized_and_replayable(cfg, &trace, violation.kind());
}

/// A caught counterexample must (a) replay to the same violation kind via
/// `run_trace` (the `--replay` path), (b) be 1-minimal (no single action
/// can be dropped), and (c) round-trip through its textual form, with the
/// reproducer line pinning every configuration flag.
fn assert_minimized_and_replayable(cfg: McConfig, trace: &McTrace, kind: &str) {
    let replayed = run_trace(cfg, trace).expect("minimized trace must still fail");
    assert_eq!(replayed.kind(), kind, "replay found a different violation");
    for i in 0..trace.0.len() {
        let mut shorter = trace.0.clone();
        shorter.remove(i);
        let still = run_trace(cfg, &McTrace(shorter)).map(|v| v.kind() == kind);
        assert_ne!(still, Some(true), "trace not 1-minimal: {trace} (drop index {i})");
    }
    let reparsed: McTrace = trace.to_string().parse().expect("trace must round-trip");
    assert_eq!(reparsed.to_string(), trace.to_string());
    let line = reproducer(&cfg, trace);
    for flag in ["--txns", "--objects", "--crash-budget", "--backend", "--shards", "--replay"] {
        assert!(line.contains(flag), "reproducer missing {flag}: {line}");
    }
    assert!(line.contains("--mutate"), "reproducer must pin the mutation: {line}");
}

/// Action traces round-trip through parse/display, and junk is rejected.
#[test]
fn traces_round_trip_and_reject_junk() {
    let t: McTrace = "b0 c0 b1 a1 f k t1 r x d3".parse().expect("valid trace");
    assert_eq!(t.to_string(), "b0 c0 b1 a1 f k t1 r x d3");
    assert!("b0 y7".parse::<McTrace>().is_err(), "junk token must be rejected");
    let sharded: McTrace = "b0 p0 q0 s3 z".parse().expect("sharded alphabet must parse");
    assert_eq!(sharded.to_string(), "b0 p0 q0 s3 z");
}

/// The sharded 2-shard instance (DESIGN.md §15): the extended alphabet
/// (begin/prepare/decide/crash-subset/coordinator-crash) is exhaustively
/// explored and must be violation-free on both backends, with state
/// spaces no smaller than the floors the CI `model-check` job pins.
#[test]
fn sharded_instance_matrix_is_violation_free() {
    for (backend, floor) in [(McBackendKind::Mem, 3000), (McBackendKind::Disk, 12000)] {
        let cfg = McConfig { shards: 2, ..base(backend, false) };
        let v = explore(cfg);
        assert!(v.passed(), "violation on sharded {backend}: {:?}", v.violation);
        assert!(
            v.stats.states >= floor,
            "state space regressed below the pinned floor on {backend}: {:?}",
            v.stats
        );
        assert!(v.stats.terminals > 0, "no terminal states explored: {:?}", v.stats);
    }
}

/// Negative control for the eighth oracle leg (global dynamic atomicity
/// across shards): losing the coordinator's durable decision record after
/// one participant already applied the commit must surface as a
/// global-split — one shard committed, the other presumed abort — and the
/// minimized reproducer must pin the sharded instance explicitly.
#[test]
fn lost_decision_record_is_caught_as_a_global_split() {
    let cfg = McConfig {
        shards: 2,
        mutation: Some(Mutation::LoseDecision),
        ..base(McBackendKind::Disk, false)
    };
    let v = explore(cfg);
    let (violation, trace) = v.violation.expect("the lost decision record must be caught");
    assert_eq!(violation.kind(), "global-split", "wrong invariant fired: {violation}");
    assert_minimized_and_replayable(cfg, &trace, violation.kind());
    let line = reproducer(&cfg, &trace);
    assert!(line.contains("--shards 2"), "reproducer must pin the shard count: {line}");
}

/// The generated TLA+ module for each matrix cell passes the structural
/// lint (the CI `model-check` job runs the same check via `--tla`), and
/// the lint actually rejects a damaged module.
#[test]
fn generated_tla_modules_pass_the_lint() {
    for group_commit in [false, true] {
        let cfg = base(McBackendKind::Disk, group_commit);
        let module = generate_module(&cfg);
        lint_tla(&module).unwrap_or_else(|e| {
            panic!("generated module failed lint (group_commit: {group_commit}): {e}")
        });
        let broken = module.replace("VARIABLES", "VARIABLE$");
        assert!(lint_tla(&broken).is_err(), "lint must reject a damaged module");
    }
}
