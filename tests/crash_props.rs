//! Property tests for the simulated crash recovery: committed state always
//! survives, uncommitted work never does, and recovery is idempotent.

use ccr::adt::bank::{bank_nrbc, BankAccount, BankInv, BankResp};
use ccr::core::ids::{ObjectId, TxnId};
use ccr::runtime::crash::DurableSystem;
use ccr::runtime::engine::UipEngine;
use ccr::runtime::TxnError;
use proptest::prelude::*;

type Durable = DurableSystem<
    BankAccount,
    UipEngine<BankAccount>,
    ccr::core::conflict::FnConflict<BankAccount>,
>;

#[derive(Clone, Debug)]
enum Ev {
    Begin(u8),
    Op(u8, u32, BankInv),
    Commit(u8),
    Abort(u8),
    Crash,
}

fn events() -> impl Strategy<Value = Vec<Ev>> {
    let inv = prop_oneof![
        (1u64..=3).prop_map(BankInv::Deposit),
        (1u64..=3).prop_map(BankInv::Withdraw),
        Just(BankInv::Balance),
    ];
    let ev = prop_oneof![
        4 => (0u8..3).prop_map(Ev::Begin),
        8 => ((0u8..3), (0u32..2), inv).prop_map(|(t, o, i)| Ev::Op(t, o, i)),
        4 => (0u8..3).prop_map(Ev::Commit),
        2 => (0u8..3).prop_map(Ev::Abort),
        1 => Just(Ev::Crash),
    ];
    prop::collection::vec(ev, 1..40)
}

/// Exhaustive crash-at-every-event-prefix sweep: two transactions of two
/// operations each, all 20 interleavings of their `(op, op, commit)` event
/// sequences, and a crash injected after *every* prefix of every
/// interleaving. After each recovery the durable state must equal the shadow
/// of exactly the transactions that committed before the crash, and a second
/// crash-recovery must be a no-op (idempotence).
#[test]
fn exhaustive_crash_prefix_sweep_two_txns_two_ops() {
    const SEED_FUNDS: u64 = 5;
    let scripts =
        [[BankInv::Deposit(2), BankInv::Withdraw(1)], [BankInv::Deposit(3), BankInv::Withdraw(2)]];

    // A 6-bit mask with exactly three set bits assigns each of the six
    // event slots to transaction 0 (set) or 1 (clear) — all C(6,3) = 20
    // interleavings.
    for mask in 0u32..64 {
        if mask.count_ones() != 3 {
            continue;
        }
        let order: Vec<usize> = (0..6).map(|i| usize::from(mask & (1 << i) == 0)).collect();
        for prefix in 0..=order.len() {
            let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
            let seed = sys.begin();
            sys.invoke(seed, ObjectId::SOLE, BankInv::Deposit(SEED_FUNDS)).unwrap();
            sys.commit(seed).unwrap();

            let mut txn: [Option<TxnId>; 2] = [None, None];
            let mut progress = [0usize; 2];
            let mut pending = [0i64; 2];
            let mut committed = SEED_FUNDS as i64;

            for &who in order.iter().take(prefix) {
                let step = progress[who];
                progress[who] += 1;
                if step < 2 {
                    let t = *txn[who].get_or_insert_with(|| sys.begin());
                    let inv = scripts[who][step].clone();
                    match sys.invoke(t, ObjectId::SOLE, inv.clone()) {
                        Ok(BankResp::Ok) => match inv {
                            BankInv::Deposit(i) => pending[who] += i as i64,
                            BankInv::Withdraw(i) => pending[who] -= i as i64,
                            BankInv::Balance => {}
                        },
                        Ok(_) => {}                         // refused withdrawal
                        Err(TxnError::Blocked { .. }) => {} // op lost to a conflict
                        Err(e) => panic!("unexpected: {e}"),
                    }
                } else if let Some(t) = txn[who].take() {
                    if sys.commit(t).is_ok() {
                        committed += pending[who];
                    }
                }
            }

            sys.crash_and_recover().unwrap_or_else(|e| {
                panic!("redo failed (mask {mask:#08b}, prefix {prefix}): {e:?}")
            });
            assert_eq!(
                sys.committed_state(ObjectId::SOLE) as i64,
                committed,
                "mask {mask:#08b}, prefix {prefix}"
            );
            sys.crash_and_recover().expect("recovery must be idempotent");
            assert_eq!(sys.committed_state(ObjectId::SOLE) as i64, committed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn crashes_preserve_exactly_the_committed_state(evs in events()) {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 2, bank_nrbc());
        let mut slots: [Option<TxnId>; 3] = [None; 3];
        // Shadow model: balances reflecting only *committed* transactions.
        let mut committed = [0u64; 2];
        let mut pending: [Vec<(usize, i64)>; 3] = [vec![], vec![], vec![]];

        for ev in evs {
            match ev {
                Ev::Begin(s) => {
                    if slots[s as usize].is_none() {
                        slots[s as usize] = Some(sys.begin());
                        pending[s as usize].clear();
                    }
                }
                Ev::Op(s, o, inv) => {
                    if let Some(t) = slots[s as usize] {
                        match sys.invoke(t, ObjectId(o), inv.clone()) {
                            Ok(ccr::adt::bank::BankResp::Ok) => match inv {
                                BankInv::Deposit(i) => {
                                    pending[s as usize].push((o as usize, i as i64))
                                }
                                BankInv::Withdraw(i) => {
                                    pending[s as usize].push((o as usize, -(i as i64)))
                                }
                                BankInv::Balance => {}
                            },
                            Ok(_) => {}
                            Err(TxnError::Blocked { .. }) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Ev::Commit(s) => {
                    if let Some(t) = slots[s as usize].take() {
                        if sys.commit(t).is_ok() {
                            for (o, d) in pending[s as usize].drain(..) {
                                committed[o] = (committed[o] as i64 + d) as u64;
                            }
                        }
                    }
                }
                Ev::Abort(s) => {
                    if let Some(t) = slots[s as usize].take() {
                        let _ = sys.abort(t);
                        pending[s as usize].clear();
                    }
                }
                Ev::Crash => {
                    sys.crash_and_recover().expect("redo must succeed under NRBC");
                    // All in-flight transactions die with the crash.
                    slots = [None; 3];
                    for p in &mut pending {
                        p.clear();
                    }
                    prop_assert_eq!(sys.committed_state(ObjectId(0)), committed[0]);
                    prop_assert_eq!(sys.committed_state(ObjectId(1)), committed[1]);
                }
            }
        }
        // Final crash: the durable state must equal the shadow model.
        sys.crash_and_recover().expect("redo must succeed");
        prop_assert_eq!(sys.committed_state(ObjectId(0)), committed[0]);
        prop_assert_eq!(sys.committed_state(ObjectId(1)), committed[1]);
        // And recovery is idempotent.
        sys.crash_and_recover().expect("second redo");
        prop_assert_eq!(sys.committed_state(ObjectId(0)), committed[0]);
    }
}
