//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: seedable RNGs
//! ([`rngs::StdRng`]), the [`Rng`] extension methods `gen`, `gen_bool` and
//! `gen_range`, and the [`seq::SliceRandom`] helpers `shuffle` and `choose`.
//! The core generator is xoshiro256** seeded via splitmix64 — deterministic,
//! fast, and good enough for workload generation and property sampling (it
//! is **not** cryptographic, exactly like the real `StdRng` contract which
//! promises no reproducibility across versions anyway).

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a uniform sample can be drawn from (the subset of
/// `rand::distributions::uniform::SampleRange` the workspace uses).
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range like the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                   i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// Uniform draw in `0..span` (`span > 0`) by rejection sampling on the top
/// bits — unbiased, branch-light.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Extension methods over any [`RngCore`] — the `rand::Rng` surface the
/// workspace uses.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy — here, from a hash of a monotonically bumped
    /// process-local counter (no OS RNG in the sandbox; callers in this
    /// workspace never rely on unpredictability).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);
        Self::seed_from_u64(COUNTER.fetch_add(0xD1B54A32D192ED03, Ordering::Relaxed))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// A convenience process-global generator mirroring `rand::thread_rng` —
/// deterministic per call-site order, which is all the workspace needs.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&x));
            let y: usize = rng.gen_range(4..20);
            assert!((4..20).contains(&y));
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&hits), "p=0.5 gave {hits}/10000");
        assert!((0..10_000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..10_000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniform_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0u8..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
