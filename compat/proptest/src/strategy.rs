//! Value-generation strategies: ranges, tuples, [`Just`], `prop_map`,
//! [`OneOf`] and boxed erasure.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::sync::Arc;

/// A recipe for generating random values of `Self::Value`.
///
/// Object-safe: combinator methods are gated on `Self: Sized` so
/// `dyn Strategy<Value = V>` works (used by [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
#[derive(Clone)]
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
