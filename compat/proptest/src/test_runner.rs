//! Test execution support: per-test configuration, case errors, and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base seed mixed with the test name to derive the case stream.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, seed: 0x1CC2_5EED }
    }
}

impl ProptestConfig {
    /// Default configuration with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A failed property within one generated case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Alias for [`TestCaseError::fail`] matching the real crate's naming.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG a named test's cases are drawn from: base seed xor an FNV-1a
/// hash of the test name, so each test gets an independent, reproducible
/// stream.
pub fn rng_for(test_name: &str, base_seed: u64) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(base_seed ^ h)
}
