//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, range / tuple / [`Just`] / `prop_map` /
//! [`prop_oneof!`] / [`collection::vec`] strategies, and the
//! `prop_assert*` family. Case generation is seeded deterministically per
//! test name, so failures are reproducible by re-running the test.
//!
//! Deliberate simplification: **no shrinking**. A failing case panics with
//! the case number and the generated inputs' `Debug` form; minimisation is
//! delegated to the domain-specific shrinkers in this repository (see
//! `ccr-workload`'s fault-simulation shrinker), which produce far smaller
//! reproducers than structural shrinking of the raw inputs.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sizes a collection strategy can take: `n`, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a [`proptest!`] body; failures report the
/// generated inputs instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(
                    *__pt_l == *__pt_r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    __pt_l,
                    __pt_r
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(
                    *__pt_l == *__pt_r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __pt_l,
                    __pt_r
                );
            }
        }
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__pt_l, __pt_r) => {
                $crate::prop_assert!(
                    *__pt_l != *__pt_r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($lhs),
                    stringify!($rhs),
                    __pt_l
                );
            }
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let __pt_strategy = ($($strat,)+);
            let mut __pt_rng = $crate::test_runner::rng_for(stringify!($name), __pt_config.seed);
            for __pt_case in 0..__pt_config.cases {
                let __pt_values =
                    $crate::strategy::Strategy::generate(&__pt_strategy, &mut __pt_rng);
                let __pt_repr = format!("{:?}", __pt_values);
                let ($($pat,)+) = __pt_values;
                let __pt_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __pt_result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __pt_case + 1,
                        __pt_config.cases,
                        e,
                        __pt_repr
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in 1u64..=3, (b, c) in ((0u8..4), (10usize..20))) {
            prop_assert!((1..=3).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((10..20).contains(&c));
        }

        #[test]
        fn oneof_map_and_vec(v in prop::collection::vec(
            prop_oneof![2 => (0u32..5).prop_map(|x| x * 2), 1 => Just(99u32)],
            1..10,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in &v {
                prop_assert!(*x == 99 || (*x % 2 == 0 && *x < 10), "bad element {}", x);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(unreachable_code)]
            fn inner(x in 0u8..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
