//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice it uses: [`Mutex`] (whose `lock` returns the guard directly,
//! no poison `Result`), [`RwLock`], and [`Condvar`] with `wait`,
//! `wait_for`, `notify_one` and `notify_all`. Poisoned std locks are
//! recovered into their inner guards — matching parking_lot, which has no
//! poisoning at all.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar`] can move it through std's by-value wait without unsafe code.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, recovering from poisoning (parking_lot never
    /// poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot-style panic-free guards.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condvar wait: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable working with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified. The guard is released while waiting and
    /// re-acquired before returning (in place, parking_lot style).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(r.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
