//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input` / `sample_size` /
//! `finish`, [`Bencher::iter`] / `iter_batched`, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Deliberate simplification: no statistical analysis, warm-up tuning, or
//! HTML reports. Each benchmark runs a short calibrated loop and prints the
//! median per-iteration wall time. When the binary is executed by
//! `cargo test` (which runs `harness = false` bench targets), the `--test`
//! flag makes each routine run exactly once — a smoke test, not a timing
//! run — so test suites stay fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration setup cost is amortized in
/// [`Bencher::iter_batched`]. Only the variants the workspace uses exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: one setup per routine invocation.
    SmallInput,
    /// Large inputs: identical behavior in this subset.
    LargeInput,
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name in `bench_function` /
/// `bench_with_input`.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives timing for one benchmark routine.
pub struct Bencher {
    samples: u32,
    /// Median per-iteration time, filled in by `iter`/`iter_batched`.
    result: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.result = times.get(times.len() / 2).copied();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<R>(&mut self, id: impl IntoBenchmarkId, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), routine);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| routine(b, input));
        self
    }

    fn run<R: FnMut(&mut Bencher)>(&mut self, id: String, mut routine: R) {
        let samples = if self.criterion.smoke_test { 1 } else { self.sample_size };
        let mut b = Bencher { samples, result: None };
        routine(&mut b);
        let shown = match b.result {
            Some(t) => format!("{t:?}/iter"),
            None => "no measurement".to_owned(),
        };
        println!("bench {}/{id}: {shown} ({samples} samples)", self.name);
    }

    /// Mark the group complete (reporting hook in the real crate).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` executes harness=false bench binaries with `--test`;
        // run everything once so suites stay fast.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Builder no-op kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions into a named runner, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.bench_function("fib-10", |b| b.iter(|| fib(black_box(10))));
        g.bench_with_input(BenchmarkId::new("fib", 12), &12u64, |b, &n| {
            b.iter_batched(|| n, fib, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
