//! The paper's central claim, executed (E5): update-in-place and deferred
//! update place *incomparable* constraints on concurrency control — each
//! admits interleavings the other must forbid.
//!
//! ```text
//! cargo run --release --example incomparability
//! ```

fn main() {
    print!("{}", ccr::workload::experiments::incomparability::run());
    println!();
    print!("{}", ccr::workload::experiments::baselines::run());
}
