//! A heterogeneous application: ticket sales with an audit log.
//!
//! One system holds two kinds of objects via the [`SumAdt`] combinator:
//!
//! * object 0 — the ticket **inventory**, a bank-style account (a sale
//!   withdraws one ticket; a return deposits one);
//! * object 1 — the **audit log**, a semiqueue of event records (order
//!   deliberately not specified, which is what buys concurrency).
//!
//! Each sale transaction touches both objects atomically: if the withdrawal
//! is refused (sold out), the transaction records nothing and aborts.
//! Under update-in-place + NRBC, concurrent sales never block each other:
//! successful withdrawals commute, and semiqueue appends always commute.
//!
//! ```text
//! cargo run --example ticketing
//! ```

use ccr::adt::bank::{self, BankAccount, BankInv, BankResp};
use ccr::adt::combine::{Either, SumAdt, SumConflict};
use ccr::adt::semiqueue::{self, Semiqueue, SqInv};
use ccr::core::atomicity::{check_dynamic_atomic_sampled, SystemSpec};
use ccr::core::conflict::FnConflict;
use ccr::core::ids::ObjectId;
use ccr::runtime::scheduler::{run, SchedulerCfg};
use ccr::runtime::script::{ConditionalScript, Script, Step};
use ccr::runtime::{TxnSystem, UipEngine};
use rand::SeedableRng;

type App = SumAdt<BankAccount, Semiqueue>;

const INVENTORY: ObjectId = ObjectId(0);
const AUDIT: ObjectId = ObjectId(1);

type AppConflict = SumConflict<FnConflict<BankAccount>, FnConflict<Semiqueue>>;

/// Dispatch the per-side NRBC tables through the sum.
fn app_nrbc() -> AppConflict {
    SumConflict::new(bank::bank_nrbc(), semiqueue::semiqueue_nrbc())
}

/// Sell one ticket: withdraw from inventory; on success, append an audit
/// record; on "sold out", abort.
fn sale(record: u8) -> ConditionalScript<App> {
    // ConditionalScript takes a fn pointer; encode the record value in the
    // step index trick instead: one script shape per record value bucket.
    let _ = record;
    ConditionalScript::new(|pos, last| match pos {
        0 => Step::Invoke(INVENTORY, Either::L(BankInv::Withdraw(1))),
        1 => match last {
            Some(Either::L(BankResp::Ok)) => Step::Invoke(AUDIT, Either::R(SqInv::Enq(1))),
            _ => Step::Abort,
        },
        _ => Step::Commit,
    })
}

fn main() {
    let mut sys = build_system();

    let scripts: Vec<Box<dyn Script<App>>> =
        (0..20).map(|i| Box::new(sale(i as u8)) as Box<dyn Script<App>>).collect();

    // Stock 12 tickets: 20 buyers compete, 8 must be refused.
    let t = sys.begin();
    for _ in 0..12 {
        sys.invoke(t, INVENTORY, Either::L(BankInv::Deposit(1))).unwrap();
    }
    sys.commit(t).unwrap();

    let report = run(&mut sys, scripts, &SchedulerCfg::default());
    println!(
        "sales committed: {}   sold-out aborts: {}   blocked ops: {}",
        report.committed, report.voluntary_aborts, report.blocked_ops
    );

    let stock = sys.committed_state(INVENTORY);
    let audit = sys.committed_state(AUDIT);
    let sold = match (&stock, &audit) {
        (Either::L(remaining), Either::R(log)) => {
            let sold: u32 = log.values().sum();
            println!("tickets remaining: {remaining}   audit records: {sold}");
            sold
        }
        _ => unreachable!("object kinds are fixed"),
    };
    assert_eq!(sold as u64, report.committed, "every sale is audited");

    let spec = SystemSpec::single(SumAdt::Left(BankAccount::default()))
        .with_object(AUDIT, SumAdt::Right(Semiqueue::default()));
    // 12 mutually concurrent sales make the exhaustive check infeasible
    // (12! consistent orders); the sampled checker verifies 200 random
    // linear extensions of `precedes` instead.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    println!(
        "execution dynamic atomic (200 sampled orders): {}",
        check_dynamic_atomic_sampled(&spec, sys.trace(), 200, &mut rng).is_ok()
    );
}

/// A 2-object system whose objects carry different inner ADTs (the SumAdt
/// instance attached to each object decides which side it accepts).
fn build_system() -> TxnSystem<App, UipEngine<App>, AppConflict> {
    TxnSystem::new_with(
        vec![
            (INVENTORY, SumAdt::Left(BankAccount::default())),
            (AUDIT, SumAdt::Right(Semiqueue::default())),
        ],
        app_nrbc(),
    )
}
