//! Regenerate the paper's figures and worked examples (E1, E2, E7, E8).
//!
//! ```text
//! cargo run --example paper_tables
//! ```

fn main() {
    print!("{}", ccr::workload::experiments::figures::run());
    println!();
    print!("{}", ccr::workload::experiments::worked_examples::run());
}
