//! Crash recovery in action (the paper's deferred future work, §1).
//!
//! Runs transfers against a journaled bank, pulls the plug mid-flight,
//! recovers from the redo journal, and shows that exactly the committed
//! work survived — including a transaction that was active (uncommitted)
//! at the moment of the crash.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use ccr::adt::bank::{bank_nrbc, BankAccount, BankInv};
use ccr::core::ids::ObjectId;
use ccr::runtime::crash::DurableSystem;
use ccr::runtime::UipEngine;

const CHECKING: ObjectId = ObjectId(0);
const SAVINGS: ObjectId = ObjectId(1);

fn main() {
    let mut bank: DurableSystem<BankAccount, UipEngine<BankAccount>, _> =
        DurableSystem::new(BankAccount::default(), 2, bank_nrbc());

    // Committed history: open the accounts, move some money.
    let t = bank.begin();
    bank.invoke(t, CHECKING, BankInv::Deposit(100)).unwrap();
    bank.invoke(t, SAVINGS, BankInv::Deposit(50)).unwrap();
    bank.commit(t).unwrap();

    let transfer = bank.begin();
    bank.invoke(transfer, CHECKING, BankInv::Withdraw(30)).unwrap();
    bank.invoke(transfer, SAVINGS, BankInv::Deposit(30)).unwrap();
    bank.commit(transfer).unwrap();

    // An in-flight transaction that will be killed by the crash.
    let doomed = bank.begin();
    bank.invoke(doomed, CHECKING, BankInv::Withdraw(60)).unwrap();
    println!(
        "before crash: checking={:?} savings={:?} (uncommitted withdrawal of 60 in flight)",
        bank.committed_state(CHECKING),
        bank.committed_state(SAVINGS)
    );

    // ⚡ Power failure: all volatile state is lost; the redo journal is not.
    bank.crash_and_recover().expect("redo-replay (verified against the journal)");

    println!(
        "after recovery: checking={} savings={} — committed transfers survived, \
         the in-flight withdrawal did not",
        bank.committed_state(CHECKING),
        bank.committed_state(SAVINGS)
    );
    assert_eq!(bank.committed_state(CHECKING), 70);
    assert_eq!(bank.committed_state(SAVINGS), 80);
    assert!(bank.invoke(doomed, CHECKING, BankInv::Balance).is_err());

    // The system keeps working after recovery, journal intact.
    let t = bank.begin();
    bank.invoke(t, CHECKING, BankInv::Deposit(5)).unwrap();
    bank.commit(t).unwrap();
    bank.crash_and_recover().unwrap();
    println!(
        "after a second crash: checking={} (journal holds {} committed transactions)",
        bank.committed_state(CHECKING),
        bank.journal().len()
    );
}
