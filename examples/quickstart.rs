//! Quick start: a transactional bank over commutativity-based locking.
//!
//! Runs the same money-transfer workload under the paper's two recovery
//! methods with their minimal conflict relations (Theorems 9 and 10), then
//! proves the recorded executions dynamic atomic with the formal checker.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ccr::adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr::core::atomicity::{check_dynamic_atomic, SystemSpec};
use ccr::core::ids::ObjectId;
use ccr::runtime::scheduler::{run, SchedulerCfg};
use ccr::runtime::script::{OpsScript, Script};
use ccr::runtime::{DuEngine, TxnSystem, UipEngine};

const ACCOUNTS: u32 = 4;

/// Transfers: withdraw from one account, deposit to another; plus audits
/// reading a balance.
fn workload() -> Vec<Box<dyn Script<BankAccount>>> {
    let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
    for i in 0..12u32 {
        let from = ObjectId(i % ACCOUNTS);
        let to = ObjectId((i + 1) % ACCOUNTS);
        scripts.push(Box::new(OpsScript::new(vec![
            (from, BankInv::Withdraw(2)),
            (to, BankInv::Deposit(2)),
        ])));
        if i % 3 == 0 {
            scripts.push(Box::new(OpsScript::new(vec![(from, BankInv::Balance)])));
        }
    }
    scripts
}

fn seed<E, C>(sys: &mut TxnSystem<BankAccount, E, C>)
where
    E: ccr::runtime::RecoveryEngine<BankAccount>,
    C: ccr::core::conflict::Conflict<BankAccount>,
{
    let t = sys.begin();
    for i in 0..ACCOUNTS {
        sys.invoke(t, ObjectId(i), BankInv::Deposit(50)).unwrap();
    }
    sys.commit(t).unwrap();
}

fn main() {
    println!("== update-in-place + NRBC (Theorem 9 pairing) ==");
    let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nrbc());
    seed(&mut sys);
    let report = run(&mut sys, workload(), &SchedulerCfg::default());
    println!(
        "committed {} transactions; {} blocked ops, {} deadlock aborts",
        report.committed, report.blocked_ops, report.deadlock_aborts
    );
    let total: u64 = (0..ACCOUNTS).map(|i| sys.committed_state(ObjectId(i))).sum();
    println!("total money conserved: {total} (expected {})", 50 * ACCOUNTS as u64);

    let spec = SystemSpec::uniform(BankAccount::default(), ACCOUNTS);
    println!(
        "recorded execution dynamic atomic: {}",
        check_dynamic_atomic(&spec, sys.trace()).is_ok()
    );

    println!("\n== deferred update + NFC (Theorem 10 pairing) ==");
    let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), ACCOUNTS, bank_nfc());
    seed(&mut sys);
    let report = run(&mut sys, workload(), &SchedulerCfg::default());
    println!(
        "committed {} transactions; {} blocked ops, {} validation aborts",
        report.committed, report.blocked_ops, report.validation_aborts
    );
    let total: u64 = (0..ACCOUNTS).map(|i| sys.committed_state(ObjectId(i))).sum();
    println!("total money conserved: {total} (expected {})", 50 * ACCOUNTS as u64);
    println!(
        "recorded execution dynamic atomic: {}",
        check_dynamic_atomic(&spec, sys.trace()).is_ok()
    );
}
