//! Demonstrate the iff-boundaries of Theorems 9 and 10 with concrete,
//! machine-checked counterexamples (E3/E4).
//!
//! Walks through one counterexample in detail: the pair
//! `(withdraw_ok, withdraw_ok) ∈ NFC ∖ NRBC`, which makes deferred update
//! with the NRBC conflict relation produce a non-dynamic-atomic history.
//!
//! ```text
//! cargo run --release --example theorem_boundaries
//! ```

use ccr::adt::bank::ops;
use ccr::core::atomicity::{check_dynamic_atomic, SystemSpec};
use ccr::core::commutativity::commute_forward;
use ccr::core::conflict::nrbc_table;
use ccr::core::equieffect::InclusionCfg;
use ccr::core::ids::ObjectId;
use ccr::core::object::ObjectAutomaton;
use ccr::core::theorems::du_counterexample;
use ccr::core::view::Du;
use ccr::workload::experiments::theorems;

fn main() {
    let ba = theorems::small_bank();
    let grid = theorems::op_grid();
    let cfg = InclusionCfg::default();

    println!("== One counterexample in detail ==\n");
    let p = ops::withdraw_ok(2);
    let q = ops::withdraw_ok(2);
    let fail = commute_forward(&ba, &p, &q, cfg).expect_err("withdrawals do not commute forward");
    println!("(P, Q) = ({p:?}, {q:?}) ∈ NFC — witness prefix α = {:?}\n", fail.prefix);
    let h = du_counterexample(&p, &q, &fail, ObjectId::SOLE);
    println!("Theorem 10 construction (paper notation):\n{h}");

    let nrbc = nrbc_table(&ba, &grid, cfg);
    let automaton = ObjectAutomaton::new(ba.clone(), Du, nrbc, ObjectId::SOLE);
    println!("accepted by I(BA, Spec, DU, NRBC): {}", automaton.accepts(&h).is_ok());
    let spec = SystemSpec::single(ba.clone());
    match check_dynamic_atomic(&spec, &h) {
        Ok(()) => println!("dynamic atomic: true (unexpected!)"),
        Err(v) => println!("dynamic atomic: FALSE — refuted by the consistent order {:?}", v.order),
    }

    println!("\n== Full boundary sweep ==\n");
    print!("{}", theorems::run());
}
