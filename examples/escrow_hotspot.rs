//! The escrow extension (§8): state-dependent conflict testing admits
//! concurrency that *no* conflict relation can.
//!
//! The probe: with a committed balance of 50, a debit of 40 is requested
//! while an uncommitted *credit* is held.
//!
//! * UIP + NRBC must block — `(debit_ok, credit_ok) ∈ NRBC(escrow)` — the
//!   conflict test may not look at the state.
//! * The escrow method inspects the guaranteed balance interval and grants
//!   the debit immediately.
//!
//! ```text
//! cargo run --example escrow_hotspot
//! ```

use ccr::adt::escrow::{escrow_nrbc, EscrowAccount, EscrowInv};
use ccr::core::ids::{ObjectId, TxnId};
use ccr::runtime::escrow::{EscrowObject, EscrowOutcome};
use ccr::runtime::{TxnError, TxnSystem, UipEngine};

fn main() {
    const CAP: u64 = 1000;

    println!("== conflict-relation locking (UIP + NRBC) ==");
    let mut sys: TxnSystem<EscrowAccount, UipEngine<EscrowAccount>, _> =
        TxnSystem::new(EscrowAccount::new(CAP, [10, 40]), 1, escrow_nrbc());
    let t = sys.begin();
    sys.invoke(t, ObjectId::SOLE, EscrowInv::Credit(50)).unwrap();
    sys.commit(t).unwrap();

    let a = sys.begin();
    let b = sys.begin();
    sys.invoke(a, ObjectId::SOLE, EscrowInv::Credit(10)).unwrap();
    match sys.invoke(b, ObjectId::SOLE, EscrowInv::Debit(40)) {
        Err(TxnError::Blocked { on }) => {
            println!("debit(40) while credit held: BLOCKED on {on:?}");
        }
        other => println!("debit(40): {other:?}"),
    }

    println!("\n== escrow method (state-dependent conflict test) ==");
    let mut escrow = EscrowObject::new(CAP, 50);
    let a = TxnId(0);
    let b = TxnId(1);
    assert_eq!(escrow.credit(a, 10), Ok(EscrowOutcome::Ok));
    match escrow.debit(b, 40) {
        Ok(EscrowOutcome::Ok) => {
            println!("debit(40) while credit held: GRANTED (guaranteed in every serialization)");
        }
        other => println!("debit(40): {other:?}"),
    }
    println!("guaranteed balance interval now: {:?}", escrow.bounds());
    escrow.commit(a);
    escrow.commit(b);
    println!("committed balance: {}", escrow.committed());

    println!(
        "\nThe escrow method's conflict test depends on the current state, which the \
         paper's I(X, Spec, View, Conflict) framework deliberately excludes (§8) — \
         this is the concurrency that exclusion costs."
    );
}
