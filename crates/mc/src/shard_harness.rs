//! The sharded model-checking instance: a fleet of real [`DurableSystem`]
//! shards under presumed-abort 2PC ([`ShardedSystem`]), explored with the
//! extended `p`/`q`/`s`/`z` alphabet.
//!
//! The instance is deliberately all-cross-shard: there is one object per
//! shard (object `s` lives on shard `s`), and logical transaction `i`
//! deposits `1 << i` on *every* shard's object. Each shard's committed
//! balance is then a bit-set of exactly which global transactions committed
//! *there* — so the eighth oracle leg (global dynamic atomicity, via the
//! runtime's own [`check_uniform_outcome`]) is an exact bit comparison
//! across shards, not a heuristic.
//!
//! Doubt is settled the way the protocol settles it: a recovered in-doubt
//! participant stays in doubt while its coordinator is alive and still
//! undecided (the coordinator may yet commit from the durable yes-votes —
//! the `ParticipantInDoubt` schedule), and is resolved against the
//! coordinator's durable commit set — else presumed abort — once the
//! coordinator crashes ([`McAction::CrashCoordinator`]).
//!
//! Per-shard recovery internals (torn tails, nested recovery crashes,
//! checkpoint interplay, view agreement) are the *single-system* checker's
//! job — the same code paths run here, already exhaustively covered. This
//! instance spends its state space purely on the cross-shard protocol.

use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv, BankResp};
use ccr_core::conflict::FnConflict;
use ccr_core::ids::ObjectId;
use ccr_runtime::crash::{DurableSystem, SystemMode};
use ccr_runtime::engine::UipEngine;
use ccr_runtime::shard::{check_uniform_outcome, ShardedSnapshot, ShardedSystem};

use crate::action::McAction;
use crate::harness::{Applied, McBackend, McConfig, McViolation, Mutation};

type Fleet<B> = ShardedSystem<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>, B>;
type FleetSnap<B> =
    ShardedSnapshot<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>, B>;

/// Client-visible standing of one global transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GPhase {
    /// Not begun.
    Fresh,
    /// Begun; its deposit executed (volatile) on every shard.
    Active,
    /// Every participant holds a durable PREPARE; awaiting the decision.
    Prepared,
    /// Commit decided and acknowledged — must be durably visible on every
    /// shard from now on.
    Committed,
    /// Abort decided (explicit or presumed) — must never become visible.
    Aborted,
    /// Was active (unprepared somewhere) when a crash hit: its yes-vote can
    /// never be collected, so it aborted globally — must never be visible.
    Lost,
}

/// The cloneable bookkeeping half of a sharded-harness snapshot.
#[derive(Clone)]
struct ShardBook {
    phase: Vec<GPhase>,
    gtids: Vec<Option<u64>>,
    crash_left: u32,
    mutated: bool,
}

/// A full sharded-harness snapshot (fleet + bookkeeping) — the explorer's
/// fork point.
pub struct ShardHarnessSnapshot<B: McBackend> {
    sys: FleetSnap<B>,
    book: ShardBook,
}

/// One sharded instance under test: the real fleet plus the client-side
/// ledger the global invariants check against.
pub struct ShardHarness<B: McBackend> {
    cfg: McConfig,
    sys: Fleet<B>,
    book: ShardBook,
}

impl<B: McBackend> ShardHarness<B> {
    /// Build a fresh fleet per `cfg` (`cfg.shards >= 2`; `objects`,
    /// `group_commit`, `ckpt_budget` and `max_tears` are ignored here).
    pub fn new(cfg: McConfig) -> Self {
        assert!(cfg.shards >= 2, "the sharded instance needs at least two shards");
        assert!(cfg.shards <= 8, "keep the crash-subset alphabet enumerable");
        let nshards = cfg.shards;
        let sys = ShardedSystem::new_with(nshards, |_| {
            DurableSystem::with_backend(
                BankAccount::default(),
                nshards as u32,
                bank_nrbc(),
                B::fresh(),
            )
        });
        ShardHarness {
            cfg,
            sys,
            book: ShardBook {
                phase: vec![GPhase::Fresh; cfg.txns],
                gtids: vec![None; cfg.txns],
                crash_left: cfg.crash_budget,
                mutated: false,
            },
        }
    }

    /// The instance configuration.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    fn amount_of(i: usize) -> u64 {
        1u64 << i
    }

    fn gtid_of(&self, i: usize) -> u64 {
        self.book.gtids[i].expect("begun txn has a gtid")
    }

    /// Snapshot fleet + bookkeeping.
    pub fn snapshot(&self) -> ShardHarnessSnapshot<B> {
        ShardHarnessSnapshot { sys: self.sys.snapshot(), book: self.book.clone() }
    }

    /// Rewind to a snapshot (non-consuming).
    pub fn restore(&mut self, snap: &ShardHarnessSnapshot<B>) {
        self.sys.restore(&snap.sys);
        self.book = snap.book.clone();
    }

    /// Exact canonical encoding of everything that can influence future
    /// behavior or invariant outcomes — phases, gtid assignment, budgets,
    /// the coordinator's durable set and allocator, and every shard's
    /// doubt list, counters and physical image fingerprint.
    pub fn canonical_key(&mut self) -> Vec<u8> {
        let mut k = Vec::with_capacity(128);
        for p in &self.book.phase {
            k.push(*p as u8);
        }
        k.push(0xfe);
        for g in &self.book.gtids {
            k.extend(g.unwrap_or(0).to_le_bytes());
        }
        k.extend(self.book.crash_left.to_le_bytes());
        k.push(self.book.mutated as u8);
        let durable: Vec<u64> = self.sys.coordinator().committed().collect();
        k.extend((durable.len() as u32).to_le_bytes());
        for g in durable {
            k.extend(g.to_le_bytes());
        }
        k.extend(self.sys.next_gtid().to_le_bytes());
        for s in 0..self.cfg.shards {
            let doubt = self.sys.shard(s).in_doubt();
            k.extend((doubt.len() as u32).to_le_bytes());
            for g in doubt {
                k.extend(g.to_le_bytes());
            }
            {
                let sh = self.sys.shard(s);
                k.push(match sh.mode() {
                    SystemMode::Normal => 0,
                    SystemMode::Degraded => 1,
                });
                k.extend(sh.journal().base_records().to_le_bytes());
                k.extend((sh.journal().records().len() as u64).to_le_bytes());
                k.extend(sh.system().next_txn_id().to_le_bytes());
                k.extend(sh.exec_seq().to_le_bytes());
                k.extend(sh.backend().image_fingerprint().to_le_bytes());
            }
            for o in 0..self.cfg.shards as u32 {
                k.extend(self.sys.shard_mut(s).committed_state(ObjectId(o)).to_le_bytes());
            }
        }
        k
    }

    /// The actions enabled in the current state, in deterministic order.
    pub fn enabled_actions(&mut self) -> Vec<McAction> {
        let mut out = Vec::new();
        for i in 0..self.cfg.txns {
            if self.book.phase[i] == GPhase::Fresh {
                out.push(McAction::Begin(i));
            }
        }
        for i in 0..self.cfg.txns {
            match self.book.phase[i] {
                GPhase::Active => {
                    out.push(McAction::Prepare(i));
                    out.push(McAction::Abort(i));
                }
                GPhase::Prepared => {
                    out.push(McAction::DecideCommit(i));
                    out.push(McAction::Abort(i));
                }
                _ => {}
            }
        }
        if self.book.crash_left > 0 {
            for mask in 1..(1u32 << self.cfg.shards) {
                out.push(McAction::CrashShards(mask));
            }
            out.push(McAction::CrashCoordinator);
        }
        out
    }

    /// Apply one action, running the global invariant battery after any
    /// action that took effect.
    pub fn apply(&mut self, action: McAction) -> Applied {
        let applied = match action {
            McAction::Begin(i) => self.do_begin(i),
            McAction::Abort(i) => self.do_abort(i),
            McAction::Prepare(i) => self.do_prepare(i),
            McAction::DecideCommit(i) => self.do_decide(i),
            McAction::CrashShards(mask) => self.do_crash_shards(mask),
            McAction::CrashCoordinator => self.do_crash_coordinator(),
            // Single-system tokens (commit, flush, checkpoint, torn/clean
            // crashes) are dead branches in the sharded instance.
            _ => Applied::Skip,
        };
        match applied {
            Applied::Ok => match self.check() {
                Some(v) => Applied::Violation(v),
                None => Applied::Ok,
            },
            other => other,
        }
    }

    fn do_begin(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != GPhase::Fresh {
            return Applied::Skip;
        }
        let gtid = self.sys.begin_global();
        for s in 0..self.cfg.shards {
            let inv = BankInv::Deposit(Self::amount_of(i));
            match self.sys.invoke_global(gtid, ObjectId(s as u32), inv) {
                Ok(resp) => debug_assert_eq!(resp, BankResp::Ok),
                Err(e) => {
                    return Applied::Violation(McViolation::Internal {
                        detail: format!("deposit of gtxn {i} on shard {s} refused: {e:?}"),
                    });
                }
            }
        }
        self.book.phase[i] = GPhase::Active;
        self.book.gtids[i] = Some(gtid);
        Applied::Ok
    }

    fn do_abort(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || !matches!(self.book.phase[i], GPhase::Active | GPhase::Prepared) {
            return Applied::Skip;
        }
        // Local aborts on unprepared halves, durable abort decisions on
        // prepared ones (including in-doubt ghosts) — nothing at the
        // coordinator, per presumed abort.
        self.sys.abort_global(self.gtid_of(i));
        self.book.phase[i] = GPhase::Aborted;
        Applied::Ok
    }

    fn do_prepare(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != GPhase::Active {
            return Applied::Skip;
        }
        match self.sys.prepare_all(self.gtid_of(i)) {
            Ok(()) => {
                self.book.phase[i] = GPhase::Prepared;
                Applied::Ok
            }
            // No shard is degraded and no device is faulted in the explored
            // instance: a no-vote here is a harness/runtime bug.
            Err(e) => Applied::Violation(McViolation::Internal {
                detail: format!("prepare of gtxn {i} no-voted on a fault-free fleet: {e:?}"),
            }),
        }
    }

    fn do_decide(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != GPhase::Prepared {
            return Applied::Skip;
        }
        let gtid = self.gtid_of(i);
        if self.cfg.mutation == Some(Mutation::LoseDecision) && !self.book.mutated {
            // Sabotage: the decision record evaporates, one participant is
            // told to commit on the coordinator's volatile word, and the
            // coordinator dies before reaching the rest — settlement then
            // presumes abort on the stragglers. The textbook mixed outcome.
            self.book.mutated = true;
            self.sys.coordinator_mut().arm_lose_decision();
            let lost = !self.sys.decide_commit(gtid);
            debug_assert!(lost, "the armed decision record must be lost");
            let first = self.sys.participants(gtid)[0];
            let _ = self.sys.resolve_participant(gtid, first, true);
            self.book.phase[i] = GPhase::Committed;
            return self.coordinator_crash_fallout();
        }
        self.sys.decide_commit(gtid);
        for s in self.sys.participants(gtid) {
            if let Err(e) = self.sys.resolve_participant(gtid, s, true) {
                return Applied::Violation(McViolation::Internal {
                    detail: format!("decided commit of gtxn {i} refused on shard {s}: {e:?}"),
                });
            }
        }
        self.book.phase[i] = GPhase::Committed;
        Applied::Ok
    }

    fn do_crash_shards(&mut self, mask: u32) -> Applied {
        if self.book.crash_left == 0 {
            return Applied::Skip;
        }
        let mask = mask & ((1u32 << self.cfg.shards) - 1);
        if mask == 0 {
            return Applied::Skip;
        }
        self.book.crash_left -= 1;
        if let Err(e) = self.sys.crash_subset(mask) {
            return Applied::Violation(McViolation::RecoveryRefused { detail: format!("{e:?}") });
        }
        // Every transaction is cross-shard over the whole fleet, so any
        // crashed shard held an unprepared half of every active one: those
        // abort globally inside `crash_subset`. Fully prepared transactions
        // stay live — their doubt is durable, and the coordinator (still
        // running) may yet decide either way.
        for p in &mut self.book.phase {
            if *p == GPhase::Active {
                *p = GPhase::Lost;
            }
        }
        Applied::Ok
    }

    fn do_crash_coordinator(&mut self) -> Applied {
        if self.book.crash_left == 0 {
            return Applied::Skip;
        }
        self.book.crash_left -= 1;
        self.coordinator_crash_fallout()
    }

    /// Crash the coordinator and settle the fleet from durable truth:
    /// unprepared halves abort locally, in-doubt prepares resolve against
    /// the durable commit set (presumed abort otherwise).
    fn coordinator_crash_fallout(&mut self) -> Applied {
        self.sys.crash_coordinator();
        self.sys.resolve_in_doubt();
        for i in 0..self.cfg.txns {
            match self.book.phase[i] {
                GPhase::Active => self.book.phase[i] = GPhase::Lost,
                GPhase::Prepared => {
                    // Settled from the coordinator's durable word.
                    self.book.phase[i] = if self.sys.coordinator().decision(self.gtid_of(i)) {
                        GPhase::Committed
                    } else {
                        GPhase::Aborted
                    };
                }
                _ => {}
            }
        }
        Applied::Ok
    }

    /// The global invariant battery, run after every effective action.
    fn check(&mut self) -> Option<McViolation> {
        let n = self.cfg.shards;
        // 1. Per-shard decodability: the home object's balance is a bit-set
        //    of assigned transactions; foreign objects never receive
        //    deposits (routing owns placement).
        let mask: u64 = (0..self.cfg.txns).map(Self::amount_of).sum();
        let mut visible = vec![0u64; n];
        for (s, vis) in visible.iter_mut().enumerate() {
            for o in 0..n as u32 {
                let state = self.sys.shard_mut(s).committed_state(ObjectId(o));
                if o as usize == s {
                    *vis = state;
                    if state & !mask != 0 {
                        return Some(McViolation::StrayState { object: o, state });
                    }
                } else if state != 0 {
                    return Some(McViolation::StrayState { object: o, state });
                }
            }
        }
        // 2. The eighth oracle leg: uniform outcome across participants for
        //    every settled global transaction. Transactions still in doubt
        //    somewhere are pending — their visibility is legitimately
        //    nowhere yet — and are re-checked once settled.
        let pending = self.sys.in_doubt();
        let gtids: Vec<(u64, Vec<usize>)> = (0..self.cfg.txns)
            .filter_map(|i| self.book.gtids[i].map(|g| (g, (0..n).collect())))
            .filter(|(g, _)| !pending.contains(g))
            .collect();
        if let Err(v) = check_uniform_outcome(&gtids, |gtid, s| {
            let i = self
                .book
                .gtids
                .iter()
                .position(|g| *g == Some(gtid))
                .expect("checked gtids come from the book");
            visible[s] & Self::amount_of(i) != 0
        }) {
            let i = self
                .book
                .gtids
                .iter()
                .position(|g| *g == Some(v.gtid))
                .expect("violating gtid comes from the book");
            return Some(McViolation::GlobalSplit {
                txn: i,
                committed_on: v.committed_on,
                aborted_on: v.aborted_on,
            });
        }
        // 3. Durability and no-resurrection, per shard.
        for i in 0..self.cfg.txns {
            if self.book.gtids[i].is_some_and(|g| pending.contains(&g)) {
                continue;
            }
            let everywhere = (0..n).all(|s| visible[s] & Self::amount_of(i) != 0);
            let anywhere = (0..n).any(|s| visible[s] & Self::amount_of(i) != 0);
            match self.book.phase[i] {
                GPhase::Committed if !everywhere => {
                    return Some(McViolation::DurabilityLost { txn: i });
                }
                GPhase::Fresh
                | GPhase::Active
                | GPhase::Prepared
                | GPhase::Aborted
                | GPhase::Lost
                    if anywhere =>
                {
                    return Some(McViolation::Resurrection { txn: i });
                }
                _ => {}
            }
        }
        None
    }

    /// Whether every transaction reached a terminal phase — the explorer's
    /// terminal-state predicate (the crash budget may remain; those
    /// branches are still enumerated).
    pub fn all_resolved(&self) -> bool {
        self.book
            .phase
            .iter()
            .all(|p| matches!(p, GPhase::Committed | GPhase::Aborted | GPhase::Lost))
    }
}

#[cfg(test)]
mod tests {
    use crate::explorer::{explore, run_trace};
    use crate::harness::{McBackendKind, McConfig, Mutation};

    fn sharded(backend: McBackendKind) -> McConfig {
        McConfig { shards: 2, backend, ..Default::default() }
    }

    /// The acceptance-criteria instance: a 2-shard fleet, exhaustively
    /// explored with the prepare/decide/crash-subset alphabet, is
    /// violation-free with a non-trivial state space on both backends.
    #[test]
    fn two_shard_instance_is_violation_free() {
        for backend in [McBackendKind::Mem, McBackendKind::Disk] {
            let v = explore(sharded(backend));
            assert!(v.passed(), "violation on {backend}: {:?}", v.violation);
            assert!(v.stats.states >= 100, "state space too small on {backend}: {:?}", v.stats);
            assert!(v.stats.terminals > 0, "no terminal states on {backend}: {:?}", v.stats);
        }
    }

    /// The negative control for the eighth oracle leg: losing the
    /// coordinator's commit-decision record after one participant resolved
    /// must surface as a global split, with a minimal replayable trace.
    #[test]
    fn lose_decision_mutation_is_caught_as_a_global_split() {
        let cfg =
            McConfig { mutation: Some(Mutation::LoseDecision), ..sharded(McBackendKind::Disk) };
        let v = explore(cfg);
        let (violation, trace) = v.violation.expect("the lost decision must be caught");
        assert_eq!(violation.kind(), "global-split", "wrong invariant fired: {violation}");
        assert_eq!(trace.to_string(), "b0 p0 q0", "not minimal: {trace}");
        let replayed = run_trace(cfg, &trace).expect("minimized trace must replay");
        assert_eq!(replayed.kind(), "global-split");
    }

    /// Sharded instances produce byte-identical verdict JSON run-to-run.
    #[test]
    fn sharded_verdicts_are_deterministic() {
        let cfg = sharded(McBackendKind::Disk);
        let (a, b) = (explore(cfg), explore(cfg));
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"shards\": 2"));
    }

    /// 2PC tokens replayed against a single-system instance are dead
    /// branches, not panics (a shrunk sharded trace pasted under
    /// `--shards 1` must degrade gracefully).
    #[test]
    fn sharded_tokens_are_dead_branches_on_single_system_instances() {
        let cfg = McConfig::default();
        assert_eq!(cfg.shards, 1);
        let trace = "b0 p0 q0 s3 z c0 x".parse().unwrap();
        assert!(run_trace(cfg, &trace).is_none());
    }
}
