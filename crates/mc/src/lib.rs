//! Bounded exhaustive model checking of the commit/recovery pipeline.
//!
//! The six-legged randomized oracle (`ccr-runtime`'s fault simulator) only
//! *samples* the pipeline's state space: a seeded sweep can miss a
//! low-probability interleaving of group commit, torn-batch repair and
//! crash-during-recovery. This crate is the exhaustive complement: it drives
//! small finite instances (2–3 transactions, a handful of objects, a bounded
//! crash budget) through the **real** `MemBackend`/`WalBackend`,
//! `DurableSystem::commit`/`commit_group`, `checkpoint` and `recover_with`
//! code paths, enumerating *every* interleaving of
//! commit / batch flush / checkpoint / crash / recover — including a crash at
//! every checked device operation inside recovery itself — by depth-first
//! search over cloneable system snapshots with a canonical-state table for
//! deduplication.
//!
//! The invariants checked are the ones murodb's `CrashResilience.tla`
//! states for the same abstraction (WAL as durable commit summaries, crash
//! discards volatile state, recovery replays commit order):
//!
//! * **committed-prefix durability** — every acknowledged commit survives
//!   every subsequent crash; a torn group flush may only lose a *suffix* of
//!   the batch (survivors form a prefix in commit order);
//! * **no resurrection** — an aborted or never-committed transaction's
//!   effects never appear in a recovered state;
//! * **recovery idempotence / convergence** — recovering twice from the same
//!   durable image yields the same committed states;
//! * **replay-view agreement** — the paper's two views of the recovered log
//!   (update-in-place replay in execution order, Theorem 9; deferred-update
//!   replay in commit order, Theorem 10) fold to the same committed states,
//!   which are the states the rebuilt system actually serves.
//!
//! On a violation the explorer emits a *minimized* replayable trace (greedy
//! delta-debugging over the action list) plus a `ccr-experiments mc`
//! reproducer line carrying the exact instance configuration. A second
//! output mode ([`tla::generate_module`]) renders the explored instance as a
//! concrete `.tla` module so TLC can cross-check the same state space.
//!
//! The instance is deliberately tiny and fully decodable: logical
//! transaction `i` deposits `1 << i` into object `i mod objects`, so every
//! committed state is a bit-set of exactly which transactions' effects are
//! present — durability and resurrection checks are exact, not statistical.
//!
//! With `shards >= 2` ([`McConfig::shards`]) the checker switches to the
//! **sharded** instance ([`shard_harness::ShardHarness`]): a fleet of real
//! `DurableSystem` shards under presumed-abort 2PC, explored with the
//! extended `p{i}` (prepare) / `q{i}` (decide commit) / `s{mask}`
//! (crash shard subset) / `z` (crash coordinator) alphabet, checking the
//! eighth oracle leg — **global uniform outcome** across every crash
//! subset — with the lose-decision mutation as its negative control.

pub mod action;
pub mod explorer;
pub mod harness;
pub mod shard_harness;
pub mod shrink;
pub mod tla;

pub use action::{McAction, McTrace, ParseTraceError};
pub use explorer::{explore, ExploreStats, McVerdict};
pub use harness::{Harness, McBackend, McBackendKind, McConfig, McViolation, Mutation};
pub use shard_harness::ShardHarness;
pub use shrink::{reproducer, shrink};
pub use tla::{generate_module, lint_tla};
