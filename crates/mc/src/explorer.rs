//! Depth-first exhaustive enumeration over harness snapshots, with a
//! canonical-state table for deduplication, plus trace replay (the
//! shrinker's and the CLI `--replay` mode's engine) and the deterministic
//! JSON verdict.

use std::collections::BTreeSet;

use ccr_adt::bank::BankAccount;
use ccr_store::{MemBackend, WalBackend};

use crate::action::{McAction, McTrace};
use crate::harness::{
    Applied, Harness, HarnessSnapshot, McBackend, McBackendKind, McConfig, McViolation,
};
use crate::shard_harness::{ShardHarness, ShardHarnessSnapshot};
use crate::shrink::{reproducer, shrink};

/// The explorer's view of an instance: build, fork (snapshot/restore),
/// enumerate, apply. Implemented by the single-system [`Harness`] and the
/// sharded [`ShardHarness`], so one DFS serves both.
trait Explorable: Sized {
    /// The fork-point snapshot type.
    type Snap;
    /// A fresh instance per `cfg`.
    fn build(cfg: McConfig) -> Self;
    /// Exact canonical state encoding (dedup key).
    fn canonical_key(&mut self) -> Vec<u8>;
    /// Enabled actions in deterministic order.
    fn enabled_actions(&mut self) -> Vec<McAction>;
    /// Capture the full state.
    fn snapshot(&self) -> Self::Snap;
    /// Rewind (non-consuming).
    fn restore(&mut self, snap: &Self::Snap);
    /// Apply one action, checking invariants.
    fn apply(&mut self, action: McAction) -> Applied;
}

impl<B: McBackend> Explorable for Harness<B> {
    type Snap = HarnessSnapshot<B>;

    fn build(cfg: McConfig) -> Self {
        Harness::new(cfg)
    }

    fn canonical_key(&mut self) -> Vec<u8> {
        Harness::canonical_key(self)
    }

    fn enabled_actions(&mut self) -> Vec<McAction> {
        Harness::enabled_actions(self)
    }

    fn snapshot(&self) -> Self::Snap {
        Harness::snapshot(self)
    }

    fn restore(&mut self, snap: &Self::Snap) {
        Harness::restore(self, snap)
    }

    fn apply(&mut self, action: McAction) -> Applied {
        Harness::apply(self, action)
    }
}

impl<B: McBackend> Explorable for ShardHarness<B> {
    type Snap = ShardHarnessSnapshot<B>;

    fn build(cfg: McConfig) -> Self {
        ShardHarness::new(cfg)
    }

    fn canonical_key(&mut self) -> Vec<u8> {
        ShardHarness::canonical_key(self)
    }

    fn enabled_actions(&mut self) -> Vec<McAction> {
        ShardHarness::enabled_actions(self)
    }

    fn snapshot(&self) -> Self::Snap {
        ShardHarness::snapshot(self)
    }

    fn restore(&mut self, snap: &Self::Snap) {
        ShardHarness::restore(self, snap)
    }

    fn apply(&mut self, action: McAction) -> Applied {
        ShardHarness::apply(self, action)
    }
}

/// Size and shape of the explored state space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct canonical states visited (deduplicated).
    pub states: u64,
    /// Transitions taken (actions that applied; revisits included).
    pub transitions: u64,
    /// Listed actions that turned out inapplicable (dead branches).
    pub skipped: u64,
    /// Terminal states reached (no enabled actions).
    pub terminals: u64,
    /// Longest trace explored.
    pub max_depth: usize,
}

/// The checker's result for one instance: the instance echo, the state-space
/// counts, and — if an invariant broke — the minimized trace plus a
/// reproducer line.
#[derive(Clone, Debug)]
pub struct McVerdict {
    /// The instance explored.
    pub config: McConfig,
    /// State-space counts.
    pub stats: ExploreStats,
    /// The violation found (if any), with its minimized trace.
    pub violation: Option<(McViolation, McTrace)>,
}

impl McVerdict {
    /// Whether the instance satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// Deterministic JSON rendering: fixed key order, no wall-clock, no
    /// hash-iteration — same instance, byte-identical output.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"mode\": \"mc\",\n");
        out.push_str(&format!("  \"txns\": {},\n", c.txns));
        out.push_str(&format!("  \"objects\": {},\n", c.objects));
        out.push_str(&format!("  \"shards\": {},\n", c.shards));
        out.push_str(&format!("  \"crash_budget\": {},\n", c.crash_budget));
        out.push_str(&format!("  \"ckpt_budget\": {},\n", c.ckpt_budget));
        out.push_str(&format!("  \"group_commit\": {},\n", c.group_commit));
        out.push_str(&format!("  \"backend\": \"{}\",\n", c.backend));
        match c.mutation {
            Some(m) => out.push_str(&format!("  \"mutation\": \"{m}\",\n")),
            None => out.push_str("  \"mutation\": null,\n"),
        }
        out.push_str(&format!("  \"max_tears\": {},\n", c.max_tears));
        out.push_str(&format!("  \"states\": {},\n", s.states));
        out.push_str(&format!("  \"transitions\": {},\n", s.transitions));
        out.push_str(&format!("  \"skipped\": {},\n", s.skipped));
        out.push_str(&format!("  \"terminals\": {},\n", s.terminals));
        out.push_str(&format!("  \"max_depth\": {},\n", s.max_depth));
        out.push_str(&format!("  \"violations\": {}", u32::from(!self.passed())));
        if let Some((v, trace)) = &self.violation {
            out.push_str(",\n");
            out.push_str(&format!("  \"violation_kind\": \"{}\",\n", v.kind()));
            out.push_str(&format!("  \"violation\": {},\n", json_string(&v.to_string())));
            out.push_str(&format!("  \"trace\": {},\n", json_string(&trace.to_string())));
            out.push_str(&format!("  \"reproducer\": {}\n", json_string(&reproducer(c, trace))));
        } else {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Exhaustively explore the instance (single-system for `shards <= 1`,
/// the sharded 2PC fleet otherwise), shrink any violation found, and
/// return the verdict.
pub fn explore(cfg: McConfig) -> McVerdict {
    match (cfg.shards >= 2, cfg.backend) {
        (false, McBackendKind::Mem) => explore_with::<Harness<MemBackend<BankAccount>>>(cfg),
        (false, McBackendKind::Disk) => explore_with::<Harness<WalBackend<BankAccount>>>(cfg),
        (true, McBackendKind::Mem) => explore_with::<ShardHarness<MemBackend<BankAccount>>>(cfg),
        (true, McBackendKind::Disk) => explore_with::<ShardHarness<WalBackend<BankAccount>>>(cfg),
    }
}

/// Replay a recorded trace against a fresh instance; `Some` is the first
/// violation hit. Inapplicable actions are no-ops (the shrinker leans on
/// this: deleting a prefix action may strand a later one).
pub fn run_trace(cfg: McConfig, trace: &McTrace) -> Option<McViolation> {
    match (cfg.shards >= 2, cfg.backend) {
        (false, McBackendKind::Mem) => {
            run_trace_with::<Harness<MemBackend<BankAccount>>>(cfg, trace)
        }
        (false, McBackendKind::Disk) => {
            run_trace_with::<Harness<WalBackend<BankAccount>>>(cfg, trace)
        }
        (true, McBackendKind::Mem) => {
            run_trace_with::<ShardHarness<MemBackend<BankAccount>>>(cfg, trace)
        }
        (true, McBackendKind::Disk) => {
            run_trace_with::<ShardHarness<WalBackend<BankAccount>>>(cfg, trace)
        }
    }
}

fn run_trace_with<H: Explorable>(cfg: McConfig, trace: &McTrace) -> Option<McViolation> {
    let mut h = H::build(cfg);
    for &a in &trace.0 {
        if let Applied::Violation(v) = h.apply(a) {
            return Some(v);
        }
    }
    None
}

fn explore_with<H: Explorable>(cfg: McConfig) -> McVerdict {
    let mut h = H::build(cfg);
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut stats = ExploreStats::default();
    let mut trace: Vec<McAction> = Vec::new();
    let found = dfs(&mut h, &mut seen, &mut trace, &mut stats);
    let violation = found.map(|(v, raw)| {
        let minimized = shrink(cfg, &McTrace(raw), v.kind());
        // Report the violation the *minimized* trace produces (same kind by
        // construction, but possibly different details — e.g. a different
        // surviving transaction id than the raw counterexample's).
        let v = run_trace(cfg, &minimized).unwrap_or(v);
        (v, minimized)
    });
    McVerdict { config: cfg, stats, violation }
}

fn dfs<H: Explorable>(
    h: &mut H,
    seen: &mut BTreeSet<Vec<u8>>,
    trace: &mut Vec<McAction>,
    stats: &mut ExploreStats,
) -> Option<(McViolation, Vec<McAction>)> {
    if !seen.insert(h.canonical_key()) {
        return None;
    }
    stats.states += 1;
    stats.max_depth = stats.max_depth.max(trace.len());
    let actions = h.enabled_actions();
    if actions.is_empty() {
        stats.terminals += 1;
        return None;
    }
    let snap = h.snapshot();
    for a in actions {
        trace.push(a);
        match h.apply(a) {
            Applied::Ok => {
                stats.transitions += 1;
                if let Some(hit) = dfs(h, seen, trace, stats) {
                    return Some(hit);
                }
            }
            Applied::Skip => stats.skipped += 1,
            Applied::Violation(v) => {
                stats.transitions += 1;
                let raw = trace.clone();
                return Some((v, raw));
            }
        }
        trace.pop();
        h.restore(&snap);
    }
    None
}
