//! Depth-first exhaustive enumeration over harness snapshots, with a
//! canonical-state table for deduplication, plus trace replay (the
//! shrinker's and the CLI `--replay` mode's engine) and the deterministic
//! JSON verdict.

use std::collections::BTreeSet;

use ccr_adt::bank::BankAccount;
use ccr_store::{MemBackend, WalBackend};

use crate::action::{McAction, McTrace};
use crate::harness::{Applied, Harness, McBackend, McBackendKind, McConfig, McViolation};
use crate::shrink::{reproducer, shrink};

/// Size and shape of the explored state space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct canonical states visited (deduplicated).
    pub states: u64,
    /// Transitions taken (actions that applied; revisits included).
    pub transitions: u64,
    /// Listed actions that turned out inapplicable (dead branches).
    pub skipped: u64,
    /// Terminal states reached (no enabled actions).
    pub terminals: u64,
    /// Longest trace explored.
    pub max_depth: usize,
}

/// The checker's result for one instance: the instance echo, the state-space
/// counts, and — if an invariant broke — the minimized trace plus a
/// reproducer line.
#[derive(Clone, Debug)]
pub struct McVerdict {
    /// The instance explored.
    pub config: McConfig,
    /// State-space counts.
    pub stats: ExploreStats,
    /// The violation found (if any), with its minimized trace.
    pub violation: Option<(McViolation, McTrace)>,
}

impl McVerdict {
    /// Whether the instance satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// Deterministic JSON rendering: fixed key order, no wall-clock, no
    /// hash-iteration — same instance, byte-identical output.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"mode\": \"mc\",\n");
        out.push_str(&format!("  \"txns\": {},\n", c.txns));
        out.push_str(&format!("  \"objects\": {},\n", c.objects));
        out.push_str(&format!("  \"crash_budget\": {},\n", c.crash_budget));
        out.push_str(&format!("  \"ckpt_budget\": {},\n", c.ckpt_budget));
        out.push_str(&format!("  \"group_commit\": {},\n", c.group_commit));
        out.push_str(&format!("  \"backend\": \"{}\",\n", c.backend));
        match c.mutation {
            Some(m) => out.push_str(&format!("  \"mutation\": \"{m}\",\n")),
            None => out.push_str("  \"mutation\": null,\n"),
        }
        out.push_str(&format!("  \"max_tears\": {},\n", c.max_tears));
        out.push_str(&format!("  \"states\": {},\n", s.states));
        out.push_str(&format!("  \"transitions\": {},\n", s.transitions));
        out.push_str(&format!("  \"skipped\": {},\n", s.skipped));
        out.push_str(&format!("  \"terminals\": {},\n", s.terminals));
        out.push_str(&format!("  \"max_depth\": {},\n", s.max_depth));
        out.push_str(&format!("  \"violations\": {}", u32::from(!self.passed())));
        if let Some((v, trace)) = &self.violation {
            out.push_str(",\n");
            out.push_str(&format!("  \"violation_kind\": \"{}\",\n", v.kind()));
            out.push_str(&format!("  \"violation\": {},\n", json_string(&v.to_string())));
            out.push_str(&format!("  \"trace\": {},\n", json_string(&trace.to_string())));
            out.push_str(&format!("  \"reproducer\": {}\n", json_string(&reproducer(c, trace))));
        } else {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Exhaustively explore the instance, shrink any violation found, and
/// return the verdict.
pub fn explore(cfg: McConfig) -> McVerdict {
    match cfg.backend {
        McBackendKind::Mem => explore_with::<MemBackend<BankAccount>>(cfg),
        McBackendKind::Disk => explore_with::<WalBackend<BankAccount>>(cfg),
    }
}

/// Replay a recorded trace against a fresh instance; `Some` is the first
/// violation hit. Inapplicable actions are no-ops (the shrinker leans on
/// this: deleting a prefix action may strand a later one).
pub fn run_trace(cfg: McConfig, trace: &McTrace) -> Option<McViolation> {
    match cfg.backend {
        McBackendKind::Mem => run_trace_with::<MemBackend<BankAccount>>(cfg, trace),
        McBackendKind::Disk => run_trace_with::<WalBackend<BankAccount>>(cfg, trace),
    }
}

fn run_trace_with<B: McBackend>(cfg: McConfig, trace: &McTrace) -> Option<McViolation> {
    let mut h = Harness::<B>::new(cfg);
    for &a in &trace.0 {
        if let Applied::Violation(v) = h.apply(a) {
            return Some(v);
        }
    }
    None
}

fn explore_with<B: McBackend>(cfg: McConfig) -> McVerdict {
    let mut h = Harness::<B>::new(cfg);
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut stats = ExploreStats::default();
    let mut trace: Vec<McAction> = Vec::new();
    let found = dfs(&mut h, &mut seen, &mut trace, &mut stats);
    let violation = found.map(|(v, raw)| {
        let minimized = shrink(cfg, &McTrace(raw), v.kind());
        // Report the violation the *minimized* trace produces (same kind by
        // construction, but possibly different details — e.g. a different
        // surviving transaction id than the raw counterexample's).
        let v = run_trace(cfg, &minimized).unwrap_or(v);
        (v, minimized)
    });
    McVerdict { config: cfg, stats, violation }
}

fn dfs<B: McBackend>(
    h: &mut Harness<B>,
    seen: &mut BTreeSet<Vec<u8>>,
    trace: &mut Vec<McAction>,
    stats: &mut ExploreStats,
) -> Option<(McViolation, Vec<McAction>)> {
    if !seen.insert(h.canonical_key()) {
        return None;
    }
    stats.states += 1;
    stats.max_depth = stats.max_depth.max(trace.len());
    let actions = h.enabled_actions();
    if actions.is_empty() {
        stats.terminals += 1;
        return None;
    }
    let snap = h.snapshot();
    for a in actions {
        trace.push(a);
        match h.apply(a) {
            Applied::Ok => {
                stats.transitions += 1;
                if let Some(hit) = dfs(h, seen, trace, stats) {
                    return Some(hit);
                }
            }
            Applied::Skip => stats.skipped += 1,
            Applied::Violation(v) => {
                stats.transitions += 1;
                let raw = trace.clone();
                return Some((v, raw));
            }
        }
        trace.pop();
        h.restore(&snap);
    }
    None
}
