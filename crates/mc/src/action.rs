//! The explorer's action alphabet and replayable traces.
//!
//! A trace is a whitespace-separated list of action tokens — compact enough
//! to paste into a `ccr-experiments mc --replay "..."` reproducer line, and
//! round-trippable ([`std::fmt::Display`] / [`std::str::FromStr`]) so the
//! shrinker, the CLI and the negative-control tests all speak the same
//! format.

use std::fmt;
use std::str::FromStr;

/// One transition of the model: what the explorer does to the real
/// `DurableSystem` at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum McAction {
    /// `b{i}` — begin logical transaction `i` and execute its single
    /// deposit of `1 << i` on object `i mod objects` (volatile until
    /// commit).
    Begin(usize),
    /// `c{i}` — commit transaction `i`: a direct journaled commit, or (in
    /// group-commit mode) stage it for the next [`McAction::Flush`].
    Commit(usize),
    /// `a{i}` — abort transaction `i` (nothing reaches the journal).
    Abort(usize),
    /// `f` — group-commit flush: commit every staged transaction with one
    /// batch append.
    Flush,
    /// `k` — write a checkpoint (folds the journal into a durable image and
    /// lets the backend truncate).
    Checkpoint,
    /// `x` — clean crash: lose all volatile state, then recover
    /// (`TornPolicy::DiscardTail`).
    CrashClean,
    /// `t{n}` — tear the last `n` physical units (sectors / operations) off
    /// the most recent commit flush, then crash and recover. The flush's
    /// transactions become *undecided*: survivors must form a prefix of the
    /// batch in commit order.
    CrashTorn(usize),
    /// `r` — lose the *first* sector of the most recent multi-sector flush
    /// (device reordered persistence across the un-fsynced write), then
    /// crash and recover.
    CrashReorder,
    /// `d{n}` — crash, then arm the device to lose power again after `n`
    /// checked device operations *of the recovery itself*, then recover
    /// (the nested power loss is absorbed internally; the trigger is
    /// one-shot).
    CrashInRecovery(u64),
    /// `p{i}` — 2PC phase one (sharded instances only): collect a durable
    /// PREPARE from every participant of global transaction `i`. Any
    /// no-vote aborts it globally.
    Prepare(usize),
    /// `q{i}` — 2PC decision + phase two (sharded instances only): durably
    /// record commit for the fully prepared global transaction `i`, then
    /// journal and apply the decision on every participant.
    DecideCommit(usize),
    /// `s{n}` — crash the shard subset with bitmask `n` (sharded instances
    /// only): each named shard loses power and recovers under
    /// `TornPolicy::DiscardTail`; in-doubt transactions are then settled
    /// from the coordinator's durable commit set (presumed abort).
    CrashShards(u32),
    /// `z` — crash the coordinator (sharded instances only): its volatile
    /// transaction table dies, unprepared halves abort locally, prepared
    /// halves stay in doubt and are settled by presumed abort.
    CrashCoordinator,
}

impl fmt::Display for McAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McAction::Begin(i) => write!(f, "b{i}"),
            McAction::Commit(i) => write!(f, "c{i}"),
            McAction::Abort(i) => write!(f, "a{i}"),
            McAction::Flush => write!(f, "f"),
            McAction::Checkpoint => write!(f, "k"),
            McAction::CrashClean => write!(f, "x"),
            McAction::CrashTorn(n) => write!(f, "t{n}"),
            McAction::CrashReorder => write!(f, "r"),
            McAction::CrashInRecovery(n) => write!(f, "d{n}"),
            McAction::Prepare(i) => write!(f, "p{i}"),
            McAction::DecideCommit(i) => write!(f, "q{i}"),
            McAction::CrashShards(n) => write!(f, "s{n}"),
            McAction::CrashCoordinator => write!(f, "z"),
        }
    }
}

/// A malformed trace token (the token is echoed back).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError(pub String);

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised trace token `{}`", self.0)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for McAction {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseTraceError(s.to_string());
        let num = |rest: &str| rest.parse::<usize>().map_err(|_| bad());
        match s {
            "f" => return Ok(McAction::Flush),
            "k" => return Ok(McAction::Checkpoint),
            "x" => return Ok(McAction::CrashClean),
            "r" => return Ok(McAction::CrashReorder),
            "z" => return Ok(McAction::CrashCoordinator),
            _ => {}
        }
        let (head, rest) = s.split_at(1);
        match head {
            "b" => Ok(McAction::Begin(num(rest)?)),
            "c" => Ok(McAction::Commit(num(rest)?)),
            "a" => Ok(McAction::Abort(num(rest)?)),
            "t" => Ok(McAction::CrashTorn(num(rest)?)),
            "d" => Ok(McAction::CrashInRecovery(num(rest)? as u64)),
            "p" => Ok(McAction::Prepare(num(rest)?)),
            "q" => Ok(McAction::DecideCommit(num(rest)?)),
            "s" => Ok(McAction::CrashShards(num(rest)? as u32)),
            _ => Err(bad()),
        }
    }
}

/// A replayable action sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct McTrace(pub Vec<McAction>);

impl fmt::Display for McTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromStr for McTrace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.split_whitespace().map(McAction::from_str).collect::<Result<Vec<_>, _>>().map(McTrace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_action_round_trips_through_its_token() {
        let all = vec![
            McAction::Begin(0),
            McAction::Commit(2),
            McAction::Abort(1),
            McAction::Flush,
            McAction::Checkpoint,
            McAction::CrashClean,
            McAction::CrashTorn(3),
            McAction::CrashReorder,
            McAction::CrashInRecovery(17),
            McAction::Prepare(1),
            McAction::DecideCommit(0),
            McAction::CrashShards(3),
            McAction::CrashCoordinator,
        ];
        let trace = McTrace(all.clone());
        let parsed: McTrace = trace.to_string().parse().unwrap();
        assert_eq!(parsed.0, all);
    }

    #[test]
    fn junk_tokens_are_rejected() {
        assert!("y7".parse::<McAction>().is_err());
        assert!("b".parse::<McAction>().is_err());
        assert!("bx".parse::<McAction>().is_err());
        assert!("p".parse::<McAction>().is_err());
        assert!("b0 zz".parse::<McTrace>().is_err());
    }

    #[test]
    fn empty_trace_parses_and_prints_empty() {
        let t: McTrace = "".parse().unwrap();
        assert!(t.0.is_empty());
        assert_eq!(t.to_string(), "");
    }
}
