//! Trace minimization and reproducer lines.
//!
//! The explorer's raw counterexample carries every action DFS happened to
//! take before the violating one; most are irrelevant. [`shrink`] is a
//! greedy delta-debugging pass — repeatedly delete any single action whose
//! removal preserves a violation of the *same kind* — which converges to a
//! 1-minimal trace (tiny traces, so quadratic replay cost is fine).
//!
//! [`reproducer`] renders the full `ccr-experiments mc` command line,
//! **always** spelling out backend, budgets, group-commit and mutation so
//! the replay runs under the exact failing configuration rather than
//! whatever the defaults happen to be.

use crate::action::McTrace;
use crate::explorer::run_trace;
use crate::harness::McConfig;

/// Greedily minimize `trace` while [`run_trace`] still reports a violation
/// of `kind`. Returns the (possibly unchanged) minimal trace.
pub fn shrink(cfg: McConfig, trace: &McTrace, kind: &str) -> McTrace {
    let still_fails = |actions: &[crate::action::McAction]| -> bool {
        run_trace(cfg, &McTrace(actions.to_vec())).map(|v| v.kind() == kind).unwrap_or(false)
    };
    let mut cur = trace.0.clone();
    // If the raw trace doesn't replay (it should), refuse to "minimize"
    // into something unrelated.
    if !still_fails(&cur) {
        return trace.clone();
    }
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                cur = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    McTrace(cur)
}

/// The `ccr-experiments mc` invocation that replays `trace` under exactly
/// `cfg` — every configuration flag explicit, no reliance on defaults.
pub fn reproducer(cfg: &McConfig, trace: &McTrace) -> String {
    let mut out = format!(
        "ccr-experiments mc --txns {} --objects {} --crash-budget {} --ckpt-budget {} \
         --max-tears {} --backend {} --shards {}",
        cfg.txns,
        cfg.objects,
        cfg.crash_budget,
        cfg.ckpt_budget,
        cfg.max_tears,
        cfg.backend,
        cfg.shards
    );
    if cfg.group_commit {
        out.push_str(" --group-commit");
    }
    if let Some(m) = cfg.mutation {
        out.push_str(&format!(" --mutate {m}"));
    }
    out.push_str(&format!(" --replay \"{trace}\""));
    out
}
