//! The model-checking harness: one small, fully decodable instance of the
//! real commit/recovery pipeline, plus the invariant checks run after every
//! recovery.
//!
//! Logical transaction `i` performs a single `Deposit(1 << i)` on object
//! `i mod objects`. Deposit amounts are distinct powers of two, so each
//! object's committed balance is a *bit-set* of exactly which transactions'
//! effects are present — the durability and resurrection checks decode it
//! exactly. Deposits commute under the bank's NRBC relation, so no
//! interleaving blocks: every enumerated schedule runs to completion and
//! state-space size is governed purely by the commit/crash alphabet.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv, BankResp};
use ccr_core::adt::Op;
use ccr_core::conflict::FnConflict;
use ccr_core::ids::ObjectId;
use ccr_runtime::crash::{DurableSystem, SystemMode, SystemSnapshot, TornPolicy};
use ccr_runtime::engine::UipEngine;
use ccr_store::{
    replay_du, replay_uip, CommitRecord, LogBackend, MemBackend, TailPolicy, WalBackend, WalConfig,
};

use crate::action::McAction;

/// Which storage backend the instance journals through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum McBackendKind {
    /// `ccr-store`'s segmented CRC'd write-ahead log on the simulated
    /// sector device — the full physical pipeline, including
    /// crash-at-device-op enumeration inside recovery.
    #[default]
    Disk,
    /// The fast in-memory backend (operation-granularity tears, no device
    /// ops — crash-in-recovery points don't exist here).
    Mem,
}

impl fmt::Display for McBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McBackendKind::Disk => write!(f, "disk"),
            McBackendKind::Mem => write!(f, "mem"),
        }
    }
}

impl FromStr for McBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "disk" => Ok(McBackendKind::Disk),
            "mem" => Ok(McBackendKind::Mem),
            other => Err(format!("unknown backend `{other}` (expected disk|mem)")),
        }
    }
}

/// A deliberately seeded pipeline bug — the mutation-style negative
/// controls that prove the checker (and the randomized oracle's legs)
/// actually detect what they claim to detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// After acknowledging a (non-group) commit, silently tear its tail off
    /// the stable image — an ack without durability. Violates
    /// committed-prefix durability.
    DropAckedCommit,
    /// After acknowledging a group flush, silently lose its first sector —
    /// as if the device reordered persistence and nobody noticed. Violates
    /// the batch-prefix contract.
    ReorderLastBatch,
    /// On abort, covertly append the aborted transaction's operations to
    /// the journal as if it had committed. Violates no-resurrection.
    ResurrectAborted,
    /// Skip the WAL epoch bump (disk only): stale pre-truncation frames can
    /// be replayed as if current. Violates idempotence / view agreement.
    SkipEpochBump,
    /// Sharded instances only: the coordinator's first commit-decision
    /// record silently evaporates after one participant was already told to
    /// commit, and the coordinator dies mid-phase-two — settlement presumes
    /// abort on the stragglers. Violates global uniform outcome (the
    /// eighth oracle leg).
    LoseDecision,
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mutation::DropAckedCommit => "drop-acked-commit",
            Mutation::ReorderLastBatch => "reorder-last-batch",
            Mutation::ResurrectAborted => "resurrect-aborted",
            Mutation::SkipEpochBump => "skip-epoch-bump",
            Mutation::LoseDecision => "lose-decision",
        };
        write!(f, "{s}")
    }
}

impl FromStr for Mutation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "drop-acked-commit" => Ok(Mutation::DropAckedCommit),
            "reorder-last-batch" => Ok(Mutation::ReorderLastBatch),
            "resurrect-aborted" => Ok(Mutation::ResurrectAborted),
            "skip-epoch-bump" => Ok(Mutation::SkipEpochBump),
            "lose-decision" => Ok(Mutation::LoseDecision),
            other => Err(format!(
                "unknown mutation `{other}` (expected drop-acked-commit|reorder-last-batch|\
                 resurrect-aborted|skip-epoch-bump|lose-decision)"
            )),
        }
    }
}

/// The finite instance the explorer enumerates.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Logical transactions (1..=6; transaction `i` deposits `1 << i`).
    pub txns: usize,
    /// Objects (transaction `i` touches object `i mod objects`).
    pub objects: u32,
    /// Crashes allowed per trace (each crash action consumes one).
    pub crash_budget: u32,
    /// Checkpoints allowed per trace.
    pub ckpt_budget: u32,
    /// Group-commit mode: commits stage; a flush action batches them.
    pub group_commit: bool,
    /// Storage backend.
    pub backend: McBackendKind,
    /// Seeded bug, if running a negative control.
    pub mutation: Option<Mutation>,
    /// Cap on enumerated torn-tail sizes (`t1..=t<max_tears>`).
    pub max_tears: usize,
    /// Recovery domains. `1` is the classic single-system instance; `>= 2`
    /// switches to the sharded presumed-abort 2PC instance (one object per
    /// shard, every transaction cross-shard, `p`/`q`/`s`/`z` alphabet —
    /// see `shard_harness`), where `objects`, `group_commit`, `ckpt_budget`
    /// and `max_tears` are ignored.
    pub shards: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            txns: 2,
            objects: 2,
            crash_budget: 2,
            ckpt_budget: 1,
            group_commit: false,
            backend: McBackendKind::Disk,
            mutation: None,
            max_tears: 2,
            shards: 1,
        }
    }
}

/// An invariant violation: which `CrashResilience.tla`-style property broke,
/// with enough detail to read the minimized trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McViolation {
    /// An acknowledged commit's effect is missing after recovery.
    DurabilityLost {
        /// The logical transaction whose deposit vanished.
        txn: usize,
    },
    /// An aborted (or crash-lost, or never-started) transaction's effect is
    /// present after recovery.
    Resurrection {
        /// The logical transaction that rose from the dead.
        txn: usize,
    },
    /// A recovered object state decodes to bits no assigned transaction
    /// could have produced (e.g. a double-applied deposit).
    StrayState {
        /// The object.
        object: u32,
        /// Its undecodable recovered state.
        state: u64,
    },
    /// Survivors of a torn group flush are not a prefix of the batch in
    /// commit order (all-or-prefix contract broken).
    NotPrefix {
        /// The flush's transactions in commit order.
        flush: Vec<usize>,
        /// Which of them survived.
        survived: Vec<usize>,
    },
    /// The paper's two replay views (UIP execution-order fold, DU
    /// commit-order fold) or the rebuilt system disagree about the
    /// recovered committed states.
    ViewDivergence {
        /// What diverged.
        detail: String,
    },
    /// Recovering twice from the same durable image produced different
    /// committed states (or the second recovery failed).
    NotIdempotent {
        /// What changed.
        detail: String,
    },
    /// Recovery refused an image it must be able to recover.
    RecoveryRefused {
        /// The underlying redo error.
        detail: String,
    },
    /// Sharded instances: a global transaction's outcome is not uniform
    /// across its participants — committed on some shards, aborted on
    /// others (the eighth oracle leg, global dynamic atomicity).
    GlobalSplit {
        /// The logical transaction with the mixed outcome.
        txn: usize,
        /// Shards where its deposit is visible.
        committed_on: Vec<usize>,
        /// Shards where it is not.
        aborted_on: Vec<usize>,
    },
    /// The harness itself hit an impossible transition (a commit or invoke
    /// the volatile system refused on a conflict-free schedule).
    Internal {
        /// What happened.
        detail: String,
    },
}

impl McViolation {
    /// Stable short kind tag (JSON verdicts, test assertions).
    pub fn kind(&self) -> &'static str {
        match self {
            McViolation::DurabilityLost { .. } => "durability-lost",
            McViolation::Resurrection { .. } => "resurrection",
            McViolation::StrayState { .. } => "stray-state",
            McViolation::NotPrefix { .. } => "not-prefix",
            McViolation::ViewDivergence { .. } => "view-divergence",
            McViolation::NotIdempotent { .. } => "not-idempotent",
            McViolation::RecoveryRefused { .. } => "recovery-refused",
            McViolation::GlobalSplit { .. } => "global-split",
            McViolation::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for McViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McViolation::DurabilityLost { txn } => {
                write!(f, "acknowledged commit of txn {txn} lost after recovery")
            }
            McViolation::Resurrection { txn } => {
                write!(f, "aborted/never-committed txn {txn} present after recovery")
            }
            McViolation::StrayState { object, state } => {
                write!(f, "object {object} recovered to undecodable state {state:#x}")
            }
            McViolation::NotPrefix { flush, survived } => {
                write!(f, "torn batch {flush:?} survived as non-prefix {survived:?}")
            }
            McViolation::ViewDivergence { detail } => write!(f, "replay views diverge: {detail}"),
            McViolation::NotIdempotent { detail } => {
                write!(f, "recovery not idempotent: {detail}")
            }
            McViolation::RecoveryRefused { detail } => write!(f, "recovery refused: {detail}"),
            McViolation::GlobalSplit { txn, committed_on, aborted_on } => write!(
                f,
                "global txn {txn} split: committed on {committed_on:?}, aborted on {aborted_on:?}"
            ),
            McViolation::Internal { detail } => write!(f, "harness internal error: {detail}"),
        }
    }
}

/// Result of applying one action to the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Applied {
    /// The action took effect; exploration continues below it.
    Ok,
    /// The action is inapplicable in this state (e.g. the stable image
    /// cannot be torn that way) — the branch is dead, not a violation.
    Skip,
    /// An invariant broke.
    Violation(McViolation),
}

/// Backend plug for the harness: construction plus the backend-specific
/// sabotage hooks mutations need.
pub trait McBackend: LogBackend<BankAccount> {
    /// A fresh, empty backend.
    fn fresh() -> Self;
    /// Which [`McBackendKind`] this is.
    fn kind() -> McBackendKind;
    /// Arm the skip-epoch-bump sabotage, if this backend has epochs.
    /// Returns whether the sabotage exists here.
    fn sabotage_skip_epoch_bump(&mut self) -> bool {
        false
    }
}

impl McBackend for MemBackend<BankAccount> {
    fn fresh() -> Self {
        MemBackend::new()
    }

    fn kind() -> McBackendKind {
        McBackendKind::Mem
    }
}

impl McBackend for WalBackend<BankAccount> {
    fn fresh() -> Self {
        WalBackend::new(WalConfig::default())
    }

    fn kind() -> McBackendKind {
        McBackendKind::Disk
    }

    fn sabotage_skip_epoch_bump(&mut self) -> bool {
        self.set_skip_epoch_bump(true);
        true
    }
}

/// Where each logical transaction stands, from the *client's* point of view
/// (acks received, aborts issued) — the reference the invariants compare
/// recovered physical state against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Not begun.
    Fresh,
    /// Begun, deposit executed, volatile.
    Active,
    /// Group mode: volatile-committed intent, awaiting the batch flush.
    Staged,
    /// Commit acknowledged — must be durable from now on.
    Committed,
    /// Aborted — must never be durable.
    Aborted,
    /// Was volatile (active/staged) when a crash hit — must not be durable.
    Lost,
    /// Was acknowledged, but the acknowledging flush was torn/reordered by
    /// the crash: legally present or absent, subject to the batch-prefix
    /// rule. Resolved to `Committed`/`Lost` by the first recovery check.
    Undecided,
}

type Sys<B> = DurableSystem<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>, B>;

/// The cloneable bookkeeping half of a harness snapshot.
#[derive(Clone)]
struct Book {
    phase: Vec<Phase>,
    handles: Vec<Option<ccr_core::ids::TxnId>>,
    /// Logical index → the (object, op) it executed, for forged records.
    ops: Vec<Option<(ObjectId, Op<BankAccount>)>>,
    staged: Vec<usize>,
    acked: Vec<usize>,
    /// Transactions acknowledged by the most recent *physical* append, in
    /// commit order — the candidates a torn/reordered crash may legally
    /// lose (as a suffix).
    last_flush: Vec<usize>,
    crash_left: u32,
    ckpt_left: u32,
    mutated: bool,
}

/// A full harness snapshot (system + bookkeeping), restorable any number of
/// times — the explorer's fork point.
pub struct HarnessSnapshot<B: McBackend> {
    sys: SystemSnapshot<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>, B>,
    book: Book,
}

/// One instance under test: the real durable system plus the client-side
/// ledger the invariants check against.
pub struct Harness<B: McBackend> {
    cfg: McConfig,
    adt: BankAccount,
    sys: Sys<B>,
    book: Book,
}

impl<B: McBackend> Harness<B> {
    /// Build a fresh instance per `cfg` (applying construction-time
    /// mutations such as [`Mutation::SkipEpochBump`]).
    pub fn new(cfg: McConfig) -> Self {
        let adt = BankAccount::default();
        let mut backend = B::fresh();
        if cfg.mutation == Some(Mutation::SkipEpochBump) {
            backend.sabotage_skip_epoch_bump();
        }
        let sys = DurableSystem::with_backend(adt.clone(), cfg.objects, bank_nrbc(), backend);
        Harness {
            cfg,
            adt,
            sys,
            book: Book {
                phase: vec![Phase::Fresh; cfg.txns],
                handles: vec![None; cfg.txns],
                ops: vec![None; cfg.txns],
                staged: Vec::new(),
                acked: Vec::new(),
                last_flush: Vec::new(),
                crash_left: cfg.crash_budget,
                ckpt_left: cfg.ckpt_budget,
                mutated: false,
            },
        }
    }

    /// The instance configuration.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    fn obj_of(&self, i: usize) -> ObjectId {
        ObjectId(i as u32 % self.cfg.objects)
    }

    fn amount_of(i: usize) -> u64 {
        1u64 << i
    }

    /// Snapshot system + bookkeeping.
    pub fn snapshot(&self) -> HarnessSnapshot<B> {
        HarnessSnapshot { sys: self.sys.snapshot(), book: self.book.clone() }
    }

    /// Rewind to a snapshot (non-consuming).
    pub fn restore(&mut self, snap: &HarnessSnapshot<B>) {
        self.sys.restore(&snap.sys);
        self.book = snap.book.clone();
    }

    /// Exact canonical encoding of everything that can influence future
    /// behavior or invariant outcomes. Two states with equal keys have
    /// identical subtrees, so the explorer prunes the second — the encoding
    /// is the full state (phases, ledgers, budgets, counters, and the
    /// backend's physical image fingerprint), not a lossy hash of it.
    pub fn canonical_key(&mut self) -> Vec<u8> {
        let mut k = Vec::with_capacity(64);
        for p in &self.book.phase {
            k.push(*p as u8);
        }
        k.push(0xfe);
        k.extend((self.book.staged.len() as u32).to_le_bytes());
        for &i in &self.book.staged {
            k.push(i as u8);
        }
        k.extend((self.book.acked.len() as u32).to_le_bytes());
        for &i in &self.book.acked {
            k.push(i as u8);
        }
        k.extend((self.book.last_flush.len() as u32).to_le_bytes());
        for &i in &self.book.last_flush {
            k.push(i as u8);
        }
        k.extend(self.book.crash_left.to_le_bytes());
        k.extend(self.book.ckpt_left.to_le_bytes());
        k.push(self.book.mutated as u8);
        k.push(match self.sys.mode() {
            SystemMode::Normal => 0,
            SystemMode::Degraded => 1,
        });
        k.extend(self.sys.journal().base_records().to_le_bytes());
        k.extend((self.sys.journal().records().len() as u64).to_le_bytes());
        k.extend(self.sys.system().next_txn_id().to_le_bytes());
        k.extend(self.sys.exec_seq().to_le_bytes());
        k.extend(self.sys.backend().image_fingerprint().to_le_bytes());
        for o in 0..self.cfg.objects {
            k.extend(self.sys.committed_state(ObjectId(o)).to_le_bytes());
        }
        k
    }

    /// The actions enabled in the current state, in deterministic order.
    /// (Some listed actions may still [`Applied::Skip`] on application —
    /// e.g. a tear the image cannot express; listing is conservative.)
    pub fn enabled_actions(&mut self) -> Vec<McAction> {
        let mut out = Vec::new();
        for i in 0..self.cfg.txns {
            if self.book.phase[i] == Phase::Fresh {
                out.push(McAction::Begin(i));
            }
        }
        for i in 0..self.cfg.txns {
            if self.book.phase[i] == Phase::Active {
                out.push(McAction::Commit(i));
                out.push(McAction::Abort(i));
            }
        }
        if self.cfg.group_commit && !self.book.staged.is_empty() {
            out.push(McAction::Flush);
        }
        if self.book.ckpt_left > 0 && !self.sys.journal().records().is_empty() {
            out.push(McAction::Checkpoint);
        }
        if self.book.crash_left > 0 {
            out.push(McAction::CrashClean);
            if !self.book.last_flush.is_empty() {
                for n in 1..=self.cfg.max_tears {
                    out.push(McAction::CrashTorn(n));
                }
                out.push(McAction::CrashReorder);
            }
            if B::kind() == McBackendKind::Disk {
                if let Some(n) = self.sys.probe_recovery_ops(TornPolicy::DiscardTail) {
                    for d in 0..n {
                        out.push(McAction::CrashInRecovery(d));
                    }
                }
            }
        }
        out
    }

    /// Apply one action (with mutation sabotage where configured), running
    /// the full invariant battery after any action that recovers.
    pub fn apply(&mut self, action: McAction) -> Applied {
        match action {
            McAction::Begin(i) => self.do_begin(i),
            McAction::Commit(i) => self.do_commit(i),
            McAction::Abort(i) => self.do_abort(i),
            McAction::Flush => self.do_flush(),
            McAction::Checkpoint => self.do_checkpoint(),
            McAction::CrashClean => self.do_crash(CrashShape::Clean),
            McAction::CrashTorn(n) => self.do_crash(CrashShape::Torn(n)),
            McAction::CrashReorder => self.do_crash(CrashShape::Reorder),
            McAction::CrashInRecovery(d) => self.do_crash(CrashShape::InRecovery(d)),
            // 2PC actions exist only in the sharded instance
            // (`shard_harness`); here they are dead branches, not errors —
            // a shrunk sharded trace replayed against `--shards 1` must
            // not panic.
            McAction::Prepare(_)
            | McAction::DecideCommit(_)
            | McAction::CrashShards(_)
            | McAction::CrashCoordinator => Applied::Skip,
        }
    }

    fn do_begin(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != Phase::Fresh {
            return Applied::Skip;
        }
        let t = self.sys.begin();
        let obj = self.obj_of(i);
        let inv = BankInv::Deposit(Self::amount_of(i));
        match self.sys.invoke(t, obj, inv.clone()) {
            Ok(resp) => {
                debug_assert_eq!(resp, BankResp::Ok);
                self.book.phase[i] = Phase::Active;
                self.book.handles[i] = Some(t);
                self.book.ops[i] = Some((obj, Op::new(inv, resp)));
                Applied::Ok
            }
            Err(e) => Applied::Violation(McViolation::Internal {
                detail: format!("deposit of txn {i} refused: {e:?}"),
            }),
        }
    }

    fn do_commit(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != Phase::Active {
            return Applied::Skip;
        }
        if self.cfg.group_commit {
            self.book.phase[i] = Phase::Staged;
            self.book.staged.push(i);
            return Applied::Ok;
        }
        let t = self.book.handles[i].expect("active txn has a handle");
        match self.sys.commit(t) {
            Ok(()) => {
                self.book.phase[i] = Phase::Committed;
                self.book.acked.push(i);
                self.book.last_flush = vec![i];
                if self.cfg.mutation == Some(Mutation::DropAckedCommit) && !self.book.mutated {
                    // Sabotage: the ack stands, the bytes don't.
                    self.book.mutated = self.sys.tear_last_flush(1);
                }
                Applied::Ok
            }
            Err(e) => Applied::Violation(McViolation::Internal {
                detail: format!("commit of txn {i} refused: {e:?}"),
            }),
        }
    }

    fn do_abort(&mut self, i: usize) -> Applied {
        if i >= self.cfg.txns || self.book.phase[i] != Phase::Active {
            return Applied::Skip;
        }
        let t = self.book.handles[i].expect("active txn has a handle");
        if let Err(e) = self.sys.abort(t) {
            return Applied::Violation(McViolation::Internal {
                detail: format!("abort of txn {i} refused: {e:?}"),
            });
        }
        self.book.phase[i] = Phase::Aborted;
        if self.cfg.mutation == Some(Mutation::ResurrectAborted) && !self.book.mutated {
            // Sabotage: forge a commit record for the aborted transaction.
            let (obj, op) = self.book.ops[i].clone().expect("begun txn recorded its op");
            let rec = CommitRecord {
                floor: self.sys.system().next_txn_id(),
                ops: vec![(1_000 + i as u64, obj, op)],
            };
            self.book.mutated = self.sys.backend_mut().append_commit(&rec).is_ok();
        }
        Applied::Ok
    }

    fn do_flush(&mut self) -> Applied {
        if !self.cfg.group_commit || self.book.staged.is_empty() {
            return Applied::Skip;
        }
        let staged = std::mem::take(&mut self.book.staged);
        let handles: Vec<_> = staged
            .iter()
            .map(|&i| self.book.handles[i].expect("staged txn has a handle"))
            .collect();
        let results = self.sys.commit_group(&handles);
        for (&i, r) in staged.iter().zip(&results) {
            match r {
                Ok(()) => {
                    self.book.phase[i] = Phase::Committed;
                    self.book.acked.push(i);
                }
                Err(e) => {
                    return Applied::Violation(McViolation::Internal {
                        detail: format!("group commit of txn {i} refused: {e:?}"),
                    });
                }
            }
        }
        self.book.last_flush = staged;
        if self.cfg.mutation == Some(Mutation::ReorderLastBatch) && !self.book.mutated {
            // Sabotage: the batch ack stands; its first sector doesn't.
            self.book.mutated = self.sys.reorder_last_flush();
        }
        Applied::Ok
    }

    fn do_checkpoint(&mut self) -> Applied {
        if self.book.ckpt_left == 0 || self.sys.journal().records().is_empty() {
            return Applied::Skip;
        }
        self.book.ckpt_left -= 1;
        self.sys.checkpoint();
        if self.sys.mode() != SystemMode::Normal {
            return Applied::Violation(McViolation::Internal {
                detail: "checkpoint degraded a fault-free device".to_string(),
            });
        }
        // The checkpoint image is now the last physical append; tearing it
        // must never lose an acked commit (old XOR new image both fold the
        // same states), so nothing is legally undecided any more.
        self.book.last_flush.clear();
        Applied::Ok
    }

    fn do_crash(&mut self, shape: CrashShape) -> Applied {
        if self.book.crash_left == 0 {
            return Applied::Skip;
        }
        // Tearing applies to the last *commit* flush only (after a
        // checkpoint or a recovery the tail is metadata whose loss must be
        // survivable — but those branches are covered by the clean crash).
        let mut undecided: Vec<usize> = Vec::new();
        match shape {
            CrashShape::Clean | CrashShape::InRecovery(_) => {}
            CrashShape::Torn(n) => {
                if self.book.last_flush.is_empty() || !self.sys.tear_last_flush(n) {
                    return Applied::Skip;
                }
                undecided = self.book.last_flush.clone();
            }
            CrashShape::Reorder => {
                if self.book.last_flush.is_empty() || !self.sys.reorder_last_flush() {
                    return Applied::Skip;
                }
                undecided = self.book.last_flush.clone();
            }
        }
        self.book.crash_left -= 1;
        // Volatile state dies with the power: active and staged
        // transactions are lost; undecided acks may go either way.
        for i in 0..self.cfg.txns {
            match self.book.phase[i] {
                Phase::Active | Phase::Staged => self.book.phase[i] = Phase::Lost,
                _ => {}
            }
        }
        for &i in &undecided {
            self.book.phase[i] = Phase::Undecided;
        }
        self.book.staged.clear();
        self.book.handles = vec![None; self.cfg.txns];
        self.book.last_flush.clear();
        let recovered = match shape {
            CrashShape::InRecovery(d) => {
                self.sys.crash_recover_interrupted(TornPolicy::DiscardTail, d).map(|_armed| ())
            }
            _ => self.sys.crash_and_recover_with(TornPolicy::DiscardTail),
        };
        if let Err(e) = recovered {
            return Applied::Violation(McViolation::RecoveryRefused { detail: format!("{e:?}") });
        }
        match self.check_after_recovery(&undecided) {
            Some(v) => Applied::Violation(v),
            None => Applied::Ok,
        }
    }

    /// The invariant battery, run after every completed recovery. Resolves
    /// `Undecided` phases to what recovery durably decided.
    fn check_after_recovery(&mut self, undecided: &[usize]) -> Option<McViolation> {
        if self.sys.mode() != SystemMode::Normal {
            return Some(McViolation::RecoveryRefused {
                detail: "system degraded after a fault-free recovery".to_string(),
            });
        }
        // 1. Decode every object's recovered state and check membership.
        let states: Vec<u64> =
            (0..self.cfg.objects).map(|o| self.sys.committed_state(ObjectId(o))).collect();
        for (o, &s) in states.iter().enumerate() {
            let mask: u64 = (0..self.cfg.txns)
                .filter(|&i| self.obj_of(i) == ObjectId(o as u32))
                .map(Self::amount_of)
                .sum();
            if s & !mask != 0 {
                return Some(McViolation::StrayState { object: o as u32, state: s });
            }
        }
        let objects = self.cfg.objects as usize;
        let present = move |i: usize, states: &[u64]| -> bool {
            states[i % objects] & Self::amount_of(i) != 0
        };
        for i in 0..self.cfg.txns {
            let here = present(i, &states);
            match self.book.phase[i] {
                Phase::Committed if !here => {
                    return Some(McViolation::DurabilityLost { txn: i });
                }
                Phase::Aborted | Phase::Lost | Phase::Fresh if here => {
                    return Some(McViolation::Resurrection { txn: i });
                }
                _ => {}
            }
        }
        // 2. Torn-batch survivors must be a prefix of the batch.
        if !undecided.is_empty() {
            let survived: Vec<usize> =
                undecided.iter().copied().filter(|&i| present(i, &states)).collect();
            let prefix: Vec<usize> = undecided[..survived.len()].to_vec();
            if survived != prefix {
                return Some(McViolation::NotPrefix { flush: undecided.to_vec(), survived });
            }
            // Resolve: recovery durably decided (the epoch bump fences the
            // discarded tail), so from here the survivors are committed and
            // the rest are gone for good.
            for &i in undecided {
                self.book.phase[i] =
                    if present(i, &states) { Phase::Committed } else { Phase::Lost };
            }
        }
        // 3. The paper's two replay views agree with each other and with
        //    the rebuilt system.
        if let Some(v) = self.check_views(&states) {
            return Some(v);
        }
        // 4. Convergence: PR 5's checked probe — recovery from this image
        //    must converge and durably seal itself (the epoch bump). Run on
        //    a clone so the explored state is untouched.
        let mut probe = self.sys.backend().clone();
        if let Err(e) = probe.check_recovery_convergence(TailPolicy::DiscardTail) {
            return Some(McViolation::NotIdempotent {
                detail: format!("convergence probe refused: {}", e.reason),
            });
        }
        // 5. Idempotence: a second recovery from the same image changes
        //    nothing. Probed on a snapshot so the explored state is intact.
        let snap = self.snapshot();
        let again = self.sys.crash_and_recover_with(TornPolicy::DiscardTail);
        let verdict = match again {
            Err(e) => Some(McViolation::NotIdempotent {
                detail: format!("second recovery refused: {e:?}"),
            }),
            Ok(()) => {
                let reread: Vec<u64> =
                    (0..self.cfg.objects).map(|o| self.sys.committed_state(ObjectId(o))).collect();
                if reread != states {
                    Some(McViolation::NotIdempotent {
                        detail: format!("states {states:?} became {reread:?}"),
                    })
                } else {
                    None
                }
            }
        };
        self.restore(&snap);
        verdict
    }

    /// Fold the durable log both ways (UIP execution order, DU commit
    /// order) and require both folds to exist, agree, and match the
    /// system's served states.
    fn check_views(&mut self, states: &[u64]) -> Option<McViolation> {
        let mut probe = self.sys.backend().clone();
        probe.crash();
        let log = match probe.recover(TailPolicy::DiscardTail) {
            Ok(log) => log,
            Err(e) => {
                return Some(McViolation::ViewDivergence {
                    detail: format!("view probe scan failed: {e:?}"),
                });
            }
        };
        let mut base: BTreeMap<ObjectId, u64> =
            (0..self.cfg.objects).map(|o| (ObjectId(o), 0u64)).collect();
        if let Some(cp) = &log.checkpoint {
            for (obj, s) in &cp.states {
                base.insert(*obj, *s);
            }
        }
        let uip = replay_uip(&self.adt, &base, &log.records);
        let du = replay_du(&self.adt, &base, &log.records);
        let (uip, du) = match (uip, du) {
            (Some(u), Some(d)) => (u, d),
            (u, d) => {
                return Some(McViolation::ViewDivergence {
                    detail: format!("replay fold failed: uip={} du={}", u.is_some(), d.is_some()),
                });
            }
        };
        if uip != du {
            return Some(McViolation::ViewDivergence { detail: format!("uip={uip:?} du={du:?}") });
        }
        for (o, &s) in states.iter().enumerate() {
            let folded = uip.get(&ObjectId(o as u32)).copied().unwrap_or(0);
            if folded != s {
                return Some(McViolation::ViewDivergence {
                    detail: format!("object {o}: system serves {s:#x}, folds give {folded:#x}"),
                });
            }
        }
        None
    }

    /// Whether every transaction reached a terminal phase and nothing is
    /// staged — the explorer's terminal-state predicate (crash/checkpoint
    /// budgets may remain; those branches are still enumerated above).
    pub fn all_resolved(&self) -> bool {
        self.book.staged.is_empty()
            && self.book.phase.iter().all(|p| {
                matches!(p, Phase::Committed | Phase::Aborted | Phase::Lost | Phase::Undecided)
            })
    }
}

#[derive(Clone, Copy, Debug)]
enum CrashShape {
    Clean,
    Torn(usize),
    Reorder,
    InRecovery(u64),
}
