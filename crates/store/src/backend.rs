//! The [`LogBackend`] abstraction: what the durable runtime needs from a
//! log, and the fast in-memory implementation.
//!
//! `DurableSystem` (in `ccr-runtime`) journals one [`CommitRecord`] per
//! committed transaction and periodically folds the log into a
//! [`CheckpointImage`]. After a crash it calls [`LogBackend::recover`] and
//! replays the surviving records. Two implementations exist:
//!
//! - [`MemBackend`]: a `Vec` of records. The struct itself plays the role of
//!   stable memory (crash is a no-op on it), and torn writes are modeled at
//!   *operation* granularity — the semantics the original in-memory journal
//!   had, preserved so the fast test suite keeps its exact failure shapes.
//! - [`crate::WalBackend`]: the real thing — a segmented CRC'd write-ahead
//!   log on a [`crate::SimDisk`], with sector-granularity fault injection.
//!
//! The recovery *views* of the paper live here too, as pure functions:
//! [`replay_uip`] folds operations in execution order (update-in-place redo);
//! [`replay_du`] folds whole intentions lists in commit order (deferred
//! update). For a dynamically atomic history the two folds agree — that
//! equality is the fifth leg of the simulator's oracle.

use std::collections::BTreeMap;

use ccr_core::adt::{Adt, Op};
use ccr_core::ids::ObjectId;

use crate::disk::DiskError;

/// Bounded retry with deterministic logical-clock backoff for transient
/// device errors. Attempt `i` (0-based) sleeps `backoff_base << i` logical
/// ticks before retrying, capped at [`RetryPolicy::BACKOFF_CAP`]; after
/// `attempts` failures the error surfaces to the caller (who degrades to
/// read-only rather than panicking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub attempts: u32,
    /// Base backoff in logical ticks; doubles per attempt.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, backoff_base: 2 }
    }
}

impl RetryPolicy {
    /// Cap on a single backoff sleep, in logical ticks.
    pub const BACKOFF_CAP: u64 = 1 << 16;

    /// Backoff before retry `attempt` (0-based), in logical ticks.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base.checked_shl(attempt.min(17)).unwrap_or(u64::MAX).min(Self::BACKOFF_CAP)
    }
}

/// One retried device operation, as recorded by the backend and drained by
/// the runtime into observability events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryRecord {
    /// Retries performed (at least 1 — unretried ops are not recorded).
    pub attempts: u32,
    /// Total logical backoff ticks spent.
    pub backoff: u64,
    /// Whether the op eventually succeeded.
    pub ok: bool,
}

/// Result of a successful recovery-convergence probe: how many nested-crash
/// trials ran and how many device ops the baseline recovery consumed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Nested-crash trials executed (one per device-op index, plus retries).
    pub trials: u64,
    /// Device ops the baseline recovery consumed (= crash injection points).
    pub device_ops: u64,
}

/// A recovery-convergence violation: some nested-crash trial eventually
/// recovered to a state that differs from the baseline recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceFailure {
    /// Device-op index at which the nested crash was injected.
    pub trial: u64,
    /// What diverged (fingerprint, floors, stats) or why the trial could
    /// not complete.
    pub reason: String,
}

impl std::fmt::Display for ConvergenceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recovery diverged at nested crash op {}: {}", self.trial, self.reason)
    }
}

/// One committed transaction as journaled: the transaction-id floor at
/// commit time plus the committed operations, each stamped with its global
/// execution sequence number (`exec_seq`) so UIP replay can restore
/// execution order across transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord<A: Adt> {
    /// `next_txn_id` immediately after this commit — recovery restores the
    /// id floor from the last surviving record (satellite: the floor must
    /// come from the log, not from process memory).
    pub floor: u32,
    /// `(exec_seq, object, operation)` in intention-list (per-transaction
    /// program) order.
    pub ops: Vec<(u64, ObjectId, Op<A>)>,
}

/// A checkpoint: the folded committed state of every object, plus the
/// counters a restart must not lose. Records before the checkpoint can be
/// truncated once it is durable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointImage<A: Adt> {
    /// How many commit records the checkpoint folds (monotone across the
    /// log's life, never reset by truncation).
    pub base_records: u64,
    /// Transaction-id floor at checkpoint time.
    pub txn_floor: u32,
    /// Global execution sequence floor at checkpoint time.
    pub next_exec_seq: u64,
    /// Committed state per object, sorted by object id.
    pub states: Vec<(ObjectId, A::State)>,
}

/// Durable counters a real restart reads back from the log (satellite:
/// `SystemStats` continuity across crashes must come from storage, not from
/// the fiction of surviving process memory).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Successful recoveries.
    pub recoveries: u64,
    /// Torn writes *detected* by recovery scans (frames extending into
    /// lost sectors; op-granularity tears for the mem backend).
    pub sector_tears: u64,
    /// Reordered flushes detected (a hole where a frame should start, with
    /// surviving data after it).
    pub reordered_flushes: u64,
    /// CRC mismatches detected on structurally complete frames.
    pub bitflips_detected: u64,
}

impl StoreStats {
    pub fn add(&mut self, other: &StoreStats) {
        self.checkpoints += other.checkpoints;
        self.recoveries += other.recoveries;
        self.sector_tears += other.sector_tears;
        self.reordered_flushes += other.reordered_flushes;
        self.bitflips_detected += other.bitflips_detected;
    }
}

/// One damage site found by a recovery scan, with the physical evidence
/// that classified it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detection {
    /// A frame extends into sectors that are absent or zero — the write was
    /// torn mid-frame.
    TornFrame { sector: u64 },
    /// A frame position holds no data but later sectors of the same segment
    /// do — the flush persisted out of order.
    MissingData { sector: u64 },
    /// A structurally complete frame whose CRC does not match — bit rot.
    CrcMismatch { sector: u64 },
    /// A valid frame found *after* a damage point — interior corruption,
    /// never recoverable by tail discard.
    InteriorFrame { sector: u64 },
}

impl Detection {
    pub fn sector(&self) -> u64 {
        match *self {
            Detection::TornFrame { sector }
            | Detection::MissingData { sector }
            | Detection::CrcMismatch { sector }
            | Detection::InteriorFrame { sector } => sector,
        }
    }
}

/// What a recovery scan saw, whether or not it succeeded. Carried on both
/// [`RecoveredLog`] and [`StoreFailure`] so the runtime can emit
/// observability events for every scan.
///
/// The `*_ops` fields split the scan's checked device operations across the
/// three recovery stages — walking the frames (*scan*), probing beyond a
/// damage site (*classify*), and mutating the image back to health
/// (*repair*: tail deletion, batch-header rewrites, the sealing header
/// fsync). They tile the attempt's device-op total exactly, which is what
/// the profiler's phase-coverage check leans on. The `*_ns` fields carry
/// wall time for the same stages; wall time is inherently nondeterministic,
/// so equality ([`PartialEq`]) deliberately ignores it — two scans of the
/// same image compare equal whatever the clock did.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// Log segments visited.
    pub segments: u64,
    /// Valid frames decoded.
    pub frames: u64,
    /// Durable sectors examined.
    pub sectors: u64,
    /// Damage sites, in scan order.
    pub detections: Vec<Detection>,
    /// Human-readable damage classification (`"clean"`, `"torn-tail"`,
    /// `"interior"`, ...).
    pub damage: &'static str,
    /// Checked device ops spent walking segment headers and frames.
    pub scan_ops: u64,
    /// Checked device ops spent probing beyond a damage site.
    pub classify_ops: u64,
    /// Checked device ops spent repairing the image (tail discard, batch
    /// rewrite, sealing header write).
    pub repair_ops: u64,
    /// Wall nanoseconds of the scan stage (not compared; see above).
    pub scan_ns: u64,
    /// Wall nanoseconds of the classify stage (not compared).
    pub classify_ns: u64,
    /// Wall nanoseconds of the repair stage (not compared).
    pub repair_ns: u64,
}

impl PartialEq for ScanReport {
    fn eq(&self, other: &Self) -> bool {
        self.segments == other.segments
            && self.frames == other.frames
            && self.sectors == other.sectors
            && self.detections == other.detections
            && self.damage == other.damage
            && self.scan_ops == other.scan_ops
            && self.classify_ops == other.classify_ops
            && self.repair_ops == other.repair_ops
    }
}

impl Eq for ScanReport {}

/// The log contents reconstructed by a successful recovery.
#[derive(Clone, Debug)]
pub struct RecoveredLog<A: Adt> {
    /// The newest valid checkpoint, if any survived.
    pub checkpoint: Option<CheckpointImage<A>>,
    /// Commit records after the checkpoint, in commit order. A 2PC prepare
    /// whose commit decision is durable folds into this list *at the decide
    /// position* — replay order is decision order.
    pub records: Vec<CommitRecord<A>>,
    /// Prepared transactions with no durable decision, by global txn id:
    /// in doubt. The caller resolves each against the coordinator's log, or
    /// presumes abort when the coordinator has no commit record. Sorted by
    /// gtid.
    pub in_doubt: Vec<(u64, CommitRecord<A>)>,
    /// Every durable 2PC decision in append order (`true` = commit). This
    /// log is what a *coordinator* reads back after its own crash to answer
    /// participants' in-doubt queries.
    pub decisions: Vec<(u64, bool)>,
    /// Transaction-id floor to resume from.
    pub txn_floor: u32,
    /// Execution-sequence floor to resume from.
    pub next_exec_seq: u64,
    /// Durable counters, read back from the log and updated with this
    /// scan's detections.
    pub stats: StoreStats,
    /// Physical evidence from the scan.
    pub scan: ScanReport,
}

/// Why recovery refused to produce a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreFailure {
    pub report: ScanReport,
    pub kind: StoreFailureKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFailureKind {
    /// The log tail is torn and the policy is [`TailPolicy::Strict`].
    /// For the WAL the units are sectors; for the mem backend, operations —
    /// matching the granularity at which the tear happened.
    Torn { record: usize, expected: usize, found: usize },
    /// Corruption that no tail policy may discard: interior damage, a CRC
    /// mismatch, or a missing checkpoint after truncation.
    Corrupt { sector: u64 },
    /// The device itself failed mid-operation and the retry budget could
    /// not mask it. `Crashed` means the crash-at-op trigger tripped — the
    /// caller should acknowledge the power loss ([`LogBackend::crash`]) and
    /// recover again; `Transient`/`Full` mean the retry budget is exhausted
    /// or the device is out of space — the caller should degrade to
    /// read-only.
    Device(DiskError),
}

impl StoreFailure {
    /// A pure device failure: no scan evidence, just the I/O error.
    pub fn device(err: DiskError) -> Self {
        StoreFailure {
            report: ScanReport { damage: "device", ..ScanReport::default() },
            kind: StoreFailureKind::Device(err),
        }
    }
}

/// What recovery may do with a damaged log tail. Mirrors the runtime's
/// `TornPolicy` (the store crate sits below the runtime and cannot name it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TailPolicy {
    /// Refuse to recover from any damage.
    #[default]
    Strict,
    /// Discard a damaged tail (committed-but-torn suffix is legitimately
    /// lost); still refuse interior corruption.
    DiscardTail,
}

/// A durable journal for one `DurableSystem`.
///
/// The backend is also the storage-fault injection point: `tear_last_flush`
/// / `reorder_last_flush` / `flip_bit` damage the stable image the way a
/// hostile device would, and return `false` when the image cannot express
/// that fault (the simulator then degrades the fault to a plain crash).
///
/// `Clone` is the snapshot hook: a clone duplicates the complete backend —
/// stable image, write cache, armed faults, counters — so the model
/// checker's explorer can fork a state, drive one branch, and restore the
/// other byte-for-byte. Both implementations are plain data, so cloning is
/// exact by construction.
///
/// `StoreFailure` carries the full [`ScanReport`] (including the profiler's
/// stage counters), which puts the `Err` variant over clippy's size
/// threshold. Failures are rare and terminal on these paths, so the move
/// cost of a fat `Err` never shows up on the hot path; boxing would only
/// complicate every caller.
#[allow(clippy::result_large_err)]
pub trait LogBackend<A: Adt>: Send + Clone {
    /// Durably append one commit record (write + fsync). On `Err` the
    /// record is *not* durable and nothing earlier was lost — the caller
    /// may retry after healing, or degrade to read-only.
    fn append_commit(&mut self, rec: &CommitRecord<A>) -> Result<(), StoreFailure>;

    /// Durably append a *group* of commit records — the group-commit flush.
    /// The contract is all-or-prefix: after a crash, recovery may keep any
    /// prefix of `recs` in commit order, but once this call returns `Ok`
    /// the whole group is durable; on `Err` none of the group is durable.
    /// The default flushes one record at a time (correct, unamortised);
    /// [`crate::WalBackend`] overrides it with batch framing and a single
    /// fsync for the whole group.
    fn append_commits(&mut self, recs: &[CommitRecord<A>]) -> Result<(), StoreFailure> {
        for rec in recs {
            self.append_commit(rec)?;
        }
        Ok(())
    }

    /// Durably journal a 2PC PREPARE for global transaction `gtid`: the
    /// participant's full commit record, written *before* the vote. On `Ok`
    /// the transaction is in doubt — recovery surfaces it in
    /// [`RecoveredLog::in_doubt`] until a decision lands. On `Err` nothing
    /// is durable and the participant must vote no (which presumed abort
    /// turns into a global abort for free).
    fn append_prepare(&mut self, gtid: u64, rec: &CommitRecord<A>) -> Result<(), StoreFailure>;

    /// Durably journal the decision for a previously prepared `gtid`
    /// (`true` = commit). Per presumed abort the abort decision is
    /// optional — a prepare with no decision resolves to abort — but
    /// journaling it lets recovery release the in-doubt transaction without
    /// asking the coordinator.
    fn append_decision(&mut self, gtid: u64, commit: bool) -> Result<(), StoreFailure>;

    /// Durably write a checkpoint and truncate what it covers. Returns the
    /// number of whole segments truncated (always 0 for the mem backend).
    /// On `Err` the old checkpoint and log remain the replay base — the
    /// checkpoint write is all-or-nothing from the caller's view.
    fn write_checkpoint(&mut self, img: &CheckpointImage<A>) -> Result<u64, StoreFailure>;

    /// Power loss: drop everything not yet durable. Idempotent.
    fn crash(&mut self);

    /// Scan and validate the stable image, classify damage, and reconstruct
    /// the surviving log contents.
    fn recover(&mut self, policy: TailPolicy) -> Result<RecoveredLog<A>, StoreFailure>;

    /// Tear the most recent durable append, dropping its last `n` units
    /// (sectors or operations). `false` if the image cannot be torn that way.
    fn tear_last_flush(&mut self, n: usize) -> bool;

    /// Lose the *first* unit of the most recent multi-sector append, as if
    /// the device reordered persistence. `false` if inexpressible.
    fn reorder_last_flush(&mut self) -> bool;

    /// Flip one stable bit (index is reduced modulo [`Self::storage_bits`]).
    /// `false` if there are no stable bits to flip.
    fn flip_bit(&mut self, bit: u64) -> bool;

    /// Undo all injected bit flips (the medium is repaired; the log bytes
    /// return to what was written). Returns the number of repairs.
    fn repair_flips(&mut self) -> usize;

    /// Install the transient-error retry policy. No-op for backends
    /// without a device.
    fn set_retry_policy(&mut self, _policy: RetryPolicy) {}

    /// Arm the next `n` device ops to fail transiently. `false` if the
    /// backend has no device to misbehave (the simulator then degrades the
    /// fault to a plain crash).
    fn arm_transient_io(&mut self, _n: u32) -> bool {
        false
    }

    /// Set or clear the device-full condition. `false` if inexpressible.
    fn set_device_full(&mut self, _on: bool) -> bool {
        false
    }

    /// Heal the device: clear the full condition and any armed transient
    /// budget (the operator swapped the disk / freed space). `false` if
    /// there is no device.
    fn heal_device(&mut self) -> bool {
        false
    }

    /// Drain the retry records accumulated since the last drain, oldest
    /// first. Backends without a device never retry.
    fn drain_retries(&mut self) -> Vec<RetryRecord> {
        Vec::new()
    }

    /// Arm the next `n` checked device ops to each cost `cost` extra
    /// logical ticks (a degraded medium — the gray-failure analogue of
    /// [`arm_transient_io`](Self::arm_transient_io)). `false` if the
    /// backend has no device to slow down (the simulator then degrades the
    /// fault to a plain crash).
    fn arm_slow_ops(&mut self, _n: u32, _cost: u64) -> bool {
        false
    }

    /// Arm the next `n` non-empty device flushes to each stall for `cost`
    /// extra logical ticks (an fsync that hangs). `false` if inexpressible.
    fn arm_fsync_stall(&mut self, _n: u32, _cost: u64) -> bool {
        false
    }

    /// Elapsed logical device time (0 for backends without a device). One
    /// tick per checked op plus whatever the armed latency channels charged.
    fn device_ticks(&self) -> u64 {
        0
    }

    /// Accumulated latency surplus charged by the gray channels (0 for
    /// backends without a device). Health detectors watch the delta of this
    /// figure across commits to tell a busy device from a lying one.
    fn stall_ticks(&self) -> u64 {
        0
    }

    /// The sixth oracle leg: prove recovery *converges*. Re-run recovery
    /// with a fresh crash injected at every device-op index of the baseline
    /// recovery; every trial that eventually succeeds must reproduce the
    /// identical recovered log (fingerprint, floors, stats). Leaves the
    /// backend recovered to the baseline state. Backends without a device
    /// trivially converge (zero trials).
    fn check_recovery_convergence(
        &mut self,
        _policy: TailPolicy,
    ) -> Result<ConvergenceReport, ConvergenceFailure> {
        Ok(ConvergenceReport::default())
    }

    /// Checked device ops performed so far (0 for backends without a
    /// device). The delta across a probed recovery is the enumeration
    /// domain for crash-at-every-op exploration.
    fn device_op_count(&self) -> u64 {
        0
    }

    /// Arm a one-shot power loss at the `n`-th checked device op from now
    /// (see `SimDisk::arm_crash_at_op`). `false` if there is no device to
    /// trip — the explorer then skips crash-during-recovery branches.
    fn arm_crash_at_op(&mut self, _n: u64) -> bool {
        false
    }

    /// A deterministic fingerprint of the *stable* image plus the cursor
    /// state that steers future appends (epoch, segment, head for the WAL;
    /// record shapes for the mem backend). Two backends with equal
    /// fingerprints behave identically under any subsequent operation
    /// sequence — the canonicalisation hook the explorer's dedup table
    /// folds in.
    fn image_fingerprint(&self) -> u64;

    /// Current durable-counter view (persisted + this process's detections).
    fn stats(&self) -> StoreStats;

    /// Total stable bits (0 for the mem backend — it has no byte image).
    fn storage_bits(&self) -> u64;

    /// Backend name for labels and reproducers (`"mem"` / `"disk"`).
    fn name(&self) -> &'static str;

    /// Offline forensic dump of the stable image as JSON (segment map,
    /// frame listing, damage classification — see [`crate::inspect`]).
    /// `None` for backends without a byte image to inspect.
    fn wal_inspection(&self) -> Option<String> {
        None
    }

    /// Cross-check the offline inspector against recovery proper: clone the
    /// backend, crash + recover the clone under `policy`, and verify the
    /// inspector's damage classification and log geometry agree with the
    /// scanner's. `None` for backends without an image; `Err` describes the
    /// first disagreement.
    fn inspection_agrees_with_recovery(&self, _policy: TailPolicy) -> Option<Result<(), String>> {
        None
    }
}

/// Fold `records` over `base` in *execution order* — the UIP view: every
/// committed operation is redone against the in-place state in the global
/// order it originally executed. `None` if some operation is not enabled
/// where replay puts it (the history was not recoverable under this view).
pub fn replay_uip<A: Adt>(
    adt: &A,
    base: &BTreeMap<ObjectId, A::State>,
    records: &[CommitRecord<A>],
) -> Option<BTreeMap<ObjectId, A::State>> {
    let mut states = base.clone();
    let mut ops: Vec<&(u64, ObjectId, Op<A>)> = records.iter().flat_map(|r| r.ops.iter()).collect();
    ops.sort_by_key(|(seq, _, _)| *seq);
    for (_, obj, op) in ops {
        let s = states.get(obj)?;
        let post = adt.apply(s, op);
        states.insert(*obj, post.into_iter().next()?);
    }
    Some(states)
}

/// Fold `records` over `base` in *commit order* — the DU view: each
/// transaction's intentions list is installed atomically when it commits,
/// in commit order, regardless of when its operations executed.
pub fn replay_du<A: Adt>(
    adt: &A,
    base: &BTreeMap<ObjectId, A::State>,
    records: &[CommitRecord<A>],
) -> Option<BTreeMap<ObjectId, A::State>> {
    let mut states = base.clone();
    for rec in records {
        for (_, obj, op) in &rec.ops {
            let s = states.get(obj)?;
            let post = adt.apply(s, op);
            states.insert(*obj, post.into_iter().next()?);
        }
    }
    Some(states)
}

/// The fast in-memory backend: the struct is the stable store.
///
/// Torn writes keep the record's original `op_count` while dropping trailing
/// operations, reproducing the op-granularity `TornRecord { record,
/// expected, found }` failure shape of the original in-memory journal.
#[derive(Clone, Debug, Default)]
pub struct MemBackend<A: Adt> {
    checkpoint: Option<CheckpointImage<A>>,
    records: Vec<StoredRecord<A>>,
    /// Prepared-but-undecided 2PC transactions, by gtid (the in-doubt set).
    prepared: BTreeMap<u64, CommitRecord<A>>,
    /// Durable 2PC decisions in append order (`true` = commit).
    decided: Vec<(u64, bool)>,
    stats: StoreStats,
    /// Whether the current torn tail has already been counted into `stats`.
    /// Repeated scans (a Strict refusal, then a DiscardTail retry) re-detect
    /// the same physical tear; one fault must count once.
    tear_counted: bool,
}

#[derive(Clone, Debug)]
struct StoredRecord<A: Adt> {
    /// Operation count at append time; survives a tear of the ops list.
    op_count: usize,
    rec: CommitRecord<A>,
}

impl<A: Adt> MemBackend<A> {
    pub fn new() -> Self {
        MemBackend {
            checkpoint: None,
            records: Vec::new(),
            prepared: BTreeMap::new(),
            decided: Vec::new(),
            stats: StoreStats::default(),
            tear_counted: false,
        }
    }

    fn floors(&self) -> (u32, u64) {
        // Transaction-id floors ride commit order, so the newest surviving
        // record wins. Exec-seq floors do NOT: a late-committing
        // transaction can hold *earlier* execution seqs than a record
        // journaled before it, so the floor is the max over every surviving
        // record (and the checkpoint) — restoring anything lower would let
        // post-recovery operations reuse seqs and sort *between* journaled
        // ops, breaking the UIP (execution-order) replay view.
        let cp_seq = self.checkpoint.as_ref().map_or(0, |c| c.next_exec_seq);
        let seq = self
            .records
            .iter()
            .map(|r| &r.rec)
            .chain(self.prepared.values())
            .flat_map(|r| r.ops.iter().map(|(s, _, _)| s + 1))
            .max()
            .unwrap_or(0)
            .max(cp_seq);
        // In-doubt prepares hold floors too: a decided commit re-enters the
        // record list at its decide position with the older prepare-time
        // floor, so the floor is the max over both sets, not "last record".
        let floor = self
            .records
            .iter()
            .map(|r| r.rec.floor)
            .chain(self.prepared.values().map(|r| r.floor))
            .max();
        if let Some(floor) = floor {
            (floor, seq)
        } else if let Some(cp) = &self.checkpoint {
            (cp.txn_floor, seq)
        } else {
            (0, seq)
        }
    }
}

impl<A: Adt> LogBackend<A> for MemBackend<A> {
    fn append_commit(&mut self, rec: &CommitRecord<A>) -> Result<(), StoreFailure> {
        self.records.push(StoredRecord { op_count: rec.ops.len(), rec: rec.clone() });
        self.tear_counted = false;
        Ok(())
    }

    fn append_prepare(&mut self, gtid: u64, rec: &CommitRecord<A>) -> Result<(), StoreFailure> {
        self.prepared.insert(gtid, rec.clone());
        self.tear_counted = false;
        Ok(())
    }

    fn append_decision(&mut self, gtid: u64, commit: bool) -> Result<(), StoreFailure> {
        self.decided.push((gtid, commit));
        if let Some(rec) = self.prepared.remove(&gtid) {
            if commit {
                // Replay order is decision order: the record enters the
                // commit list where the decision landed.
                self.records.push(StoredRecord { op_count: rec.ops.len(), rec });
            }
        }
        self.tear_counted = false;
        Ok(())
    }

    fn write_checkpoint(&mut self, img: &CheckpointImage<A>) -> Result<u64, StoreFailure> {
        self.checkpoint = Some(img.clone());
        self.records.clear();
        // The checkpoint folds every decided transaction; the decision log
        // before it is as redundant as the records it covers. (Callers
        // refuse to checkpoint while prepares are pending, so `prepared`
        // stays untouched here.)
        self.decided.clear();
        self.stats.checkpoints += 1;
        Ok(0)
    }

    fn crash(&mut self) {
        // The struct is the stable store; commit already "fsynced" by
        // returning. Nothing volatile to lose.
    }

    fn recover(&mut self, policy: TailPolicy) -> Result<RecoveredLog<A>, StoreFailure> {
        let mut report = ScanReport {
            segments: 1,
            frames: self.records.len() as u64 + self.checkpoint.is_some() as u64,
            damage: "clean",
            // No device: the per-stage op and wall counters stay zero.
            ..ScanReport::default()
        };
        if let Some(last) = self.records.last() {
            if last.rec.ops.len() < last.op_count {
                let idx = self.records.len() - 1;
                report.detections.push(Detection::TornFrame { sector: idx as u64 });
                report.damage = "torn-tail";
                if !self.tear_counted {
                    self.stats.sector_tears += 1;
                    self.tear_counted = true;
                }
                match policy {
                    TailPolicy::Strict => {
                        return Err(StoreFailure {
                            report,
                            kind: StoreFailureKind::Torn {
                                record: idx,
                                expected: last.op_count,
                                found: last.rec.ops.len(),
                            },
                        });
                    }
                    TailPolicy::DiscardTail => {
                        self.records.pop();
                        report.frames -= 1;
                        // The torn record is gone; a tear a later scan finds
                        // is a new fault.
                        self.tear_counted = false;
                    }
                }
            }
        }
        self.stats.recoveries += 1;
        let (txn_floor, next_exec_seq) = self.floors();
        Ok(RecoveredLog {
            checkpoint: self.checkpoint.clone(),
            records: self.records.iter().map(|r| r.rec.clone()).collect(),
            in_doubt: self.prepared.iter().map(|(g, r)| (*g, r.clone())).collect(),
            decisions: self.decided.clone(),
            txn_floor,
            next_exec_seq,
            stats: self.stats,
            scan: report,
        })
    }

    fn tear_last_flush(&mut self, n: usize) -> bool {
        let Some(last) = self.records.last_mut() else { return false };
        if n == 0 || last.rec.ops.is_empty() {
            return false;
        }
        let keep = last.rec.ops.len().saturating_sub(n);
        last.rec.ops.truncate(keep);
        true
    }

    fn reorder_last_flush(&mut self) -> bool {
        false
    }

    fn flip_bit(&mut self, _bit: u64) -> bool {
        false
    }

    fn repair_flips(&mut self) -> usize {
        0
    }

    fn image_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        if let Some(cp) = &self.checkpoint {
            cp.base_records.hash(&mut h);
            cp.txn_floor.hash(&mut h);
            cp.next_exec_seq.hash(&mut h);
            for (obj, state) in &cp.states {
                obj.hash(&mut h);
                state.hash(&mut h);
            }
        }
        for r in &self.records {
            r.op_count.hash(&mut h);
            r.rec.floor.hash(&mut h);
            for (seq, obj, op) in &r.rec.ops {
                seq.hash(&mut h);
                obj.hash(&mut h);
                op.inv.hash(&mut h);
                op.resp.hash(&mut h);
            }
        }
        for (gtid, rec) in &self.prepared {
            gtid.hash(&mut h);
            rec.floor.hash(&mut h);
            for (seq, obj, op) in &rec.ops {
                seq.hash(&mut h);
                obj.hash(&mut h);
                op.inv.hash(&mut h);
                op.resp.hash(&mut h);
            }
        }
        self.decided.hash(&mut h);
        h.finish()
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{BankAccount, BankInv, BankResp};

    fn dep(amount: u64) -> Op<BankAccount> {
        Op::new(BankInv::Deposit(amount), BankResp::Ok)
    }

    fn rec(floor: u32, ops: Vec<(u64, ObjectId, Op<BankAccount>)>) -> CommitRecord<BankAccount> {
        CommitRecord { floor, ops }
    }

    #[test]
    fn mem_round_trip_and_floor_from_log() {
        let mut b = MemBackend::<BankAccount>::new();
        b.append_commit(&rec(1, vec![(0, ObjectId(0), dep(5))])).unwrap();
        b.append_commit(&rec(2, vec![(1, ObjectId(0), dep(3)), (2, ObjectId(0), dep(4))])).unwrap();
        b.crash();
        let out = b.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.txn_floor, 2);
        assert_eq!(out.next_exec_seq, 3);
        assert_eq!(out.stats.recoveries, 1);
        assert_eq!(out.scan.damage, "clean");
    }

    #[test]
    fn exec_seq_floor_survives_commit_order_inversion() {
        let mut b = MemBackend::<BankAccount>::new();
        // The transaction that commits FIRST executed the *later* ops
        // (seqs 2,3); the late committer holds the earlier seqs (0,1).
        // The recovered exec-seq floor must clear both records — resuming
        // from the last record's max (2) would hand post-recovery ops the
        // seqs 2 and 3 again, and the UIP (execution-order) replay view
        // would sort the fresh ops *between* journaled ones.
        b.append_commit(&rec(1, vec![(2, ObjectId(0), dep(5)), (3, ObjectId(0), dep(4))])).unwrap();
        b.append_commit(&rec(2, vec![(0, ObjectId(0), dep(3)), (1, ObjectId(0), dep(2))])).unwrap();
        b.crash();
        let out = b.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.txn_floor, 2);
        assert_eq!(out.next_exec_seq, 4);
    }

    #[test]
    fn mem_tear_matches_the_legacy_failure_shape() {
        let mut b = MemBackend::<BankAccount>::new();
        b.append_commit(&rec(1, vec![(0, ObjectId(0), dep(5))])).unwrap();
        b.append_commit(&rec(2, vec![(1, ObjectId(0), dep(3)), (2, ObjectId(0), dep(4))])).unwrap();
        assert!(b.tear_last_flush(1));
        b.crash();
        let err = b.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.kind, StoreFailureKind::Torn { record: 1, expected: 2, found: 1 });
        assert_eq!(err.report.damage, "torn-tail");
        let out = b.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records.len(), 1);
        // One physical tear, two scans: one count.
        assert_eq!(out.stats.sector_tears, 1);
        assert_eq!(out.txn_floor, 1);
    }

    #[test]
    fn checkpoint_clears_records_and_keeps_floors() {
        let mut b = MemBackend::<BankAccount>::new();
        b.append_commit(&rec(3, vec![(0, ObjectId(0), dep(5))])).unwrap();
        b.write_checkpoint(&CheckpointImage {
            base_records: 1,
            txn_floor: 3,
            next_exec_seq: 1,
            states: vec![(ObjectId(0), 5u64)],
        })
        .unwrap();
        let out = b.recover(TailPolicy::Strict).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.checkpoint.as_ref().unwrap().states, vec![(ObjectId(0), 5)]);
        assert_eq!(out.txn_floor, 3);
        assert_eq!(out.next_exec_seq, 1);
        assert_eq!(out.stats.checkpoints, 1);
    }

    #[test]
    fn uip_and_du_replays_agree_on_serializable_logs() {
        let adt = BankAccount::default();
        let base: BTreeMap<ObjectId, u64> =
            [(ObjectId(0), 0u64), (ObjectId(1), 0u64)].into_iter().collect();
        // Two transactions with interleaved execution (seq 0..3) committing
        // in order: UIP replays by seq, DU by commit; both end at the same
        // states because deposits commute.
        let records = vec![
            rec(1, vec![(0, ObjectId(0), dep(5)), (2, ObjectId(1), dep(1))]),
            rec(2, vec![(1, ObjectId(0), dep(3)), (3, ObjectId(1), dep(2))]),
        ];
        let uip = replay_uip(&adt, &base, &records).unwrap();
        let du = replay_du(&adt, &base, &records).unwrap();
        assert_eq!(uip, du);
        assert_eq!(uip[&ObjectId(0)], 8);
        assert_eq!(uip[&ObjectId(1)], 3);
    }

    #[test]
    fn replay_refuses_an_illegal_operation() {
        let adt = BankAccount::default();
        let base: BTreeMap<ObjectId, u64> = [(ObjectId(0), 0u64)].into_iter().collect();
        let bad = rec(1, vec![(0, ObjectId(0), Op::new(BankInv::Withdraw(5), BankResp::Ok))]);
        assert!(replay_uip(&adt, &base, &[bad.clone()]).is_none());
        assert!(replay_du(&adt, &base, &[bad]).is_none());
    }
}
