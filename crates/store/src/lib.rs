//! Simulated durable storage for the recovery experiments.
//!
//! The paper's two recovery disciplines — update-in-place (UIP, Theorem 9)
//! and deferred-update (DU, Theorem 10) — differ in *which* concurrency
//! controls they make correct, but both presuppose a log that survives
//! crashes intact. This crate makes that assumption earn its keep: the log
//! is built on a virtual block device that is deterministically hostile at
//! sector granularity, and recovery must reconstruct committed state from
//! whatever physically survived.
//!
//! Layers, bottom up:
//!
//! * [`SimDisk`] ([`disk`]): a sector-addressed device with a write-back
//!   cache. Data is volatile until flushed; crashes drop the cache; armed
//!   faults tear, reorder, flip, or misdirect writes — deterministically.
//! * [`WalBackend`] ([`wal`]): a segmented write-ahead log of CRC'd,
//!   length-prefixed frames with epoch-stamped segment headers and
//!   checkpoint-based truncation, plus a recovery scanner that classifies
//!   damage (clean tail / torn tail / interior corruption).
//! * [`LogBackend`] ([`backend`]): the trait `ccr-runtime`'s
//!   `DurableSystem` journals through, with [`MemBackend`] as the fast
//!   in-memory implementation, and the pure [`replay_uip`] / [`replay_du`]
//!   folds that realise the paper's two views of a recovered log.
//! * [`Persist`] / [`crc32`] ([`codec`]): the hand-rolled byte codec (the
//!   build environment has no serde).
//!
//! The crate deliberately knows nothing about transactions-in-flight,
//! locking, or observability — it stores and recovers committed records.
//! `ccr-runtime` owns replay semantics and event emission; scan evidence
//! travels up in [`ScanReport`].

pub mod backend;
pub mod codec;
pub mod disk;
pub mod inspect;
pub mod wal;

pub use backend::{
    replay_du, replay_uip, CheckpointImage, CommitRecord, ConvergenceFailure, ConvergenceReport,
    Detection, LogBackend, MemBackend, RecoveredLog, RetryPolicy, RetryRecord, ScanReport,
    StoreFailure, StoreFailureKind, StoreStats, TailPolicy,
};
pub use codec::{crc32, Persist};
pub use disk::{DiskError, DiskImage, DiskStats, SectorRead, SimDisk};
pub use inspect::{inspect_wal, BatchRun, FrameInfo, SegmentInfo, WalInspection};
pub use wal::{
    build_frame, check_frame, decode_batch, decode_decide, decode_prepare, encode_batch,
    encode_decide, encode_prepare, BatchMeta, SegHeader, WalBackend, WalConfig,
};
