//! `SimDisk`: a deterministic virtual block device with sector-level fault
//! injection.
//!
//! The disk models the failure semantics of a real device under a
//! write-back cache:
//!
//! - Writes land in a volatile *pending* buffer; nothing is durable until
//!   [`SimDisk::flush`] (the fsync analogue) moves pending sectors to the
//!   durable map.
//! - [`SimDisk::crash`] drops the pending buffer — un-fsynced data is lost,
//!   fsynced data survives. Crash is idempotent.
//! - Faults are *armed* on the disk ahead of time and fire at the next
//!   matching operation, so the caller (the fault simulator) decides *what*
//!   happens and the disk decides *where* in the byte stream it lands:
//!   - [`SimDisk::tear_last_flush`]: retroactively shortens the most recent
//!     flush to its first `keep` sectors, modeling a torn multi-sector
//!     write that straddled the crash.
//!   - [`SimDisk::reorder_last_flush`]: retroactively drops the *first*
//!     sector of the most recent multi-sector flush while keeping the rest,
//!     modeling the device persisting queued sectors out of order before
//!     power loss.
//!   - [`SimDisk::flip_bit`]: flips one bit of durable data, modeling bit
//!     rot / medium error. Flips are journaled so tests can repair them.
//!   - [`SimDisk::arm_misdirect`]: the next pending write is redirected by a
//!     sector delta, modeling a misdirected write (firmware writes good data
//!     to the wrong LBA).
//!
//! Everything is plain `BTreeMap` state iterated in key order, so the same
//! call sequence always produces the same bytes — the determinism the
//! simulator's byte-identical-replay acceptance criterion needs.
//!
//! Besides the raw (always-succeeding) operations above, the disk exposes a
//! *checked* interface — [`SimDisk::try_read`], [`SimDisk::try_write`],
//! [`SimDisk::try_flush`], [`SimDisk::try_delete`] — that ticks a device-op
//! counter and consults three armed fault channels before touching the
//! medium:
//!
//! - [`SimDisk::arm_transient_errors`]: the next `n` checked ops fail with
//!   [`DiskError::Transient`]; a retry later may succeed (a flaky cable, a
//!   recoverable controller error).
//! - [`SimDisk::set_full`]: checked mutations fail with [`DiskError::Full`]
//!   until the device is [healed](Self::heal) (ENOSPC; reads keep working).
//! - [`SimDisk::arm_crash_at_op`]: the device *trips* after the next `n`
//!   checked ops succeed — every later op fails with [`DiskError::Crashed`]
//!   until [`crash`](Self::crash) acknowledges the power loss. This is the
//!   trigger the recovery-convergence oracle uses to kill recovery at every
//!   device-op index.
//!
//! Besides the fail-stop channels, the checked interface carries a
//! deterministic **tick-cost model** for gray failures — devices that are
//! slow rather than broken. Every checked op costs one logical tick;
//! [`SimDisk::arm_slow_ops`] makes the next `n` checked ops each cost extra
//! ticks (a degraded medium), and [`SimDisk::arm_fsync_stall`] makes the
//! next `n` non-empty flushes stall for extra ticks (an fsync that hangs).
//! The accumulated [`device_ticks`](Self::device_ticks) are the device's
//! elapsed logical time, and the stall surplus is reported separately via
//! [`stall_ticks`](Self::stall_ticks) so health detectors can tell a busy
//! device from a lying one. [`heal`](Self::heal) clears the armed latency
//! channels along with the error budgets.
//!
//! The raw operations bypass the checked channels entirely: they are the
//! omniscient view tests and repair tooling use to inspect or fix the
//! medium, and they never tick the op counter.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

/// Why a checked device operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// An armed transient fault fired: the same op may succeed on retry.
    Transient,
    /// The device is out of space: mutations fail until [`SimDisk::heal`].
    Full,
    /// The armed crash-at-op trigger fired: every checked op fails until
    /// [`SimDisk::crash`] acknowledges the power loss.
    Crashed,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Transient => write!(f, "transient I/O error"),
            DiskError::Full => write!(f, "device full"),
            DiskError::Crashed => write!(f, "device crashed mid-operation"),
        }
    }
}

/// What a classified read found at a sector address. Distinguishes a sector
/// that *was* durable until a tear/reorder destroyed it from one that was
/// never written (or was deliberately deleted) — the recovery scanner needs
/// the difference to tell a torn tail from a clean log end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectorRead<'a> {
    /// The sector holds durable bytes (never empty).
    Data(&'a [u8]),
    /// The sector was durable once but a tear or reorder destroyed it.
    Torn,
    /// No data was ever durable here (or it was deliberately deleted).
    Absent,
}

/// A copy of the durable image, for snapshot/restore replay (the
/// recovery-convergence probe re-runs recovery many times from one image).
#[derive(Clone, Debug)]
pub struct DiskImage {
    durable: BTreeMap<u64, Vec<u8>>,
    torn: BTreeSet<u64>,
}

impl DiskImage {
    /// The durable sectors, in index order — the enumeration hook the
    /// explorer's canonical-state fingerprint folds over.
    pub fn sectors(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.durable.iter().map(|(s, b)| (*s, b.as_slice()))
    }

    /// Sectors destroyed by a tear/reorder and not rewritten since.
    pub fn torn_sectors(&self) -> impl Iterator<Item = u64> + '_ {
        self.torn.iter().copied()
    }
}

/// Counters for the physical activity of one [`SimDisk`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Sectors made durable by `flush`.
    pub sectors_flushed: u64,
    /// `flush` calls that had at least one pending sector.
    pub flushes: u64,
    /// `crash` calls that discarded at least one pending sector.
    pub lossy_crashes: u64,
    /// Sectors dropped by `tear_last_flush`.
    pub torn_sectors: u64,
    /// Sectors dropped by `reorder_last_flush`.
    pub reordered_sectors: u64,
    /// Bits flipped by `flip_bit`.
    pub flipped_bits: u64,
    /// Flipped bits repaired by `unflip_all`. `flipped_bits -
    /// repaired_bits` is the flips that became unrepairable because their
    /// sector was torn or truncated away — the reconciliation the
    /// repair-then-rescan flow pins.
    pub repaired_bits: u64,
    /// Writes redirected by an armed misdirect.
    pub misdirected_writes: u64,
    /// Checked ops that failed with an armed transient error.
    pub transient_errors: u64,
    /// Extra logical ticks charged by the armed slow-op and fsync-stall
    /// channels — the latency surplus a healthy device would not have paid.
    pub stall_ticks: u64,
}

/// A deterministic simulated block device. See the module docs for the fault
/// model.
///
/// `Clone` duplicates the *entire* device — durable sectors, write cache,
/// armed faults and counters — which is what the model checker's
/// state-space explorer snapshots and restores; [`SimDisk::snapshot`] /
/// [`SimDisk::restore`] remain the narrower durable-image hooks.
#[derive(Clone, Debug)]
pub struct SimDisk {
    sector: usize,
    /// Durable sectors, by sector index. Absent means never written (reads
    /// as zeroes).
    durable: BTreeMap<u64, Vec<u8>>,
    /// Written but not yet flushed, in write order.
    pending: Vec<(u64, Vec<u8>)>,
    /// Sector indices made durable by the most recent flush, in write order.
    last_flush: Vec<u64>,
    /// Journal of applied bit flips `(sector, byte, mask)` so tests can
    /// repair the medium.
    flips: Vec<(u64, usize, u8)>,
    /// Sectors that were durable until a tear/reorder destroyed them, and
    /// have not been rewritten or deliberately deleted since.
    torn: BTreeSet<u64>,
    /// Sector delta applied to the next write, then cleared.
    misdirect: Option<i64>,
    /// Checked device ops performed (reads, writes, flushes, deletes).
    /// `Cell` because classified reads take `&self`.
    ops: Cell<u64>,
    /// Checked ops left to fail with `Transient` (armed fault budget).
    transient: Cell<u32>,
    /// Checked ops that failed with an armed transient error.
    transient_fired: Cell<u64>,
    /// Whether checked mutations fail with `Full`.
    full: Cell<bool>,
    /// Trip the device once the op counter passes this value.
    trip_at: Cell<Option<u64>>,
    /// The crash-at-op trigger fired; all checked ops fail until `crash`.
    tripped: Cell<bool>,
    /// Elapsed logical device time: one tick per checked op, plus whatever
    /// the armed latency channels charge on top.
    ticks: Cell<u64>,
    /// Checked ops left to run slow (armed gray-failure budget).
    slow_ops: Cell<u32>,
    /// Extra ticks each slow op costs.
    slow_cost: Cell<u64>,
    /// Non-empty flushes left to stall (armed gray-failure budget).
    stall_flushes: Cell<u32>,
    /// Extra ticks each stalled flush costs.
    stall_cost: Cell<u64>,
    /// Accumulated latency surplus from both gray channels.
    stalled: Cell<u64>,
    stats: DiskStats,
}

impl SimDisk {
    /// A new empty disk with the given sector size in bytes.
    pub fn new(sector: usize) -> Self {
        assert!(sector > 0, "sector size must be positive");
        SimDisk {
            sector,
            durable: BTreeMap::new(),
            pending: Vec::new(),
            last_flush: Vec::new(),
            flips: Vec::new(),
            torn: BTreeSet::new(),
            misdirect: None,
            ops: Cell::new(0),
            transient: Cell::new(0),
            transient_fired: Cell::new(0),
            full: Cell::new(false),
            trip_at: Cell::new(None),
            tripped: Cell::new(false),
            ticks: Cell::new(0),
            slow_ops: Cell::new(0),
            slow_cost: Cell::new(0),
            stall_flushes: Cell::new(0),
            stall_cost: Cell::new(0),
            stalled: Cell::new(0),
            stats: DiskStats::default(),
        }
    }

    /// Sector size in bytes.
    pub fn sector_size(&self) -> usize {
        self.sector
    }

    pub fn stats(&self) -> DiskStats {
        let mut stats = self.stats;
        stats.transient_errors = self.transient_fired.get();
        stats.stall_ticks = self.stalled.get();
        stats
    }

    /// Queue a write of `data` starting at `sector` (volatile until
    /// [`flush`](Self::flush)). `data` must be a whole number of sectors.
    pub fn write(&mut self, sector: u64, data: &[u8]) {
        assert!(
            data.len().is_multiple_of(self.sector) && !data.is_empty(),
            "writes must cover whole sectors (got {} bytes, sector {})",
            data.len(),
            self.sector
        );
        let base = match self.misdirect.take() {
            Some(delta) => {
                self.stats.misdirected_writes += 1;
                sector.wrapping_add_signed(delta)
            }
            None => sector,
        };
        for (i, chunk) in data.chunks(self.sector).enumerate() {
            self.pending.push((base + i as u64, chunk.to_vec()));
        }
    }

    /// Make all pending writes durable, in write order. Returns the number
    /// of sectors persisted.
    pub fn flush(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.last_flush.clear();
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        for (idx, bytes) in pending {
            self.durable.insert(idx, bytes);
            self.torn.remove(&idx);
            self.last_flush.push(idx);
        }
        self.stats.sectors_flushed += n as u64;
        self.stats.flushes += 1;
        n
    }

    /// Drop all un-flushed writes (power loss). Idempotent. Acknowledging
    /// the power loss also resets a tripped crash-at-op trigger — the
    /// device comes back up serving ops.
    pub fn crash(&mut self) {
        if !self.pending.is_empty() {
            self.stats.lossy_crashes += 1;
        }
        self.pending.clear();
        self.misdirect = None;
        self.trip_at.set(None);
        self.tripped.set(false);
    }

    /// Read one sector; `None` if it was never written.
    /// Reads see only durable data — the pending buffer is the device
    /// cache, and the recovery scanner runs strictly post-crash.
    pub fn read(&self, sector: u64) -> Option<&[u8]> {
        self.durable.get(&sector).map(Vec::as_slice)
    }

    /// Drop every staged-but-unflushed write without a power loss: the
    /// process discards its write cache after a failed append so the staged
    /// bytes can never leak out through a later unrelated flush. Durable
    /// data is untouched.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Read one sector with explicit damage classification: durable bytes,
    /// a sector *destroyed* by a tear/reorder, or one never written.
    /// [`read`](Self::read) collapses the last two into `None`; the scanner
    /// uses this form so a torn-away sector is never mistaken for a clean
    /// log end. Never returns `Data(&[])` — writes cover whole sectors.
    pub fn read_classified(&self, sector: u64) -> SectorRead<'_> {
        match self.durable.get(&sector) {
            Some(bytes) => SectorRead::Data(bytes.as_slice()),
            None if self.torn.contains(&sector) => SectorRead::Torn,
            None => SectorRead::Absent,
        }
    }

    /// Sectors persisted by the most recent flush.
    pub fn last_flush_len(&self) -> usize {
        self.last_flush.len()
    }

    /// Indices of all durable sectors, ascending.
    pub fn durable_sectors(&self) -> impl Iterator<Item = u64> + '_ {
        self.durable.keys().copied()
    }

    /// Total durable bits on the medium (the bit-flip address space).
    pub fn durable_bits(&self) -> u64 {
        self.durable.values().map(|v| v.len() as u64 * 8).sum()
    }

    /// Delete a durable sector (used by log truncation and tail discard).
    /// A deliberate delete also clears any torn-sector tombstone — the
    /// caller has classified the damage and disposed of the sector.
    pub fn delete(&mut self, sector: u64) -> bool {
        self.torn.remove(&sector);
        self.durable.remove(&sector).is_some()
    }

    /// Retroactively shorten the most recent flush to its first `keep`
    /// sectors, as if the crash interrupted the physical write. Returns
    /// `false` (no effect) when the last flush had ≤ `keep` sectors —
    /// nothing to tear.
    pub fn tear_last_flush(&mut self, keep: usize) -> bool {
        if self.last_flush.len() <= keep {
            return false;
        }
        for &idx in &self.last_flush[keep..] {
            if self.durable.remove(&idx).is_some() {
                self.torn.insert(idx);
            }
            self.stats.torn_sectors += 1;
        }
        self.last_flush.truncate(keep);
        true
    }

    /// Retroactively drop the *first* sector of the most recent flush while
    /// keeping the later ones, as if the device persisted its queue out of
    /// order and lost power before the head sector landed. Returns `false`
    /// when the last flush had < 2 sectors (reordering is unobservable).
    pub fn reorder_last_flush(&mut self) -> bool {
        if self.last_flush.len() < 2 {
            return false;
        }
        let first = self.last_flush.remove(0);
        if self.durable.remove(&first).is_some() {
            self.torn.insert(first);
        }
        self.stats.reordered_sectors += 1;
        true
    }

    /// Flip one durable bit. `bit` is reduced modulo the total durable bit
    /// count and located by iterating durable sectors in key order, so the
    /// same `bit` always hits the same stored byte for the same disk image.
    /// Returns `false` when the disk holds no durable data.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        let total = self.durable_bits();
        if total == 0 {
            return false;
        }
        let mut target = bit % total;
        for (&idx, bytes) in self.durable.iter_mut() {
            let here = bytes.len() as u64 * 8;
            if target < here {
                let byte = (target / 8) as usize;
                let mask = 1u8 << (target % 8);
                bytes[byte] ^= mask;
                self.flips.push((idx, byte, mask));
                self.stats.flipped_bits += 1;
                return true;
            }
            target -= here;
        }
        unreachable!("target bit within durable_bits() total");
    }

    /// Undo every flip applied by [`flip_bit`](Self::flip_bit) whose sector
    /// still exists. Returns the number of repairs, and reconciles the
    /// stats: `repaired_bits` grows by exactly that number, so
    /// `flipped_bits - repaired_bits` is always the flips that became
    /// unrepairable (their sector was torn or truncated away).
    pub fn unflip_all(&mut self) -> usize {
        let flips = std::mem::take(&mut self.flips);
        let mut repaired = 0;
        for (idx, byte, mask) in flips {
            if let Some(bytes) = self.durable.get_mut(&idx) {
                if byte < bytes.len() {
                    bytes[byte] ^= mask;
                    repaired += 1;
                }
            }
        }
        self.stats.repaired_bits += repaired as u64;
        repaired
    }

    /// Redirect the next write by `delta` sectors.
    pub fn arm_misdirect(&mut self, delta: i64) {
        self.misdirect = Some(delta);
    }

    // ------------------------------------------------------------------
    // The checked device interface: every op ticks the device-op counter
    // and consults the armed fault channels before touching the medium.
    // ------------------------------------------------------------------

    /// Checked device ops performed so far (reads, writes, flushes and
    /// deletes through the `try_*` interface).
    pub fn device_ops(&self) -> u64 {
        self.ops.get()
    }

    /// Arm the next `n` checked ops to fail with [`DiskError::Transient`].
    /// Cumulative with a previously armed budget.
    pub fn arm_transient_errors(&mut self, n: u32) {
        self.transient.set(self.transient.get().saturating_add(n));
    }

    /// Set or clear the device-full condition. While full, checked
    /// mutations fail with [`DiskError::Full`]; reads keep working.
    pub fn set_full(&mut self, full: bool) {
        self.full.set(full);
    }

    /// Whether the device-full condition is set.
    pub fn is_full(&self) -> bool {
        self.full.get()
    }

    /// Arm the crash-at-op trigger: the next `n` checked ops succeed, then
    /// the device trips — every later op fails with [`DiskError::Crashed`]
    /// until [`crash`](Self::crash) acknowledges the power loss.
    pub fn arm_crash_at_op(&mut self, n: u64) {
        self.trip_at.set(Some(self.ops.get() + n));
        self.tripped.set(false);
    }

    /// Whether the crash-at-op trigger has fired and the device is dead.
    pub fn is_tripped(&self) -> bool {
        self.tripped.get()
    }

    /// Elapsed logical device time: one tick per checked op, plus the
    /// surplus the armed latency channels charged. Ticks accumulate for the
    /// life of the device, like the op counter.
    pub fn device_ticks(&self) -> u64 {
        self.ticks.get()
    }

    /// Accumulated latency surplus from the gray channels — the slice of
    /// [`device_ticks`](Self::device_ticks) a healthy device would not have
    /// paid. Health detectors watch the delta of this figure to tell a busy
    /// device from a lying one.
    pub fn stall_ticks(&self) -> u64 {
        self.stalled.get()
    }

    /// Arm the next `n` checked ops to each cost `cost` extra ticks — a
    /// degraded medium serving every request slowly. Cumulative budget; the
    /// cost replaces any previously armed cost.
    pub fn arm_slow_ops(&mut self, n: u32, cost: u64) {
        self.slow_ops.set(self.slow_ops.get().saturating_add(n));
        self.slow_cost.set(cost);
    }

    /// Arm the next `n` non-empty checked flushes to each stall for `cost`
    /// extra ticks — an fsync that hangs before acknowledging. Cumulative
    /// budget; the cost replaces any previously armed cost.
    pub fn arm_fsync_stall(&mut self, n: u32, cost: u64) {
        self.stall_flushes.set(self.stall_flushes.get().saturating_add(n));
        self.stall_cost.set(cost);
    }

    /// Heal the device: clear the full condition, any remaining
    /// transient-error budget, and the armed slow-op / fsync-stall latency
    /// budgets (the operator replaced the gray hardware). A tripped device
    /// stays dead until [`crash`](Self::crash) — power loss is not healable
    /// in place. Accumulated ticks and stall surplus persist, like the op
    /// counter.
    pub fn heal(&mut self) {
        self.full.set(false);
        self.transient.set(0);
        self.slow_ops.set(0);
        self.stall_flushes.set(0);
    }

    /// Tick the op counter, charge the logical time the op costs, and
    /// consult the armed fault channels. `mutates` selects whether the
    /// device-full condition applies. Time is charged even when the op then
    /// fails — a transient error on a slow device still wastes the wait.
    fn tick(&self, mutates: bool) -> Result<(), DiskError> {
        if self.tripped.get() {
            return Err(DiskError::Crashed);
        }
        let n = self.ops.get() + 1;
        self.ops.set(n);
        let mut cost = 1u64;
        let slow = self.slow_ops.get();
        if slow > 0 {
            self.slow_ops.set(slow - 1);
            cost += self.slow_cost.get();
            self.stalled.set(self.stalled.get().saturating_add(self.slow_cost.get()));
        }
        self.ticks.set(self.ticks.get().saturating_add(cost));
        if let Some(at) = self.trip_at.get() {
            if n > at {
                self.tripped.set(true);
                return Err(DiskError::Crashed);
            }
        }
        let budget = self.transient.get();
        if budget > 0 {
            self.transient.set(budget - 1);
            self.transient_fired.set(self.transient_fired.get() + 1);
            return Err(DiskError::Transient);
        }
        if mutates && self.full.get() {
            return Err(DiskError::Full);
        }
        Ok(())
    }

    /// Checked classified read. See [`read_classified`](Self::read_classified).
    pub fn try_read(&self, sector: u64) -> Result<SectorRead<'_>, DiskError> {
        self.tick(false)?;
        Ok(self.read_classified(sector))
    }

    /// Checked write. See [`write`](Self::write).
    pub fn try_write(&mut self, sector: u64, data: &[u8]) -> Result<(), DiskError> {
        self.tick(true)?;
        self.write(sector, data);
        Ok(())
    }

    /// Checked flush. See [`flush`](Self::flush). An empty flush on a live
    /// device is a no-op and never fails — there is nothing for the device
    /// to do; a tripped device fails every op, empty or not. A non-empty
    /// flush consumes one armed fsync-stall (if any) and pays its extra
    /// ticks before the data lands — the stall delays the fsync, it does
    /// not lose it.
    pub fn try_flush(&mut self) -> Result<usize, DiskError> {
        if self.tripped.get() {
            return Err(DiskError::Crashed);
        }
        if self.pending.is_empty() {
            return Ok(0);
        }
        let stalls = self.stall_flushes.get();
        if stalls > 0 {
            self.stall_flushes.set(stalls - 1);
            let cost = self.stall_cost.get();
            self.ticks.set(self.ticks.get().saturating_add(cost));
            self.stalled.set(self.stalled.get().saturating_add(cost));
        }
        self.tick(true)?;
        Ok(self.flush())
    }

    /// Checked delete. See [`delete`](Self::delete). Deletes free space, so
    /// they succeed on a full device.
    pub fn try_delete(&mut self, sector: u64) -> Result<bool, DiskError> {
        self.tick(false)?;
        Ok(self.delete(sector))
    }

    /// Snapshot the durable image (and torn-sector tombstones) for later
    /// [`restore`](Self::restore).
    pub fn snapshot(&self) -> DiskImage {
        DiskImage { durable: self.durable.clone(), torn: self.torn.clone() }
    }

    /// Restore a snapshot: the durable image and tombstones come back
    /// exactly; the pending buffer, flip journal, last-flush record and all
    /// armed faults are cleared (the snapshot models re-imaging the
    /// medium). The op counter and wear stats keep accumulating.
    pub fn restore(&mut self, image: &DiskImage) {
        self.durable = image.durable.clone();
        self.torn = image.torn.clone();
        self.pending.clear();
        self.last_flush.clear();
        self.flips.clear();
        self.misdirect = None;
        self.transient.set(0);
        self.full.set(false);
        self.trip_at.set(None);
        self.tripped.set(false);
        self.slow_ops.set(0);
        self.stall_flushes.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(fill: u8, n: usize) -> Vec<u8> {
        vec![fill; n]
    }

    #[test]
    fn unflushed_writes_die_in_a_crash() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.write(1, &sec(2, 8));
        d.crash();
        d.crash(); // idempotent
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), None);
        assert_eq!(d.stats().lossy_crashes, 1);
    }

    #[test]
    fn tear_keeps_a_prefix_of_the_last_flush() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8), sec(3, 8)].concat());
        d.flush();
        assert!(d.tear_last_flush(1));
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), None);
        assert_eq!(d.read(2), None);
        assert_eq!(d.stats().torn_sectors, 2);
        // A single-sector flush can't be torn down to one sector.
        d.write(5, &sec(9, 8));
        d.flush();
        assert!(!d.tear_last_flush(1));
    }

    #[test]
    fn reorder_drops_the_head_sector_only() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8)].concat());
        d.flush();
        assert!(d.reorder_last_flush());
        assert_eq!(d.read(0), None);
        assert_eq!(d.read(1), Some(sec(2, 8).as_slice()));
        // Single-sector flushes can't reorder.
        d.write(4, &sec(7, 8));
        d.flush();
        assert!(!d.reorder_last_flush());
    }

    #[test]
    fn flips_are_deterministic_and_repairable() {
        let mut d = SimDisk::new(4);
        d.write(0, &[sec(0, 4), sec(0xFF, 4)].concat());
        d.flush();
        assert_eq!(d.durable_bits(), 64);
        assert!(d.flip_bit(3));
        assert!(d.flip_bit(3 + 64)); // wraps to the same bit → flips back
        assert_eq!(d.read(0), Some(sec(0, 4).as_slice()));
        assert!(d.flip_bit(35)); // second sector, byte 0, bit 3
        assert_eq!(d.read(1).unwrap()[0], 0xFF ^ 0x08);
        assert_eq!(d.unflip_all(), 3);
        assert_eq!(d.read(1), Some(sec(0xFF, 4).as_slice()));
        let empty = &mut SimDisk::new(4);
        assert!(!empty.flip_bit(0));
    }

    #[test]
    fn misdirect_redirects_exactly_one_write() {
        let mut d = SimDisk::new(8);
        d.arm_misdirect(3);
        d.write(0, &sec(1, 8));
        d.write(1, &sec(2, 8));
        d.flush();
        assert_eq!(d.read(0), None);
        assert_eq!(d.read(3), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), Some(sec(2, 8).as_slice()));
        assert_eq!(d.stats().misdirected_writes, 1);
    }

    /// Regression (satellite): a sector destroyed by a tear used to be
    /// indistinguishable from one never written — both read back `None`.
    /// The classified read keeps them apart, and a plain `read` never
    /// returns an empty slice for a torn sector.
    #[test]
    fn torn_sector_is_classified_distinct_from_absent() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8), sec(3, 8)].concat());
        d.flush();
        assert!(d.tear_last_flush(1));
        assert_eq!(d.read(1), None, "a torn sector must not read as Some(&[])");
        assert_eq!(d.read_classified(1), SectorRead::Torn);
        assert_eq!(d.read_classified(2), SectorRead::Torn);
        assert_eq!(d.read_classified(7), SectorRead::Absent, "never-written is Absent");
        assert_eq!(d.read_classified(0), SectorRead::Data(sec(1, 8).as_slice()));
        // A deliberate delete disposes of the tombstone...
        assert!(!d.delete(1));
        assert_eq!(d.read_classified(1), SectorRead::Absent);
        // ...and a rewrite heals it.
        d.write(2, &sec(9, 8));
        d.flush();
        assert_eq!(d.read_classified(2), SectorRead::Data(sec(9, 8).as_slice()));
    }

    /// Reconciliation (satellite): repairs are counted, so the stats always
    /// satisfy `flipped_bits = repaired_bits + unrepairable flips`.
    #[test]
    fn unflip_reconciles_the_flip_counters() {
        let mut d = SimDisk::new(4);
        d.write(0, &[sec(0xAA, 4), sec(0xBB, 4)].concat());
        d.flush();
        assert!(d.flip_bit(2)); // sector 0
        assert!(d.flip_bit(33)); // sector 1
        assert!(d.tear_last_flush(1)); // sector 1 (and its flip) destroyed
        assert_eq!(d.unflip_all(), 1, "only the surviving sector's flip repairs");
        let s = d.stats();
        assert_eq!(s.flipped_bits, 2);
        assert_eq!(s.repaired_bits, 1);
        assert_eq!(s.flipped_bits - s.repaired_bits, 1, "one flip died with its sector");
        assert_eq!(d.read(0), Some(sec(0xAA, 4).as_slice()));
    }

    #[test]
    fn transient_errors_fire_then_clear() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.arm_transient_errors(2);
        assert_eq!(d.try_read(0), Err(DiskError::Transient));
        assert_eq!(d.try_write(1, &sec(2, 8)), Err(DiskError::Transient));
        assert_eq!(d.try_read(0), Ok(SectorRead::Data(sec(1, 8).as_slice())));
        assert_eq!(d.stats().transient_errors, 2);
        assert_eq!(d.device_ops(), 3);
    }

    #[test]
    fn full_device_refuses_mutations_until_healed() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.set_full(true);
        assert_eq!(d.try_write(1, &sec(2, 8)), Err(DiskError::Full));
        assert_eq!(d.try_read(0), Ok(SectorRead::Data(sec(1, 8).as_slice())));
        assert_eq!(d.try_delete(0), Ok(true), "deletes free space on a full device");
        d.heal();
        assert_eq!(d.try_write(1, &sec(2, 8)), Ok(()));
        assert_eq!(d.try_flush(), Ok(1));
    }

    #[test]
    fn crash_at_op_trips_the_device_until_power_cycle() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.arm_crash_at_op(2);
        assert!(d.try_read(0).is_ok());
        assert!(d.try_read(0).is_ok());
        assert_eq!(d.try_read(0), Err(DiskError::Crashed));
        assert!(d.is_tripped());
        // Every op fails, mutating or not, and heal() cannot revive it.
        assert_eq!(d.try_write(1, &sec(2, 8)), Err(DiskError::Crashed));
        d.heal();
        assert_eq!(d.try_flush().err(), Some(DiskError::Crashed));
        // Only acknowledging the power loss brings the device back.
        d.crash();
        assert!(!d.is_tripped());
        assert!(d.try_read(0).is_ok());
        // Arming at 0 kills the very next op.
        d.arm_crash_at_op(0);
        assert_eq!(d.try_read(0), Err(DiskError::Crashed));
    }

    #[test]
    fn slow_ops_charge_extra_ticks_then_clear() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        assert_eq!(d.device_ticks(), 0, "raw ops never tick the clock");
        assert!(d.try_read(0).is_ok());
        assert_eq!(d.device_ticks(), 1);
        d.arm_slow_ops(2, 4);
        assert!(d.try_read(0).is_ok());
        assert!(d.try_read(0).is_ok());
        assert!(d.try_read(0).is_ok());
        // Two slow ops at 1+4 ticks, one healthy op at 1 tick.
        assert_eq!(d.device_ticks(), 1 + 5 + 5 + 1);
        assert_eq!(d.stall_ticks(), 8);
        assert_eq!(d.stats().stall_ticks, 8);
        assert_eq!(d.device_ops(), 4, "slow ops still count as one op each");
    }

    #[test]
    fn fsync_stalls_charge_non_empty_flushes_only() {
        let mut d = SimDisk::new(8);
        d.arm_fsync_stall(2, 32);
        assert_eq!(d.try_flush(), Ok(0), "empty flush is a no-op — no stall consumed");
        assert_eq!(d.device_ticks(), 0);
        d.write(0, &sec(1, 8));
        d.try_write(1, &sec(2, 8)).unwrap();
        assert_eq!(d.try_flush(), Ok(2), "the stall delays the fsync, it does not lose it");
        // One checked write (1 tick) + one stalled flush (1 + 32 ticks).
        assert_eq!(d.device_ticks(), 1 + 33);
        assert_eq!(d.stall_ticks(), 32);
        d.write(2, &sec(3, 8));
        assert_eq!(d.try_flush(), Ok(1));
        d.write(3, &sec(4, 8));
        assert_eq!(d.try_flush(), Ok(1), "budget exhausted — healthy flush");
        assert_eq!(d.stall_ticks(), 64);
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
    }

    #[test]
    fn slow_op_time_is_charged_even_when_the_op_fails() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.arm_slow_ops(1, 7);
        d.arm_transient_errors(1);
        assert_eq!(d.try_read(0), Err(DiskError::Transient));
        assert_eq!(d.device_ticks(), 8, "a transient error on a slow device still wastes the wait");
        assert_eq!(d.stall_ticks(), 7);
    }

    #[test]
    fn heal_clears_armed_latency_but_keeps_elapsed_time() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.arm_slow_ops(10, 4);
        d.arm_fsync_stall(10, 32);
        assert!(d.try_read(0).is_ok());
        let before = d.device_ticks();
        assert_eq!(d.stall_ticks(), 4);
        d.heal();
        assert!(d.try_read(0).is_ok());
        d.write(1, &sec(2, 8));
        assert_eq!(d.try_flush(), Ok(1));
        assert_eq!(d.device_ticks(), before + 2, "healed device serves at one tick per op");
        assert_eq!(d.stall_ticks(), 4, "the surplus already paid persists");
    }

    #[test]
    fn restore_clears_armed_latency_channels() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        let img = d.snapshot();
        d.arm_slow_ops(5, 9);
        d.arm_fsync_stall(5, 9);
        d.restore(&img);
        assert!(d.try_read(0).is_ok());
        assert_eq!(d.stall_ticks(), 0, "restore re-images onto healthy hardware");
    }

    #[test]
    fn snapshot_restore_round_trips_the_durable_image() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8)].concat());
        d.flush();
        d.tear_last_flush(1);
        let img = d.snapshot();
        d.write(5, &sec(7, 8));
        d.flush();
        d.set_full(true);
        d.arm_crash_at_op(0);
        d.restore(&img);
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(5), None);
        assert_eq!(d.read_classified(1), SectorRead::Torn, "tombstones restore too");
        assert!(d.try_read(0).is_ok(), "restore clears armed faults");
        assert!(!d.is_full());
    }

    #[test]
    fn same_operations_same_image() {
        let run = || {
            let mut d = SimDisk::new(8);
            d.write(0, &[sec(1, 8), sec(2, 8), sec(3, 8)].concat());
            d.flush();
            d.write(3, &sec(4, 8));
            d.flush();
            d.flip_bit(77);
            d.tear_last_flush(0);
            d.durable_sectors().map(|s| (s, d.read(s).unwrap().to_vec())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
