//! `SimDisk`: a deterministic virtual block device with sector-level fault
//! injection.
//!
//! The disk models the failure semantics of a real device under a
//! write-back cache:
//!
//! - Writes land in a volatile *pending* buffer; nothing is durable until
//!   [`SimDisk::flush`] (the fsync analogue) moves pending sectors to the
//!   durable map.
//! - [`SimDisk::crash`] drops the pending buffer — un-fsynced data is lost,
//!   fsynced data survives. Crash is idempotent.
//! - Faults are *armed* on the disk ahead of time and fire at the next
//!   matching operation, so the caller (the fault simulator) decides *what*
//!   happens and the disk decides *where* in the byte stream it lands:
//!   - [`SimDisk::tear_last_flush`]: retroactively shortens the most recent
//!     flush to its first `keep` sectors, modeling a torn multi-sector
//!     write that straddled the crash.
//!   - [`SimDisk::reorder_last_flush`]: retroactively drops the *first*
//!     sector of the most recent multi-sector flush while keeping the rest,
//!     modeling the device persisting queued sectors out of order before
//!     power loss.
//!   - [`SimDisk::flip_bit`]: flips one bit of durable data, modeling bit
//!     rot / medium error. Flips are journaled so tests can repair them.
//!   - [`SimDisk::arm_misdirect`]: the next pending write is redirected by a
//!     sector delta, modeling a misdirected write (firmware writes good data
//!     to the wrong LBA).
//!
//! Everything is plain `BTreeMap` state iterated in key order, so the same
//! call sequence always produces the same bytes — the determinism the
//! simulator's byte-identical-replay acceptance criterion needs.

use std::collections::BTreeMap;

/// Counters for the physical activity of one [`SimDisk`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Sectors made durable by `flush`.
    pub sectors_flushed: u64,
    /// `flush` calls that had at least one pending sector.
    pub flushes: u64,
    /// `crash` calls that discarded at least one pending sector.
    pub lossy_crashes: u64,
    /// Sectors dropped by `tear_last_flush`.
    pub torn_sectors: u64,
    /// Sectors dropped by `reorder_last_flush`.
    pub reordered_sectors: u64,
    /// Bits flipped by `flip_bit`.
    pub flipped_bits: u64,
    /// Writes redirected by an armed misdirect.
    pub misdirected_writes: u64,
}

/// A deterministic simulated block device. See the module docs for the fault
/// model.
#[derive(Debug)]
pub struct SimDisk {
    sector: usize,
    /// Durable sectors, by sector index. Absent means never written (reads
    /// as zeroes).
    durable: BTreeMap<u64, Vec<u8>>,
    /// Written but not yet flushed, in write order.
    pending: Vec<(u64, Vec<u8>)>,
    /// Sector indices made durable by the most recent flush, in write order.
    last_flush: Vec<u64>,
    /// Journal of applied bit flips `(sector, byte, mask)` so tests can
    /// repair the medium.
    flips: Vec<(u64, usize, u8)>,
    /// Sector delta applied to the next write, then cleared.
    misdirect: Option<i64>,
    stats: DiskStats,
}

impl SimDisk {
    /// A new empty disk with the given sector size in bytes.
    pub fn new(sector: usize) -> Self {
        assert!(sector > 0, "sector size must be positive");
        SimDisk {
            sector,
            durable: BTreeMap::new(),
            pending: Vec::new(),
            last_flush: Vec::new(),
            flips: Vec::new(),
            misdirect: None,
            stats: DiskStats::default(),
        }
    }

    /// Sector size in bytes.
    pub fn sector_size(&self) -> usize {
        self.sector
    }

    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Queue a write of `data` starting at `sector` (volatile until
    /// [`flush`](Self::flush)). `data` must be a whole number of sectors.
    pub fn write(&mut self, sector: u64, data: &[u8]) {
        assert!(
            data.len().is_multiple_of(self.sector) && !data.is_empty(),
            "writes must cover whole sectors (got {} bytes, sector {})",
            data.len(),
            self.sector
        );
        let base = match self.misdirect.take() {
            Some(delta) => {
                self.stats.misdirected_writes += 1;
                sector.wrapping_add_signed(delta)
            }
            None => sector,
        };
        for (i, chunk) in data.chunks(self.sector).enumerate() {
            self.pending.push((base + i as u64, chunk.to_vec()));
        }
    }

    /// Make all pending writes durable, in write order. Returns the number
    /// of sectors persisted.
    pub fn flush(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.last_flush.clear();
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        for (idx, bytes) in pending {
            self.durable.insert(idx, bytes);
            self.last_flush.push(idx);
        }
        self.stats.sectors_flushed += n as u64;
        self.stats.flushes += 1;
        n
    }

    /// Drop all un-flushed writes (power loss). Idempotent.
    pub fn crash(&mut self) {
        if !self.pending.is_empty() {
            self.stats.lossy_crashes += 1;
        }
        self.pending.clear();
        self.misdirect = None;
    }

    /// Read one sector; `None` if it was never written.
    /// Reads see only durable data — the pending buffer is the device
    /// cache, and the recovery scanner runs strictly post-crash.
    pub fn read(&self, sector: u64) -> Option<&[u8]> {
        self.durable.get(&sector).map(Vec::as_slice)
    }

    /// Sectors persisted by the most recent flush.
    pub fn last_flush_len(&self) -> usize {
        self.last_flush.len()
    }

    /// Indices of all durable sectors, ascending.
    pub fn durable_sectors(&self) -> impl Iterator<Item = u64> + '_ {
        self.durable.keys().copied()
    }

    /// Total durable bits on the medium (the bit-flip address space).
    pub fn durable_bits(&self) -> u64 {
        self.durable.values().map(|v| v.len() as u64 * 8).sum()
    }

    /// Delete a durable sector (used by log truncation and tail discard).
    pub fn delete(&mut self, sector: u64) -> bool {
        self.durable.remove(&sector).is_some()
    }

    /// Retroactively shorten the most recent flush to its first `keep`
    /// sectors, as if the crash interrupted the physical write. Returns
    /// `false` (no effect) when the last flush had ≤ `keep` sectors —
    /// nothing to tear.
    pub fn tear_last_flush(&mut self, keep: usize) -> bool {
        if self.last_flush.len() <= keep {
            return false;
        }
        for &idx in &self.last_flush[keep..] {
            self.durable.remove(&idx);
            self.stats.torn_sectors += 1;
        }
        self.last_flush.truncate(keep);
        true
    }

    /// Retroactively drop the *first* sector of the most recent flush while
    /// keeping the later ones, as if the device persisted its queue out of
    /// order and lost power before the head sector landed. Returns `false`
    /// when the last flush had < 2 sectors (reordering is unobservable).
    pub fn reorder_last_flush(&mut self) -> bool {
        if self.last_flush.len() < 2 {
            return false;
        }
        let first = self.last_flush.remove(0);
        self.durable.remove(&first);
        self.stats.reordered_sectors += 1;
        true
    }

    /// Flip one durable bit. `bit` is reduced modulo the total durable bit
    /// count and located by iterating durable sectors in key order, so the
    /// same `bit` always hits the same stored byte for the same disk image.
    /// Returns `false` when the disk holds no durable data.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        let total = self.durable_bits();
        if total == 0 {
            return false;
        }
        let mut target = bit % total;
        for (&idx, bytes) in self.durable.iter_mut() {
            let here = bytes.len() as u64 * 8;
            if target < here {
                let byte = (target / 8) as usize;
                let mask = 1u8 << (target % 8);
                bytes[byte] ^= mask;
                self.flips.push((idx, byte, mask));
                self.stats.flipped_bits += 1;
                return true;
            }
            target -= here;
        }
        unreachable!("target bit within durable_bits() total");
    }

    /// Undo every flip applied by [`flip_bit`](Self::flip_bit) whose sector
    /// still exists. Returns the number of repairs.
    pub fn unflip_all(&mut self) -> usize {
        let flips = std::mem::take(&mut self.flips);
        let mut repaired = 0;
        for (idx, byte, mask) in flips {
            if let Some(bytes) = self.durable.get_mut(&idx) {
                if byte < bytes.len() {
                    bytes[byte] ^= mask;
                    repaired += 1;
                }
            }
        }
        repaired
    }

    /// Redirect the next write by `delta` sectors.
    pub fn arm_misdirect(&mut self, delta: i64) {
        self.misdirect = Some(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(fill: u8, n: usize) -> Vec<u8> {
        vec![fill; n]
    }

    #[test]
    fn unflushed_writes_die_in_a_crash() {
        let mut d = SimDisk::new(8);
        d.write(0, &sec(1, 8));
        d.flush();
        d.write(1, &sec(2, 8));
        d.crash();
        d.crash(); // idempotent
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), None);
        assert_eq!(d.stats().lossy_crashes, 1);
    }

    #[test]
    fn tear_keeps_a_prefix_of_the_last_flush() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8), sec(3, 8)].concat());
        d.flush();
        assert!(d.tear_last_flush(1));
        assert_eq!(d.read(0), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), None);
        assert_eq!(d.read(2), None);
        assert_eq!(d.stats().torn_sectors, 2);
        // A single-sector flush can't be torn down to one sector.
        d.write(5, &sec(9, 8));
        d.flush();
        assert!(!d.tear_last_flush(1));
    }

    #[test]
    fn reorder_drops_the_head_sector_only() {
        let mut d = SimDisk::new(8);
        d.write(0, &[sec(1, 8), sec(2, 8)].concat());
        d.flush();
        assert!(d.reorder_last_flush());
        assert_eq!(d.read(0), None);
        assert_eq!(d.read(1), Some(sec(2, 8).as_slice()));
        // Single-sector flushes can't reorder.
        d.write(4, &sec(7, 8));
        d.flush();
        assert!(!d.reorder_last_flush());
    }

    #[test]
    fn flips_are_deterministic_and_repairable() {
        let mut d = SimDisk::new(4);
        d.write(0, &[sec(0, 4), sec(0xFF, 4)].concat());
        d.flush();
        assert_eq!(d.durable_bits(), 64);
        assert!(d.flip_bit(3));
        assert!(d.flip_bit(3 + 64)); // wraps to the same bit → flips back
        assert_eq!(d.read(0), Some(sec(0, 4).as_slice()));
        assert!(d.flip_bit(35)); // second sector, byte 0, bit 3
        assert_eq!(d.read(1).unwrap()[0], 0xFF ^ 0x08);
        assert_eq!(d.unflip_all(), 3);
        assert_eq!(d.read(1), Some(sec(0xFF, 4).as_slice()));
        let empty = &mut SimDisk::new(4);
        assert!(!empty.flip_bit(0));
    }

    #[test]
    fn misdirect_redirects_exactly_one_write() {
        let mut d = SimDisk::new(8);
        d.arm_misdirect(3);
        d.write(0, &sec(1, 8));
        d.write(1, &sec(2, 8));
        d.flush();
        assert_eq!(d.read(0), None);
        assert_eq!(d.read(3), Some(sec(1, 8).as_slice()));
        assert_eq!(d.read(1), Some(sec(2, 8).as_slice()));
        assert_eq!(d.stats().misdirected_writes, 1);
    }

    #[test]
    fn same_operations_same_image() {
        let run = || {
            let mut d = SimDisk::new(8);
            d.write(0, &[sec(1, 8), sec(2, 8), sec(3, 8)].concat());
            d.flush();
            d.write(3, &sec(4, 8));
            d.flush();
            d.flip_bit(77);
            d.tear_last_flush(0);
            d.durable_sectors().map(|s| (s, d.read(s).unwrap().to_vec())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
