//! Segmented write-ahead log on a [`SimDisk`], with CRC'd frames,
//! epoch-stamped segment headers, checkpoint truncation, and a recovery
//! scanner that classifies physical damage.
//!
//! # On-disk format
//!
//! Every stored object is a **frame**, zero-padded to a whole number of
//! sectors:
//!
//! ```text
//! magic  u32-le   b"CCRF"
//! kind   u8       1 = segment header, 2 = commit, 3 = checkpoint,
//!                 4 = batched commit (group-commit flush member)
//! len    u32-le   payload byte length
//! crc    u32-le   CRC32 of the whole padded frame with this field zeroed
//! payload[len]
//! zero padding to a sector multiple
//! ```
//!
//! A batched-commit frame (kind 4) prefixes the commit payload with a
//! [`BatchMeta`] header — `batch_id`, `pos`, `len` — naming the group-commit
//! flush it belongs to and its position within it. [`append_commits`]
//! ([`LogBackend::append_commits`]) stages every frame of the batch in the
//! device's write cache and makes the whole group durable with **one**
//! tearable flush, which is what amortises the fsync cost across the batch.
//!
//! The CRC covers the padding, so *every durable bit* of the log belongs to
//! exactly one frame's checked extent — any single-bit flip is detectable.
//!
//! The log is an array of fixed-size **segments** (`seg_sectors` sectors).
//! Sector 0 of each segment holds a segment-header frame carrying the
//! recovery epoch, the segment index, a `requires_checkpoint` flag (set once
//! truncation has ever deleted a segment — after that, a scan that finds no
//! valid checkpoint must refuse rather than silently start cold), the
//! transaction-id / exec-seq floors, and the durable [`StoreStats`]
//! counters. The header is rewritten in place at segment creation, at every
//! checkpoint, and at every successful recovery (with the epoch bumped).
//!
//! # Recovery state machine
//!
//! The scanner walks candidate segments (every distinct durable
//! `sector / seg_sectors`) in order, validates the header, then walks
//! sector-aligned frame positions. At each position:
//!
//! * absent sector → candidate log end. All later sectors of the segment
//!   must also be absent: a clean roll or clean tail leaves no data after
//!   the end. Data after a hole is the signature of a reordered flush
//!   ([`Detection::MissingData`]).
//! * frame extends into absent sectors → torn write
//!   ([`Detection::TornFrame`]).
//! * structurally complete frame with bad magic/len/CRC → bit rot
//!   ([`Detection::CrcMismatch`]).
//!
//! On damage the scanner probes every later frame position; a valid frame
//! *after* the damage point usually upgrades the classification to interior
//! corruption ([`Detection::InteriorFrame`]), which no policy may discard.
//! The exception is a **torn group flush**: when the damage is a tear or a
//! hole (never a CRC mismatch — CRC damage behind intact frames stays
//! interior, because those frames were acknowledged) and every valid frame
//! beyond it is a batched-commit frame of one single batch, the damage is
//! classified `torn-batch` — the whole extent belongs to one interrupted
//! group flush that was never acknowledged, so
//! [`TailPolicy::DiscardTail`] may delete it. Otherwise the damage is a
//! torn tail: [`TailPolicy::Strict`] refuses and
//! [`TailPolicy::DiscardTail`] deletes the damaged suffix and recovers the
//! valid prefix.
//!
//! A crash can also land exactly on a frame boundary inside a group flush,
//! leaving a *well-formed* log whose final batch run is incomplete
//! (`pos` reaches only `k < len`). The scanner detects this from the batch
//! headers alone: Strict refuses it like any torn tail, and DiscardTail
//! keeps the `k` surviving records — a prefix of the batch in commit order,
//! none of them acknowledged — and rewrites their headers in place with
//! `len = k` (the header is fixed-width, so the rewrite keeps every frame's
//! sector footprint) so the repaired log scans clean from then on.
//!
//! The newest valid checkpoint becomes the replay base; commit frames after
//! it are returned in commit order.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;

use ccr_core::adt::Adt;

use crate::backend::{
    CheckpointImage, CommitRecord, ConvergenceFailure, ConvergenceReport, Detection, LogBackend,
    RecoveredLog, RetryPolicy, RetryRecord, ScanReport, StoreFailure, StoreFailureKind, StoreStats,
    TailPolicy,
};
use crate::codec::{crc32, Persist};
use crate::disk::{DiskError, SectorRead, SimDisk};

/// Geometry of the simulated log device.
///
/// The defaults are deliberately tiny — 32-byte sectors make a one-operation
/// commit span two sectors (so torn writes are expressible), and 64-sector
/// segments make rolls and checkpoint truncation fire in small tests.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Sector size in bytes.
    pub sector: usize,
    /// Sectors per log segment.
    pub seg_sectors: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { sector: 32, seg_sectors: 64 }
    }
}

pub(crate) const MAGIC: u32 = u32::from_le_bytes(*b"CCRF");
pub(crate) const KIND_SEG_HEADER: u8 = 1;
pub(crate) const KIND_COMMIT: u8 = 2;
pub(crate) const KIND_CHECKPOINT: u8 = 3;
pub(crate) const KIND_BATCH: u8 = 4;
/// A two-phase-commit PREPARE: the participant's full commit record,
/// journaled *before* the vote — the transaction is in doubt until a
/// decide frame (or the coordinator's verdict) resolves it.
pub(crate) const KIND_PREPARE: u8 = 5;
/// A two-phase-commit decision for a previously prepared transaction:
/// gtid plus a commit/abort flag. Per presumed abort, a prepare whose
/// decide frame is torn away resolves to abort.
pub(crate) const KIND_DECIDE: u8 = 6;
/// magic(4) + kind(1) + len(4) + crc(4).
pub(crate) const FRAME_OVERHEAD: usize = 13;
/// epoch(8) + seg_index(8) + requires_checkpoint(1) + txn_floor(4) +
/// next_exec_seq(8) + five `StoreStats` counters (40).
pub(crate) const HEADER_PAYLOAD: usize = 69;

/// Build a sector-aligned CRC'd frame around `payload`. Public (with
/// [`check_frame`]) as the wire-format test surface: the corruption property
/// tests build frames and damage them byte-by-byte without a device.
pub fn build_frame(kind: u8, payload: &[u8], sector: usize) -> Vec<u8> {
    let total = (FRAME_OVERHEAD + payload.len()).div_ceil(sector) * sector;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(payload);
    buf.resize(total, 0);
    let crc = crc32(&buf);
    buf[9..13].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Validate a frame image exactly the way the recovery scanner does —
/// magic, kind range, sane length, CRC over the whole sector-aligned extent
/// — and return `(kind, payload)` if it is intact. `None` classifies the
/// frame as corrupt; a torn frame (short buffer) is also `None`.
pub fn check_frame(buf: &[u8]) -> Option<(u8, Vec<u8>)> {
    if buf.len() < FRAME_OVERHEAD {
        return None;
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return None;
    }
    let kind = buf[4];
    if !(KIND_SEG_HEADER..=KIND_DECIDE).contains(&kind) {
        return None;
    }
    let len = u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")) as usize;
    let total = FRAME_OVERHEAD.checked_add(len)?;
    if total > buf.len() {
        return None;
    }
    let stored = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes"));
    let mut scratch = buf.to_vec();
    scratch[9..13].fill(0);
    if crc32(&scratch) != stored {
        return None;
    }
    Some((kind, buf[FRAME_OVERHEAD..total].to_vec()))
}

/// Run one checked device op under the retry policy: transient errors are
/// retried with deterministic exponential backoff (logical ticks, no wall
/// clock); permanent errors and budget exhaustion surface to the caller.
/// Retried ops are recorded for the runtime to drain into obs events.
fn with_retries<T>(
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
    mut op: impl FnMut() -> Result<T, DiskError>,
) -> Result<T, DiskError> {
    let mut attempts = 0u32;
    let mut backoff = 0u64;
    loop {
        match op() {
            Ok(v) => {
                if attempts > 0 {
                    retries.push(RetryRecord { attempts, backoff, ok: true });
                }
                return Ok(v);
            }
            Err(DiskError::Transient) if attempts < policy.attempts => {
                backoff += policy.backoff(attempts);
                attempts += 1;
            }
            Err(e) => {
                if attempts > 0 {
                    retries.push(RetryRecord { attempts, backoff, ok: false });
                }
                return Err(e);
            }
        }
    }
}

fn read_retried<'d>(
    disk: &'d SimDisk,
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
    sector: u64,
) -> Result<SectorRead<'d>, DiskError> {
    with_retries(policy, retries, || disk.try_read(sector))
}

fn write_retried(
    disk: &mut SimDisk,
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
    sector: u64,
    data: &[u8],
) -> Result<(), DiskError> {
    with_retries(policy, retries, || disk.try_write(sector, data))
}

fn flush_retried(
    disk: &mut SimDisk,
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
) -> Result<usize, DiskError> {
    with_retries(policy, retries, || disk.try_flush())
}

fn delete_retried(
    disk: &mut SimDisk,
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
    sector: u64,
) -> Result<bool, DiskError> {
    with_retries(policy, retries, || disk.try_delete(sector))
}

/// What one frame position holds.
enum FrameRead {
    /// No durable data at this position.
    Absent,
    /// A frame starts here but extends into absent sectors.
    Torn {
        expected: usize,
        found: usize,
    },
    /// Durable data that is not a valid frame (bad magic, insane length, or
    /// CRC mismatch).
    Corrupt,
    Valid {
        kind: u8,
        payload: Vec<u8>,
        sectors: u64,
    },
}

/// Read the frame starting at `pos`. The probe of the frame's head sector is
/// one *checked* device op (retried under `policy`), so a crash-at-op or
/// exhausted transient budget can kill a recovery scan at any frame
/// position; the frame's interior sectors ride the same physical request.
/// A sector destroyed by a tear ([`SectorRead::Torn`]) holds no durable
/// data, exactly like one never written — both read as `Absent` and the
/// scan's hole rules classify the damage.
fn read_frame(
    disk: &SimDisk,
    cfg: &WalConfig,
    pos: u64,
    seg_end: u64,
    policy: RetryPolicy,
    retries: &mut Vec<RetryRecord>,
) -> Result<FrameRead, DiskError> {
    let first = match read_retried(disk, policy, retries, pos)? {
        SectorRead::Data(bytes) => bytes,
        SectorRead::Torn | SectorRead::Absent => return Ok(FrameRead::Absent),
    };
    if first.len() < FRAME_OVERHEAD {
        return Ok(FrameRead::Corrupt);
    }
    let magic = u32::from_le_bytes(first[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Ok(FrameRead::Corrupt);
    }
    let kind = first[4];
    if !(KIND_SEG_HEADER..=KIND_DECIDE).contains(&kind) {
        return Ok(FrameRead::Corrupt);
    }
    let len = u32::from_le_bytes(first[5..9].try_into().expect("4 bytes")) as usize;
    let Some(total) = FRAME_OVERHEAD.checked_add(len) else { return Ok(FrameRead::Corrupt) };
    let sectors = total.div_ceil(cfg.sector) as u64;
    if pos + sectors > seg_end {
        // The claimed length runs past the segment — a flipped length field.
        return Ok(FrameRead::Corrupt);
    }
    let mut buf = Vec::with_capacity(sectors as usize * cfg.sector);
    for (i, s) in (pos..pos + sectors).enumerate() {
        match disk.read(s) {
            Some(bytes) => buf.extend_from_slice(bytes),
            None => return Ok(FrameRead::Torn { expected: sectors as usize, found: i }),
        }
    }
    let stored = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes"));
    buf[9..13].fill(0);
    if crc32(&buf) != stored {
        return Ok(FrameRead::Corrupt);
    }
    Ok(FrameRead::Valid {
        kind,
        payload: buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len].to_vec(),
        sectors,
    })
}

/// Decoded segment-header payload. Public (with the batch codec below) as
/// the wire-format test surface: the epoch-header round-trip and
/// byte-corruption property tests drive `encode`/`decode` directly, without
/// a device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegHeader {
    /// Recovery epoch (bumped by every successful recovery).
    pub epoch: u64,
    /// Index of the segment this header opens.
    pub seg_index: u64,
    /// Whether truncation made the checkpoint in this segment load-bearing.
    pub requires_checkpoint: bool,
    /// Transaction-id floor at header-write time.
    pub txn_floor: u32,
    /// Global execution-sequence floor at header-write time.
    pub next_exec_seq: u64,
    /// Durable counters as persisted with this header.
    pub stats: StoreStats,
}

impl SegHeader {
    /// Serialize to the fixed-width header payload (`HEADER_PAYLOAD` bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_PAYLOAD);
        self.epoch.encode(&mut out);
        self.seg_index.encode(&mut out);
        (self.requires_checkpoint as u8).encode(&mut out);
        self.txn_floor.encode(&mut out);
        self.next_exec_seq.encode(&mut out);
        self.stats.checkpoints.encode(&mut out);
        self.stats.recoveries.encode(&mut out);
        self.stats.sector_tears.encode(&mut out);
        self.stats.reordered_flushes.encode(&mut out);
        self.stats.bitflips_detected.encode(&mut out);
        debug_assert_eq!(out.len(), HEADER_PAYLOAD);
        out
    }

    /// Parse a header payload; `None` on any structural damage (wrong
    /// length, truncated field).
    pub fn decode(payload: &[u8]) -> Option<SegHeader> {
        let mut pos = 0;
        let h = SegHeader {
            epoch: u64::decode(payload, &mut pos)?,
            seg_index: u64::decode(payload, &mut pos)?,
            requires_checkpoint: u8::decode(payload, &mut pos)? != 0,
            txn_floor: u32::decode(payload, &mut pos)?,
            next_exec_seq: u64::decode(payload, &mut pos)?,
            stats: StoreStats {
                checkpoints: u64::decode(payload, &mut pos)?,
                recoveries: u64::decode(payload, &mut pos)?,
                sector_tears: u64::decode(payload, &mut pos)?,
                reordered_flushes: u64::decode(payload, &mut pos)?,
                bitflips_detected: u64::decode(payload, &mut pos)?,
            },
        };
        (pos == payload.len()).then_some(h)
    }
}

fn encode_commit<A>(rec: &CommitRecord<A>) -> Vec<u8>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut out = Vec::new();
    rec.floor.encode(&mut out);
    rec.ops.encode(&mut out);
    out
}

pub(crate) fn decode_commit<A>(payload: &[u8]) -> Option<CommitRecord<A>>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut pos = 0;
    let rec = CommitRecord {
        floor: u32::decode(payload, &mut pos)?,
        ops: Persist::decode(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some(rec)
}

/// Serialize a 2PC prepare frame: the global transaction id followed by the
/// participant's full commit record. Public (with [`decode_prepare`]) as the
/// wire-format test surface for the presumed-abort property tests.
pub fn encode_prepare<A>(gtid: u64, rec: &CommitRecord<A>) -> Vec<u8>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut out = Vec::new();
    gtid.encode(&mut out);
    rec.floor.encode(&mut out);
    rec.ops.encode(&mut out);
    out
}

/// Parse a prepare payload; `None` on structural damage.
pub fn decode_prepare<A>(payload: &[u8]) -> Option<(u64, CommitRecord<A>)>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut pos = 0;
    let gtid = u64::decode(payload, &mut pos)?;
    let rec = CommitRecord {
        floor: u32::decode(payload, &mut pos)?,
        ops: Persist::decode(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some((gtid, rec))
}

/// Serialize a 2PC decide frame: gtid plus commit flag (1 = commit,
/// 0 = abort). Public as the wire-format test surface.
pub fn encode_decide(gtid: u64, commit: bool) -> Vec<u8> {
    let mut out = Vec::new();
    gtid.encode(&mut out);
    (commit as u8).encode(&mut out);
    out
}

/// Parse a decide payload; `None` on structural damage (a flag byte other
/// than 0/1 counts as damage — nothing legitimate writes one).
pub fn decode_decide(payload: &[u8]) -> Option<(u64, bool)> {
    let mut pos = 0;
    let gtid = u64::decode(payload, &mut pos)?;
    let flag = u8::decode(payload, &mut pos)?;
    if flag > 1 {
        return None;
    }
    (pos == payload.len()).then_some((gtid, flag == 1))
}

/// Per-frame batch header of a group-commit flush member: which flush the
/// frame belongs to and where it sits in it. `id` is unique across adjacent
/// batches (epoch-salted counter), so two flushes can never be mistaken for
/// one; `pos`/`len` let the scanner judge whether the trailing batch run is
/// a complete group or a crash-surviving prefix. Fixed width (16 bytes), so
/// a repair rewrite that shrinks `len` never changes a frame's footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchMeta {
    /// Epoch-salted flush id, unique across adjacent batches.
    pub id: u64,
    /// This frame's position within its flush.
    pub pos: u32,
    /// Total frames in the flush (after any repair rewrite).
    pub len: u32,
}

/// Serialize one group-flush member: the fixed-width [`BatchMeta`] followed
/// by the commit record. Public as the batch-frame test surface.
pub fn encode_batch<A>(meta: BatchMeta, rec: &CommitRecord<A>) -> Vec<u8>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut out = Vec::new();
    meta.id.encode(&mut out);
    meta.pos.encode(&mut out);
    meta.len.encode(&mut out);
    rec.floor.encode(&mut out);
    rec.ops.encode(&mut out);
    out
}

/// Parse one group-flush member; `None` on structural damage or an
/// impossible meta (`len == 0` or `pos >= len`).
pub fn decode_batch<A>(payload: &[u8]) -> Option<(BatchMeta, CommitRecord<A>)>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    let mut pos = 0;
    let meta = BatchMeta {
        id: u64::decode(payload, &mut pos)?,
        pos: u32::decode(payload, &mut pos)?,
        len: u32::decode(payload, &mut pos)?,
    };
    // `len == 1` is legal: a repair rewrite can shrink a torn batch to a
    // single surviving record. `pos >= len` never is.
    if meta.len == 0 || meta.pos >= meta.len {
        return None;
    }
    let rec = CommitRecord {
        floor: u32::decode(payload, &mut pos)?,
        ops: Persist::decode(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some((meta, rec))
}

fn encode_checkpoint<A>(img: &CheckpointImage<A>) -> Vec<u8>
where
    A: Adt,
    A::State: Persist,
{
    let mut out = Vec::new();
    img.base_records.encode(&mut out);
    img.txn_floor.encode(&mut out);
    img.next_exec_seq.encode(&mut out);
    img.states.encode(&mut out);
    out
}

pub(crate) fn decode_checkpoint<A>(payload: &[u8]) -> Option<CheckpointImage<A>>
where
    A: Adt,
    A::State: Persist,
{
    let mut pos = 0;
    let img = CheckpointImage {
        base_records: u64::decode(payload, &mut pos)?,
        txn_floor: u32::decode(payload, &mut pos)?,
        next_exec_seq: u64::decode(payload, &mut pos)?,
        states: Persist::decode(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some(img)
}

/// The durable WAL backend: a segmented CRC'd log on a [`SimDisk`].
///
/// `Clone` duplicates the whole backend — device, cursors, counters, armed
/// sabotage — the snapshot primitive the model checker's explorer forks
/// states with.
#[derive(Clone, Debug)]
pub struct WalBackend<A: Adt> {
    disk: SimDisk,
    cfg: WalConfig,
    epoch: u64,
    /// Current segment index.
    seg: u64,
    /// Next free sector *within* the current segment.
    head: u64,
    requires_checkpoint: bool,
    txn_floor: u32,
    next_exec_seq: u64,
    /// In-process view of the durable counters (what the last header write
    /// persisted, plus activity since). Wiped by `crash` and rebuilt from
    /// the log by `recover` — process memory is not stable storage.
    stats: StoreStats,
    /// Detections accumulated by scans since the last crash, folded into
    /// `stats` (and persisted) at the next successful recovery.
    detected: StoreStats,
    /// Damage sites already counted into `detected` since the last crash.
    /// Repeated scans of the same un-repaired damage (a Strict refusal
    /// followed by a DiscardTail retry) re-detect the same physical fault;
    /// this set keeps one fault from inflating the persisted counters.
    seen_damage: BTreeSet<(u8, u64)>,
    /// Group-commit batch counter for this process lifetime; the durable
    /// batch id is salted with the recovery epoch, so ids stay distinct
    /// across a crash even though the counter restarts.
    next_batch_id: u64,
    /// Whether the most recent flush was a commit append. Header and
    /// checkpoint flushes are synchronous fsyncs the caller waited on, so
    /// tear / reorder faults (which model an interrupted flush) do not
    /// apply to them.
    tearable: bool,
    /// Transient-error retry policy for every checked device op.
    retry: RetryPolicy,
    /// Retried ops since the last [`LogBackend::drain_retries`], oldest
    /// first. Process memory — wiped by `crash`.
    retries: Vec<RetryRecord>,
    /// Test-only sabotage: skip the epoch bump at the end of recovery, so
    /// the convergence probe's negative test can prove it notices a
    /// recovery that makes no durable progress.
    skip_epoch_bump: bool,
    _marker: PhantomData<fn() -> A>,
}

impl<A> WalBackend<A>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
    A::State: Persist,
{
    pub fn new(cfg: WalConfig) -> Self {
        let header_sectors = (FRAME_OVERHEAD + HEADER_PAYLOAD).div_ceil(cfg.sector) as u64;
        assert!(
            cfg.seg_sectors > header_sectors,
            "segment must have room for data after its header"
        );
        let mut wal = WalBackend {
            disk: SimDisk::new(cfg.sector),
            cfg,
            epoch: 0,
            seg: 0,
            head: header_sectors,
            requires_checkpoint: false,
            txn_floor: 0,
            next_exec_seq: 0,
            stats: StoreStats::default(),
            detected: StoreStats::default(),
            seen_damage: BTreeSet::new(),
            next_batch_id: 0,
            tearable: false,
            retry: RetryPolicy::default(),
            retries: Vec::new(),
            skip_epoch_bump: false,
            _marker: PhantomData,
        };
        wal.write_header().expect("a fresh device has no armed faults");
        wal
    }

    /// Direct access to the underlying device, for fault-injection tests
    /// that target the disk itself (e.g. misdirected writes).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Read-only access to the underlying device — the offline forensic
    /// inspector ([`crate::inspect`]) walks the durable image through this
    /// without ticking a single checked device op.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    pub fn config(&self) -> WalConfig {
        self.cfg
    }

    fn header_sectors(&self) -> u64 {
        (FRAME_OVERHEAD + HEADER_PAYLOAD).div_ceil(self.cfg.sector) as u64
    }

    fn header(&self) -> SegHeader {
        SegHeader {
            epoch: self.epoch,
            seg_index: self.seg,
            requires_checkpoint: self.requires_checkpoint,
            txn_floor: self.txn_floor,
            next_exec_seq: self.next_exec_seq,
            stats: self.stats,
        }
    }

    /// Test-only sabotage hook for the convergence probe's negative test:
    /// skip the durable epoch bump that seals every successful recovery.
    pub fn set_skip_epoch_bump(&mut self, on: bool) {
        self.skip_epoch_bump = on;
    }

    /// The current recovery epoch (bumped and persisted by every
    /// successful recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// (Re)write the current segment's header in place and fsync it.
    fn write_header(&mut self) -> Result<(), DiskError> {
        let frame = build_frame(KIND_SEG_HEADER, &self.header().encode(), self.cfg.sector);
        let at = self.seg * self.cfg.seg_sectors;
        write_retried(&mut self.disk, self.retry, &mut self.retries, at, &frame)?;
        flush_retried(&mut self.disk, self.retry, &mut self.retries)?;
        self.tearable = false;
        Ok(())
    }

    /// Append one frame at the head (rolling to a new segment if it does
    /// not fit) and fsync it.
    fn append_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), DiskError> {
        let frame = build_frame(kind, payload, self.cfg.sector);
        let sectors = (frame.len() / self.cfg.sector) as u64;
        assert!(
            sectors <= self.cfg.seg_sectors - self.header_sectors(),
            "frame of {sectors} sectors exceeds segment capacity"
        );
        if self.head + sectors > self.cfg.seg_sectors {
            self.seg += 1;
            self.head = self.header_sectors();
            self.write_header()?;
        }
        let tearable = matches!(kind, KIND_COMMIT | KIND_PREPARE | KIND_DECIDE);
        let at = self.seg * self.cfg.seg_sectors + self.head;
        write_retried(&mut self.disk, self.retry, &mut self.retries, at, &frame)?;
        flush_retried(&mut self.disk, self.retry, &mut self.retries)?;
        self.head += sectors;
        self.tearable = tearable;
        Ok(())
    }

    /// Undo a failed append on a still-live device: scrub the staged bytes
    /// from the write cache (so no later flush can leak them out), delete
    /// any sectors the append already made durable (a mid-batch roll
    /// flushes a prefix), and rewind the head and floors. After this the
    /// log is exactly what it was before the append — the record the caller
    /// reports as failed can never resurface at recovery. Not called for
    /// [`DiskError::Crashed`]: a tripped device is about to power-cycle,
    /// and whatever prefix it made durable follows ordinary crash
    /// semantics.
    fn rollback_append(&mut self, start: (u64, u64), floors: (u32, u64)) {
        self.disk.discard_pending();
        let abs = start.0 * self.cfg.seg_sectors + start.1;
        let doomed: Vec<u64> = self.disk.durable_sectors().filter(|&s| s >= abs).collect();
        for s in doomed {
            self.disk.delete(s);
        }
        (self.seg, self.head) = start;
        (self.txn_floor, self.next_exec_seq) = floors;
        self.tearable = false;
    }

    /// Probe all sector-aligned frame positions after `pos` that could start
    /// a frame — the rest of `pos`'s segment, then the whole area of every
    /// later candidate segment — and classify what lies beyond the damage.
    fn probe_beyond_damage(
        &mut self,
        segs: &[u64],
        seg_idx: u64,
        pos: u64,
    ) -> Result<TailProbe, DiskError> {
        let disk = &self.disk;
        let cfg = &self.cfg;
        let policy = self.retry;
        let retries = &mut self.retries;
        let mut first_valid: Option<u64> = None;
        let mut batch_ids: BTreeSet<u64> = BTreeSet::new();
        let mut non_batch = false;
        let mut visit = |p: u64, seg_end: u64| -> Result<(), DiskError> {
            if let FrameRead::Valid { kind, payload, .. } =
                read_frame(disk, cfg, p, seg_end, policy, retries)?
            {
                first_valid.get_or_insert(p);
                match (kind == KIND_BATCH).then(|| decode_batch::<A>(&payload)).flatten() {
                    Some((meta, _)) => {
                        batch_ids.insert(meta.id);
                    }
                    None => non_batch = true,
                }
            }
            Ok(())
        };
        let seg_end = (seg_idx + 1) * cfg.seg_sectors;
        for p in pos + 1..seg_end {
            visit(p, seg_end)?;
        }
        for &s in segs.iter().filter(|&&s| s > seg_idx) {
            let base = s * cfg.seg_sectors;
            let end = base + cfg.seg_sectors;
            for p in base..end {
                visit(p, end)?;
            }
        }
        Ok(match first_valid {
            None => TailProbe::Nothing,
            Some(p) if !non_batch && batch_ids.len() == 1 => TailProbe::SameBatch(p),
            Some(p) => TailProbe::Interior(p),
        })
    }

    /// Fingerprint of everything a recovered log determines about the
    /// resumed system: the replay base, the record suffix, both floors, the
    /// checkpoint-required flag and the durable checkpoint counter. Two
    /// recoveries with equal fingerprints replay to the identical `View`
    /// under *any* replay function. Detection and recovery tallies are
    /// deliberately excluded — a nested crash between a repair and the
    /// header fsync can legitimately lose a detection count (the tally is
    /// telemetry, not replay state); DESIGN.md §11 spells out the contract.
    fn recovered_fingerprint(&self, out: &RecoveredLog<A>) -> String {
        let mut buf = Vec::new();
        for rec in &out.records {
            buf.extend_from_slice(&encode_commit(rec));
            buf.push(0xA5);
        }
        if let Some(cp) = &out.checkpoint {
            buf.extend_from_slice(&encode_checkpoint(cp));
        }
        for (gtid, rec) in &out.in_doubt {
            buf.extend_from_slice(&encode_prepare(*gtid, rec));
            buf.push(0x2C);
        }
        for (gtid, commit) in &out.decisions {
            buf.extend_from_slice(&encode_decide(*gtid, *commit));
            buf.push(0xD0);
        }
        out.txn_floor.encode(&mut buf);
        out.next_exec_seq.encode(&mut buf);
        (self.requires_checkpoint as u8).encode(&mut buf);
        out.stats.checkpoints.encode(&mut buf);
        format!(
            "view:{:08x} floor:{} seq:{} ckpts:{}",
            crc32(&buf),
            out.txn_floor,
            out.next_exec_seq,
            out.stats.checkpoints
        )
    }

    /// One convergence outcome: a successful recovery's fingerprint, or the
    /// classification of a refusal. Device errors never appear here — the
    /// probe handles them separately.
    fn outcome_key(&self, res: &Result<RecoveredLog<A>, StoreFailure>) -> String {
        match res {
            Ok(out) => self.recovered_fingerprint(out),
            Err(f) => format!("refused:{}:{:?}", f.report.damage, f.kind),
        }
    }
}

/// Count a scan detection toward the per-process fault stats, at most once
/// per damage site per crash: repeated scans of the same un-repaired damage
/// re-detect the same physical fault and must not inflate the persisted
/// counters. (A crash legitimately clears the memo — process memory is not
/// stable storage — so each post-crash scan counts a site it finds afresh.)
fn note_detection(detected: &mut StoreStats, seen: &mut BTreeSet<(u8, u64)>, d: &Detection) {
    let key = match d {
        Detection::TornFrame { sector } => (0u8, *sector),
        Detection::MissingData { sector } => (1, *sector),
        Detection::CrcMismatch { sector } => (2, *sector),
        Detection::InteriorFrame { sector } => (3, *sector),
    };
    if !seen.insert(key) {
        return;
    }
    match d {
        Detection::TornFrame { .. } => detected.sector_tears += 1,
        Detection::MissingData { .. } => detected.reordered_flushes += 1,
        Detection::CrcMismatch { .. } => detected.bitflips_detected += 1,
        Detection::InteriorFrame { .. } => {}
    }
}

/// A valid frame collected by the scan walk. Batched commits carry their
/// batch header and absolute start sector, so the trailing-batch fold can
/// judge completeness and rewrite a surviving prefix in place.
enum ScannedFrame<A: Adt> {
    Commit { rec: CommitRecord<A>, batch: Option<(BatchMeta, u64)> },
    Checkpoint(CheckpointImage<A>),
    Prepare { gtid: u64, rec: CommitRecord<A> },
    Decide { gtid: u64, commit: bool },
}

/// What lies beyond a damage site.
enum TailProbe {
    /// No valid frame after the damage: an ordinary torn tail.
    Nothing,
    /// Valid frames after the damage, all of them members of one single
    /// batch: the damage is inside one interrupted group flush.
    SameBatch(u64),
    /// Any other valid frame after the damage: interior corruption.
    Interior(u64),
}

impl<A> LogBackend<A> for WalBackend<A>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
    A::State: Persist,
{
    fn append_commit(&mut self, rec: &CommitRecord<A>) -> Result<(), StoreFailure> {
        let start = (self.seg, self.head);
        let floors = (self.txn_floor, self.next_exec_seq);
        self.txn_floor = rec.floor;
        if let Some(max) = rec.ops.iter().map(|(s, _, _)| s + 1).max() {
            self.next_exec_seq = self.next_exec_seq.max(max);
        }
        match self.append_frame(KIND_COMMIT, &encode_commit(rec)) {
            Ok(()) => Ok(()),
            Err(e) => {
                if e == DiskError::Crashed {
                    (self.txn_floor, self.next_exec_seq) = floors;
                } else {
                    self.rollback_append(start, floors);
                }
                Err(StoreFailure::device(e))
            }
        }
    }

    fn append_commits(&mut self, recs: &[CommitRecord<A>]) -> Result<(), StoreFailure> {
        // A group of one gains nothing from batch framing: fall back to the
        // plain commit frame so the default path stays byte-identical.
        if recs.len() < 2 {
            if let Some(rec) = recs.first() {
                self.append_commit(rec)?;
            }
            return Ok(());
        }
        let start = (self.seg, self.head);
        let floors = (self.txn_floor, self.next_exec_seq);
        let id = (self.epoch << 32) ^ self.next_batch_id;
        self.next_batch_id += 1;
        let len = recs.len() as u32;
        let mut stage = || -> Result<(), DiskError> {
            let mut staged = false;
            for (i, rec) in recs.iter().enumerate() {
                self.txn_floor = rec.floor;
                if let Some(max) = rec.ops.iter().map(|(s, _, _)| s + 1).max() {
                    self.next_exec_seq = self.next_exec_seq.max(max);
                }
                let meta = BatchMeta { id, pos: i as u32, len };
                let frame = build_frame(KIND_BATCH, &encode_batch(meta, rec), self.cfg.sector);
                let sectors = (frame.len() / self.cfg.sector) as u64;
                assert!(
                    sectors <= self.cfg.seg_sectors - self.header_sectors(),
                    "frame of {sectors} sectors exceeds segment capacity"
                );
                if self.head + sectors > self.cfg.seg_sectors {
                    // Roll mid-batch: make the staged prefix durable first
                    // (its sectors must not share a flush with the new
                    // segment's non-tearable header fsync), then open the
                    // next segment.
                    if staged {
                        flush_retried(&mut self.disk, self.retry, &mut self.retries)?;
                        self.tearable = true;
                    }
                    self.seg += 1;
                    self.head = self.header_sectors();
                    self.write_header()?;
                }
                let at = self.seg * self.cfg.seg_sectors + self.head;
                write_retried(&mut self.disk, self.retry, &mut self.retries, at, &frame)?;
                self.head += sectors;
                staged = true;
            }
            if staged {
                // The single fsync the whole batch was waiting on.
                flush_retried(&mut self.disk, self.retry, &mut self.retries)?;
                self.tearable = true;
            }
            Ok(())
        };
        match stage() {
            Ok(()) => Ok(()),
            Err(e) => {
                if e == DiskError::Crashed {
                    (self.txn_floor, self.next_exec_seq) = floors;
                } else {
                    // The device still works: the all-or-prefix contract
                    // holds for crashes, but a *reported* failure promises
                    // "none durable" — undo the flushed prefix too.
                    self.rollback_append(start, floors);
                }
                Err(StoreFailure::device(e))
            }
        }
    }

    fn append_prepare(&mut self, gtid: u64, rec: &CommitRecord<A>) -> Result<(), StoreFailure> {
        let start = (self.seg, self.head);
        let floors = (self.txn_floor, self.next_exec_seq);
        // A prepare advances the floors exactly as its commit would: the
        // record's ops are durable from here even though the outcome is
        // still open, and a recovery must not hand out ids or exec stamps
        // that collide with the in-doubt transaction's.
        self.txn_floor = rec.floor;
        if let Some(max) = rec.ops.iter().map(|(s, _, _)| s + 1).max() {
            self.next_exec_seq = self.next_exec_seq.max(max);
        }
        match self.append_frame(KIND_PREPARE, &encode_prepare(gtid, rec)) {
            Ok(()) => Ok(()),
            Err(e) => {
                if e == DiskError::Crashed {
                    (self.txn_floor, self.next_exec_seq) = floors;
                } else {
                    self.rollback_append(start, floors);
                }
                Err(StoreFailure::device(e))
            }
        }
    }

    fn append_decision(&mut self, gtid: u64, commit: bool) -> Result<(), StoreFailure> {
        let start = (self.seg, self.head);
        let floors = (self.txn_floor, self.next_exec_seq);
        match self.append_frame(KIND_DECIDE, &encode_decide(gtid, commit)) {
            Ok(()) => Ok(()),
            Err(e) => {
                if e == DiskError::Crashed {
                    (self.txn_floor, self.next_exec_seq) = floors;
                } else {
                    self.rollback_append(start, floors);
                }
                Err(StoreFailure::device(e))
            }
        }
    }

    fn write_checkpoint(&mut self, img: &CheckpointImage<A>) -> Result<u64, StoreFailure> {
        let start = (self.seg, self.head);
        let floors = (self.txn_floor, self.next_exec_seq);
        self.txn_floor = img.txn_floor;
        self.next_exec_seq = img.next_exec_seq;
        if let Err(e) = self.append_frame(KIND_CHECKPOINT, &encode_checkpoint(img)) {
            if e == DiskError::Crashed {
                (self.txn_floor, self.next_exec_seq) = floors;
            } else {
                self.rollback_append(start, floors);
            }
            return Err(StoreFailure::device(e));
        }
        // The checkpoint frame is durable: from here on the new image is
        // the replay base and failure no longer rolls anything back. Whole
        // segments before the checkpoint's segment are now redundant.
        let cut = self.seg * self.cfg.seg_sectors;
        let doomed: Vec<u64> = self.disk.durable_sectors().take_while(|&s| s < cut).collect();
        let mut truncated_segs: Vec<u64> = Vec::new();
        for &s in &doomed {
            let seg = s / self.cfg.seg_sectors;
            if truncated_segs.last() != Some(&seg) {
                truncated_segs.push(seg);
            }
        }
        self.stats.checkpoints += 1;
        if !truncated_segs.is_empty() {
            // Persist the refuse-without-a-checkpoint flag *before* any
            // sector is deleted: a crash mid-truncation must find the flag
            // durable, or a later scan that also loses the checkpoint frame
            // would silently start cold on the truncated log.
            self.requires_checkpoint = true;
        }
        self.write_header().map_err(StoreFailure::device)?;
        for s in doomed {
            delete_retried(&mut self.disk, self.retry, &mut self.retries, s)
                .map_err(StoreFailure::device)?;
        }
        Ok(truncated_segs.len() as u64)
    }

    fn crash(&mut self) {
        self.disk.crash();
        // Process memory is gone: everything below must be re-learned from
        // the log by `recover`. (The disk object itself *is* the stable
        // medium, so it survives.)
        self.epoch = 0;
        self.seg = 0;
        self.head = self.header_sectors();
        self.requires_checkpoint = false;
        self.txn_floor = 0;
        self.next_exec_seq = 0;
        self.stats = StoreStats::default();
        self.detected = StoreStats::default();
        self.seen_damage.clear();
        self.next_batch_id = 0;
        self.tearable = false;
        self.retries.clear();
    }

    fn recover(&mut self, policy: TailPolicy) -> Result<RecoveredLog<A>, StoreFailure> {
        // Stage accounting: every checked device op of this attempt lands in
        // exactly one of the scan / classify / repair windows, so the three
        // `*_ops` fields tile the attempt's device-op delta (the profiler's
        // recovery-coverage check relies on that). Wall time rides along but
        // is excluded from report equality.
        let scan_clock = std::time::Instant::now();
        let scan_ops0 = self.disk.device_ops();
        let seg_sectors = self.cfg.seg_sectors;
        let header_sectors = self.header_sectors();
        let mut segs: Vec<u64> = self.disk.durable_sectors().map(|s| s / seg_sectors).collect();
        segs.dedup();

        let mut report = ScanReport {
            segments: segs.len() as u64,
            sectors: self.disk.durable_sectors().count() as u64,
            damage: "clean",
            ..ScanReport::default()
        };

        if segs.is_empty() {
            // Nothing durable at all: cold start on a fresh medium.
            report.scan_ops = self.disk.device_ops() - scan_ops0;
            report.scan_ns = scan_clock.elapsed().as_nanos() as u64;
            self.detected.recoveries += 1;
            self.stats = self.detected;
            self.detected = StoreStats::default();
            self.seen_damage.clear();
            let repair_clock = std::time::Instant::now();
            let repair_ops0 = self.disk.device_ops();
            self.write_header().map_err(StoreFailure::device)?;
            report.repair_ops = self.disk.device_ops() - repair_ops0;
            report.repair_ns = repair_clock.elapsed().as_nanos() as u64;
            return Ok(RecoveredLog {
                checkpoint: None,
                records: Vec::new(),
                in_doubt: Vec::new(),
                decisions: Vec::new(),
                txn_floor: 0,
                next_exec_seq: 0,
                stats: self.stats,
                scan: report,
            });
        }

        let mut governing = SegHeader::default();
        let mut frames: Vec<ScannedFrame<A>> = Vec::new();
        // Damage site: (absolute sector, detection, strict failure kind).
        let mut damage: Option<(u64, Detection, StoreFailureKind)> = None;
        let mut end = (segs[0], header_sectors);

        'walk: for (i, &seg_idx) in segs.iter().enumerate() {
            let base = seg_idx * seg_sectors;
            let seg_end = base + seg_sectors;
            let last_seg = i + 1 == segs.len();

            match read_frame(&self.disk, &self.cfg, base, seg_end, self.retry, &mut self.retries)
                .map_err(StoreFailure::device)?
            {
                FrameRead::Valid { kind: KIND_SEG_HEADER, payload, sectors: _ } => {
                    match SegHeader::decode(&payload) {
                        Some(h) => governing = h,
                        None => {
                            let d = Detection::CrcMismatch { sector: base };
                            note_detection(&mut self.detected, &mut self.seen_damage, &d);
                            report.detections.push(d);
                            report.damage = "corrupt-header";
                            report.scan_ops = self.disk.device_ops() - scan_ops0;
                            report.scan_ns = scan_clock.elapsed().as_nanos() as u64;
                            return Err(StoreFailure {
                                report,
                                kind: StoreFailureKind::Corrupt { sector: base },
                            });
                        }
                    }
                    report.frames += 1;
                }
                // A segment whose header is damaged is unrecoverable under
                // any policy: headers are fsynced in place, so a legitimate
                // crash cannot tear them — only corruption explains this.
                _ => {
                    let d = Detection::CrcMismatch { sector: base };
                    note_detection(&mut self.detected, &mut self.seen_damage, &d);
                    report.detections.push(d);
                    report.damage = "corrupt-header";
                    report.scan_ops = self.disk.device_ops() - scan_ops0;
                    report.scan_ns = scan_clock.elapsed().as_nanos() as u64;
                    return Err(StoreFailure {
                        report,
                        kind: StoreFailureKind::Corrupt { sector: base },
                    });
                }
            }

            let mut pos = base + header_sectors;
            while pos < seg_end {
                match read_frame(&self.disk, &self.cfg, pos, seg_end, self.retry, &mut self.retries)
                    .map_err(StoreFailure::device)?
                {
                    FrameRead::Absent => {
                        // Candidate end of log. A clean tail / clean roll
                        // leaves nothing after it in this segment; data
                        // after a hole means the flush persisted out of
                        // order.
                        if (pos + 1..seg_end).any(|q| self.disk.read(q).is_some()) {
                            let d = Detection::MissingData { sector: pos };
                            note_detection(&mut self.detected, &mut self.seen_damage, &d);
                            report.detections.push(d);
                            damage = Some((
                                pos,
                                d,
                                StoreFailureKind::Torn {
                                    record: frames.len(),
                                    expected: 1,
                                    found: 0,
                                },
                            ));
                            end = (seg_idx, pos - base);
                            break 'walk;
                        }
                        end = (seg_idx, pos - base);
                        if last_seg {
                            break 'walk;
                        }
                        // Clean roll: frames continue in the next segment.
                        break;
                    }
                    FrameRead::Valid { kind, payload, sectors } => {
                        let decoded = match kind {
                            KIND_COMMIT => decode_commit::<A>(&payload)
                                .map(|rec| ScannedFrame::Commit { rec, batch: None }),
                            KIND_BATCH => decode_batch::<A>(&payload).map(|(meta, rec)| {
                                ScannedFrame::Commit { rec, batch: Some((meta, pos)) }
                            }),
                            KIND_CHECKPOINT => {
                                decode_checkpoint::<A>(&payload).map(ScannedFrame::Checkpoint)
                            }
                            KIND_PREPARE => decode_prepare::<A>(&payload)
                                .map(|(gtid, rec)| ScannedFrame::Prepare { gtid, rec }),
                            KIND_DECIDE => decode_decide(&payload)
                                .map(|(gtid, commit)| ScannedFrame::Decide { gtid, commit }),
                            // A header frame in the data area: structurally
                            // valid bytes in the wrong place (misdirected
                            // write). Treat as corruption.
                            _ => None,
                        };
                        match decoded {
                            Some(f) => {
                                frames.push(f);
                                report.frames += 1;
                                pos += sectors;
                                end = (seg_idx, pos - base);
                            }
                            None => {
                                let d = Detection::CrcMismatch { sector: pos };
                                note_detection(&mut self.detected, &mut self.seen_damage, &d);
                                report.detections.push(d);
                                damage = Some((pos, d, StoreFailureKind::Corrupt { sector: pos }));
                                end = (seg_idx, pos - base);
                                break 'walk;
                            }
                        }
                    }
                    FrameRead::Torn { expected, found } => {
                        let d = Detection::TornFrame { sector: pos };
                        note_detection(&mut self.detected, &mut self.seen_damage, &d);
                        report.detections.push(d);
                        damage = Some((
                            pos,
                            d,
                            StoreFailureKind::Torn { record: frames.len(), expected, found },
                        ));
                        end = (seg_idx, pos - base);
                        break 'walk;
                    }
                    FrameRead::Corrupt => {
                        let d = Detection::CrcMismatch { sector: pos };
                        note_detection(&mut self.detected, &mut self.seen_damage, &d);
                        report.detections.push(d);
                        damage = Some((pos, d, StoreFailureKind::Corrupt { sector: pos }));
                        end = (seg_idx, pos - base);
                        break 'walk;
                    }
                }
            }
        }

        report.scan_ops = self.disk.device_ops() - scan_ops0;
        report.scan_ns = scan_clock.elapsed().as_nanos() as u64;

        // Whether DiscardTail truncated damage this scan: the trailing-batch
        // fold below must then repair a surviving batch prefix *without*
        // counting a second detection for the same physical fault.
        let mut discarded = false;
        if let Some((at, _, strict_kind)) = damage {
            let seg_idx = at / seg_sectors;
            let classify_clock = std::time::Instant::now();
            let classify_ops0 = self.disk.device_ops();
            let probe =
                self.probe_beyond_damage(&segs, seg_idx, at).map_err(StoreFailure::device)?;
            report.classify_ops = self.disk.device_ops() - classify_ops0;
            report.classify_ns = classify_clock.elapsed().as_nanos() as u64;
            match probe {
                // A tear or hole whose entire valid remainder belongs to one
                // single batch: one interrupted group flush. Its records were
                // never acknowledged (the batch's one fsync did not complete
                // intact), so the damaged extent is legitimately discardable.
                // A CRC mismatch never qualifies — intact frames behind bit
                // rot were acknowledged, and discarding them loses commits.
                TailProbe::SameBatch(_) if matches!(strict_kind, StoreFailureKind::Torn { .. }) => {
                    report.damage = "torn-batch";
                    match policy {
                        TailPolicy::Strict => {
                            return Err(StoreFailure { report, kind: strict_kind });
                        }
                        TailPolicy::DiscardTail => {
                            let repair_clock = std::time::Instant::now();
                            let repair_ops0 = self.disk.device_ops();
                            let doomed: Vec<u64> =
                                self.disk.durable_sectors().filter(|&s| s >= at).collect();
                            for s in doomed {
                                delete_retried(&mut self.disk, self.retry, &mut self.retries, s)
                                    .map_err(StoreFailure::device)?;
                            }
                            report.repair_ops += self.disk.device_ops() - repair_ops0;
                            report.repair_ns += repair_clock.elapsed().as_nanos() as u64;
                            discarded = true;
                        }
                    }
                }
                TailProbe::SameBatch(p) | TailProbe::Interior(p) => {
                    // Valid data beyond the damage that no interrupted flush
                    // explains: interior corruption. Tail discard would lose
                    // committed, fsynced records — refuse under every policy.
                    report.detections.push(Detection::InteriorFrame { sector: p });
                    report.damage = "interior";
                    return Err(StoreFailure {
                        report,
                        kind: StoreFailureKind::Corrupt { sector: at },
                    });
                }
                TailProbe::Nothing => {
                    report.damage = "torn-tail";
                    match policy {
                        TailPolicy::Strict => {
                            return Err(StoreFailure { report, kind: strict_kind });
                        }
                        TailPolicy::DiscardTail => {
                            let repair_clock = std::time::Instant::now();
                            let repair_ops0 = self.disk.device_ops();
                            let doomed: Vec<u64> =
                                self.disk.durable_sectors().filter(|&s| s >= at).collect();
                            for s in doomed {
                                delete_retried(&mut self.disk, self.retry, &mut self.retries, s)
                                    .map_err(StoreFailure::device)?;
                            }
                            report.repair_ops += self.disk.device_ops() - repair_ops0;
                            report.repair_ns += repair_clock.elapsed().as_nanos() as u64;
                            discarded = true;
                        }
                    }
                }
            }
        }

        // Judge the trailing batch run. A crash (or a tail discard above) can
        // leave a *well-formed* log whose final run of batched commits stops
        // at `pos = k` of a `len`-record group flush — a frame-aligned tear.
        // Fold the frame list into the state of its trailing run: reset on
        // every non-batch frame; extend while id/len match and `pos` stays
        // contiguous.
        let mut run: Option<(BatchMeta, bool, u32, Vec<u64>)> = None;
        for f in &frames {
            match f {
                ScannedFrame::Commit { batch: Some((meta, start)), .. } => match &mut run {
                    Some((m, _, next, starts))
                        if meta.id == m.id && meta.len == m.len && meta.pos == *next =>
                    {
                        *next += 1;
                        starts.push(*start);
                    }
                    _ => run = Some((*meta, meta.pos == 0, meta.pos + 1, vec![*start])),
                },
                _ => run = None,
            }
        }
        if let Some((meta, aligned, next, starts)) = run {
            if !aligned {
                // A batch run that does not begin at `pos = 0` lost *leading*
                // members, which no tear or discard produces — the scanner's
                // hole rules catch the physical causes first, so this is
                // defensive. Refuse under every policy.
                report.damage = "interior";
                return Err(StoreFailure {
                    report,
                    kind: StoreFailureKind::Corrupt { sector: starts[0] },
                });
            }
            if next < meta.len {
                let log_end = end.0 * seg_sectors + end.1;
                if !discarded {
                    // A frame-aligned tear the walk itself could not see: the
                    // one physical fault is counted here, at the log end.
                    let d = Detection::TornFrame { sector: log_end };
                    note_detection(&mut self.detected, &mut self.seen_damage, &d);
                    report.detections.push(d);
                    report.damage = "torn-batch";
                }
                match policy {
                    TailPolicy::Strict => {
                        return Err(StoreFailure {
                            report,
                            kind: StoreFailureKind::Torn {
                                record: frames.len() - next as usize,
                                expected: meta.len as usize,
                                found: next as usize,
                            },
                        });
                    }
                    TailPolicy::DiscardTail => {
                        // Keep the `k` survivors — a prefix of the batch in
                        // commit order, none acknowledged — and rewrite their
                        // headers in place with `len = k` so the repaired log
                        // scans clean from now on. The batch header is fixed
                        // width, so no frame changes its sector footprint;
                        // the header fsync at the end of this recovery makes
                        // the rewrites durable.
                        let repair_clock = std::time::Instant::now();
                        let repair_ops0 = self.disk.device_ops();
                        let first = frames.len() - next as usize;
                        for (i, f) in frames[first..].iter().enumerate() {
                            let ScannedFrame::Commit { rec, .. } = f else { unreachable!() };
                            let m = BatchMeta { id: meta.id, pos: i as u32, len: next };
                            let frame =
                                build_frame(KIND_BATCH, &encode_batch(m, rec), self.cfg.sector);
                            write_retried(
                                &mut self.disk,
                                self.retry,
                                &mut self.retries,
                                starts[i],
                                &frame,
                            )
                            .map_err(StoreFailure::device)?;
                        }
                        report.repair_ops += self.disk.device_ops() - repair_ops0;
                        report.repair_ns += repair_clock.elapsed().as_nanos() as u64;
                    }
                }
            }
        }

        // Replay base: the newest valid checkpoint wins; commit frames after
        // it are the live log suffix. 2PC frames fold by presumed abort: a
        // prepare is pending until its decide frame arrives; decide-commit
        // moves the prepared record into the replay suffix *at the decide
        // position* (replay order is decision order); decide-abort drops it.
        // A prepare with no durable decide survives the fold as in-doubt —
        // the caller resolves it against the coordinator or presumes abort.
        let mut checkpoint: Option<CheckpointImage<A>> = None;
        let mut records: Vec<CommitRecord<A>> = Vec::new();
        let mut pending: BTreeMap<u64, CommitRecord<A>> = BTreeMap::new();
        let mut decisions: Vec<(u64, bool)> = Vec::new();
        for f in frames {
            match f {
                ScannedFrame::Checkpoint(img) => {
                    // Checkpoints refuse to run while prepares are pending,
                    // so `pending` is empty here on any log we wrote; keep
                    // whatever is there anyway rather than silently losing
                    // an in-doubt transaction on a hand-damaged log.
                    checkpoint = Some(img);
                    records.clear();
                }
                ScannedFrame::Commit { rec, .. } => records.push(rec),
                ScannedFrame::Prepare { gtid, rec } => {
                    pending.insert(gtid, rec);
                }
                ScannedFrame::Decide { gtid, commit } => {
                    decisions.push((gtid, commit));
                    if let Some(rec) = pending.remove(&gtid) {
                        if commit {
                            records.push(rec);
                        }
                    }
                }
            }
        }
        let in_doubt: Vec<(u64, CommitRecord<A>)> = pending.into_iter().collect();
        if governing.requires_checkpoint && checkpoint.is_none() {
            // Truncation deleted segments that only a checkpoint can stand
            // in for; without one the log prefix is gone. Starting cold here
            // would silently drop committed state.
            report.damage = "missing-checkpoint";
            let at = end.0 * seg_sectors;
            return Err(StoreFailure { report, kind: StoreFailureKind::Corrupt { sector: at } });
        }

        // Floors take the max over the replay suffix *and* the in-doubt set:
        // a decide-commit lands its record at the decide position carrying
        // its older prepare-time floor, so "last record" is no longer
        // necessarily the newest (floors are monotone in append order, not
        // decision order). On a log with no 2PC frames the max equals the
        // last record's floor — byte-identical behavior.
        let txn_floor = records
            .iter()
            .map(|r| r.floor)
            .chain(in_doubt.iter().map(|(_, r)| r.floor))
            .max()
            .or_else(|| checkpoint.as_ref().map(|c| c.txn_floor))
            .unwrap_or(governing.txn_floor);
        let next_exec_seq = records
            .iter()
            .chain(in_doubt.iter().map(|(_, r)| r))
            .flat_map(|r| r.ops.iter())
            .map(|(s, _, _)| s + 1)
            .max()
            .or_else(|| checkpoint.as_ref().map(|c| c.next_exec_seq))
            .unwrap_or(governing.next_exec_seq);

        // Adopt the durable counters from the log, fold in what this
        // process's scans detected, and persist the updated header with a
        // bumped epoch — the durable record that a recovery happened. The
        // header fsync is recovery's commit point: it also makes the batch
        // repair rewrites durable, and until it lands a nested crash
        // re-runs the whole scan from the (idempotently re-repairable)
        // prior image.
        self.epoch = if self.skip_epoch_bump { governing.epoch } else { governing.epoch + 1 };
        self.requires_checkpoint = governing.requires_checkpoint;
        self.txn_floor = txn_floor;
        self.next_exec_seq = next_exec_seq;
        self.stats = governing.stats;
        self.stats.add(&self.detected);
        self.stats.recoveries += 1;
        self.detected = StoreStats::default();
        // The damage this process saw is now persisted (and repaired or
        // discarded); damage a later scan finds at the same sector is a new
        // fault.
        self.seen_damage.clear();
        self.seg = end.0;
        self.head = end.1;
        let repair_clock = std::time::Instant::now();
        let repair_ops0 = self.disk.device_ops();
        self.write_header().map_err(StoreFailure::device)?;
        report.repair_ops += self.disk.device_ops() - repair_ops0;
        report.repair_ns += repair_clock.elapsed().as_nanos() as u64;

        Ok(RecoveredLog {
            checkpoint,
            records,
            in_doubt,
            decisions,
            txn_floor,
            next_exec_seq,
            stats: self.stats,
            scan: report,
        })
    }

    fn tear_last_flush(&mut self, n: usize) -> bool {
        if !self.tearable || n == 0 {
            return false;
        }
        // A torn write still persists some prefix; tearing the whole flush
        // away is indistinguishable from a plain crash before the write,
        // which the caller models separately.
        let len = self.disk.last_flush_len();
        if n >= len {
            return false;
        }
        let torn = self.disk.tear_last_flush(len - n);
        if torn {
            self.tearable = false;
        }
        torn
    }

    fn reorder_last_flush(&mut self) -> bool {
        if !self.tearable {
            return false;
        }
        if self.disk.reorder_last_flush() {
            self.tearable = false;
            true
        } else {
            false
        }
    }

    fn flip_bit(&mut self, bit: u64) -> bool {
        self.disk.flip_bit(bit)
    }

    fn repair_flips(&mut self) -> usize {
        self.disk.unflip_all()
    }

    fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    fn arm_transient_io(&mut self, n: u32) -> bool {
        self.disk.arm_transient_errors(n);
        true
    }

    fn set_device_full(&mut self, on: bool) -> bool {
        self.disk.set_full(on);
        true
    }

    fn heal_device(&mut self) -> bool {
        self.disk.heal();
        true
    }

    fn drain_retries(&mut self) -> Vec<RetryRecord> {
        std::mem::take(&mut self.retries)
    }

    fn arm_slow_ops(&mut self, n: u32, cost: u64) -> bool {
        self.disk.arm_slow_ops(n, cost);
        true
    }

    fn arm_fsync_stall(&mut self, n: u32, cost: u64) -> bool {
        self.disk.arm_fsync_stall(n, cost);
        true
    }

    fn device_ticks(&self) -> u64 {
        self.disk.device_ticks()
    }

    fn stall_ticks(&self) -> u64 {
        self.disk.stall_ticks()
    }

    /// The sixth oracle leg. Baseline: crash + recover from a snapshot of
    /// the current image, counting the device ops recovery consumes. Then
    /// one trial per device-op index: restore the snapshot, arm the
    /// crash-at-op trigger there, recover, and — when the trip kills the
    /// recovery mid-flight — power-cycle and recover once more. Every
    /// trial's eventual outcome (recovered fingerprint, or the exact
    /// refusal) must equal the baseline's, and a successful recovery must
    /// durably advance the epoch by exactly one (the negative test skips
    /// the bump and must be caught here). Leaves the backend recovered
    /// from the snapshot.
    fn check_recovery_convergence(
        &mut self,
        policy: TailPolicy,
    ) -> Result<ConvergenceReport, ConvergenceFailure> {
        if self.disk.is_tripped() || self.disk.is_full() {
            return Err(ConvergenceFailure {
                trial: 0,
                reason: "device unhealthy at probe start".to_string(),
            });
        }
        let image = self.disk.snapshot();
        let ops_before = self.disk.device_ops();
        <Self as LogBackend<A>>::crash(self);
        let baseline = <Self as LogBackend<A>>::recover(self, policy);
        let device_ops = self.disk.device_ops() - ops_before;
        if let Err(f) = &baseline {
            if matches!(f.kind, StoreFailureKind::Device(_)) {
                return Err(ConvergenceFailure {
                    trial: 0,
                    reason: format!("baseline recovery hit a device error: {:?}", f.kind),
                });
            }
        }
        let base_key = self.outcome_key(&baseline);

        // Progress: re-recovering a just-recovered log must advance the
        // durable epoch by exactly one — the bump is recovery's durable
        // seal, and without it nested batches could reuse live batch ids.
        if baseline.is_ok() {
            let sealed = self.epoch;
            <Self as LogBackend<A>>::crash(self);
            match <Self as LogBackend<A>>::recover(self, policy) {
                Ok(_) => {
                    if self.epoch != sealed + 1 {
                        return Err(ConvergenceFailure {
                            trial: 0,
                            reason: format!(
                                "recovery did not durably advance the epoch \
                                 (sealed {} then recovered to {})",
                                sealed, self.epoch
                            ),
                        });
                    }
                }
                Err(f) => {
                    return Err(ConvergenceFailure {
                        trial: 0,
                        reason: format!("re-recovery of a recovered log failed: {:?}", f.kind),
                    });
                }
            }
        }

        let mut trials = 0u64;
        for i in 0..device_ops {
            self.disk.restore(&image);
            <Self as LogBackend<A>>::crash(self);
            self.disk.arm_crash_at_op(i);
            let mut out = <Self as LogBackend<A>>::recover(self, policy);
            if matches!(&out, Err(f) if f.kind == StoreFailureKind::Device(DiskError::Crashed)) {
                // The nested crash fired mid-recovery: power-cycle the
                // device and recover from whatever the first attempt left.
                <Self as LogBackend<A>>::crash(self);
                out = <Self as LogBackend<A>>::recover(self, policy);
            }
            trials += 1;
            if let Err(f) = &out {
                if matches!(f.kind, StoreFailureKind::Device(_)) {
                    return Err(ConvergenceFailure {
                        trial: i,
                        reason: format!("nested-crash trial could not complete: {:?}", f.kind),
                    });
                }
            }
            let key = self.outcome_key(&out);
            if key != base_key {
                return Err(ConvergenceFailure {
                    trial: i,
                    reason: format!("outcome diverged from baseline: {key} vs {base_key}"),
                });
            }
        }

        // Leave the backend exactly as a caller that just recovered from
        // the snapshot would find it.
        self.disk.restore(&image);
        <Self as LogBackend<A>>::crash(self);
        let _ = <Self as LogBackend<A>>::recover(self, policy);
        Ok(ConvergenceReport { trials, device_ops })
    }

    fn device_op_count(&self) -> u64 {
        self.disk.device_ops()
    }

    fn arm_crash_at_op(&mut self, n: u64) -> bool {
        self.disk.arm_crash_at_op(n);
        true
    }

    fn image_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Cursor state first: two WALs with the same durable bytes but
        // different epochs or head positions append (and tear) differently.
        self.epoch.hash(&mut h);
        self.seg.hash(&mut h);
        self.head.hash(&mut h);
        self.requires_checkpoint.hash(&mut h);
        self.txn_floor.hash(&mut h);
        self.next_exec_seq.hash(&mut h);
        self.next_batch_id.hash(&mut h);
        let img = self.disk.snapshot();
        for (sector, bytes) in img.sectors() {
            sector.hash(&mut h);
            bytes.hash(&mut h);
        }
        for sector in img.torn_sectors() {
            sector.hash(&mut h);
        }
        h.finish()
    }

    fn stats(&self) -> StoreStats {
        let mut s = self.stats;
        s.add(&self.detected);
        s
    }

    fn storage_bits(&self) -> u64 {
        self.disk.durable_bits()
    }

    fn name(&self) -> &'static str {
        "disk"
    }

    fn wal_inspection(&self) -> Option<String> {
        Some(crate::inspect::inspect_wal::<A>(&self.disk, &self.cfg).to_json())
    }

    fn inspection_agrees_with_recovery(&self, policy: TailPolicy) -> Option<Result<(), String>> {
        let ins = crate::inspect::inspect_wal::<A>(&self.disk, &self.cfg);
        let mut probe = self.clone();
        probe.crash();
        let check = match probe.recover(policy) {
            Ok(out) => [
                (ins.damage != out.scan.damage)
                    .then(|| format!("damage: {} vs {}", ins.damage, out.scan.damage)),
                (ins.frames != out.scan.frames)
                    .then(|| format!("frames: {} vs {}", ins.frames, out.scan.frames)),
                (ins.sectors != out.scan.sectors)
                    .then(|| format!("sectors: {} vs {}", ins.sectors, out.scan.sectors)),
                (ins.detections != out.scan.detections).then(|| "detections differ".to_string()),
                (ins.txn_floor != out.txn_floor)
                    .then(|| format!("txn_floor: {} vs {}", ins.txn_floor, out.txn_floor)),
                (ins.next_exec_seq != out.next_exec_seq).then(|| {
                    format!("next_exec_seq: {} vs {}", ins.next_exec_seq, out.next_exec_seq)
                }),
                (ins.replay_records != out.records.len() as u64).then(|| {
                    format!("replay_records: {} vs {}", ins.replay_records, out.records.len())
                }),
            ]
            .into_iter()
            .flatten()
            .next(),
            Err(fail) => [
                (ins.damage != fail.report.damage).then(|| {
                    format!("damage on refusal: {} vs {}", ins.damage, fail.report.damage)
                }),
                (ins.detections != fail.report.detections)
                    .then(|| "detections differ on refusal".to_string()),
            ]
            .into_iter()
            .flatten()
            .next(),
        };
        Some(match check {
            Some(msg) => Err(msg),
            None => Ok(()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{BankAccount, BankInv, BankResp};
    use ccr_core::adt::Op;
    use ccr_core::ids::ObjectId;

    type Wal = WalBackend<BankAccount>;

    fn dep(amount: u64) -> Op<BankAccount> {
        Op::new(BankInv::Deposit(amount), BankResp::Ok)
    }

    fn rec(floor: u32, seq0: u64, amounts: &[u64]) -> CommitRecord<BankAccount> {
        CommitRecord {
            floor,
            ops: amounts
                .iter()
                .enumerate()
                .map(|(i, &a)| (seq0 + i as u64, ObjectId(0), dep(a)))
                .collect(),
        }
    }

    fn wal() -> Wal {
        Wal::new(WalConfig::default())
    }

    #[test]
    fn prepare_survives_crash_as_in_doubt_until_decided() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_prepare(11, &rec(2, 1, &[3])).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5])]);
        assert_eq!(out.in_doubt, vec![(11, rec(2, 1, &[3]))]);
        assert!(out.decisions.is_empty());
        // The in-doubt record's floors bind: ids and exec seqs it holds must
        // not be reissued while the outcome is open.
        assert_eq!(out.txn_floor, 2);
        assert_eq!(out.next_exec_seq, 2);

        // Decide commit: the record enters the replay suffix at the decide
        // position and the doubt clears.
        w.append_decision(11, true).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5]), rec(2, 1, &[3])]);
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.decisions, vec![(11, true)]);
    }

    #[test]
    fn decide_abort_drops_the_prepared_record() {
        let mut w = wal();
        w.append_prepare(3, &rec(1, 0, &[7])).unwrap();
        w.append_decision(3, false).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert!(out.records.is_empty());
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.decisions, vec![(3, false)]);
    }

    #[test]
    fn torn_prepare_discards_to_presumed_abort() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        // A prepare fat enough to span sectors, so a sector tear can cut it.
        w.append_prepare(11, &rec(2, 1, &[3, 4, 6, 8])).unwrap();
        assert!(w.tear_last_flush(1));
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.report.damage, "torn-tail");
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        // The torn prepare is gone entirely: no doubt, no replay — exactly
        // the abort presumed-abort promises for an unacknowledged vote.
        assert_eq!(out.records, vec![rec(1, 0, &[5])]);
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.txn_floor, 1);
    }

    #[test]
    fn append_crash_recover_round_trips() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3, 4])).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5]), rec(2, 1, &[3, 4])]);
        assert!(out.checkpoint.is_none());
        assert_eq!(out.txn_floor, 2);
        assert_eq!(out.next_exec_seq, 3);
        assert_eq!(out.stats.recoveries, 1);
        assert_eq!(out.scan.damage, "clean");
        assert!(out.scan.detections.is_empty());
        // A second crash+recover sees the same records and the epoch advance.
        w.crash();
        let again = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.stats.recoveries, 2);
    }

    #[test]
    fn log_rolls_across_segments() {
        let mut w = wal();
        for i in 0..40u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        assert!(w.seg > 0, "40 two-sector commits must roll a 64-sector segment");
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records.len(), 40);
        assert_eq!(out.txn_floor, 40);
        assert!(out.scan.segments > 1);
    }

    #[test]
    fn torn_tail_is_refused_by_strict_and_discarded_by_discard_tail() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        assert!(w.tear_last_flush(1), "a two-sector commit can lose one sector");
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert!(matches!(err.kind, StoreFailureKind::Torn { record: 1, expected: 2, found: 1 }));
        assert_eq!(err.report.damage, "torn-tail");
        w.crash();
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5])]);
        assert_eq!(out.txn_floor, 1);
        assert!(out.stats.sector_tears >= 1);
        // The discarded image is clean now.
        w.crash();
        assert_eq!(w.recover(TailPolicy::Strict).unwrap().records.len(), 1);
    }

    #[test]
    fn reordered_flush_is_a_discardable_hole() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        assert!(w.reorder_last_flush(), "a two-sector commit flush can reorder");
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.report.damage, "torn-tail");
        assert!(matches!(err.report.detections[0], Detection::MissingData { .. }));
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5])]);
        // One physical fault, two scans (the Strict refusal re-detected the
        // same hole): still one count.
        assert_eq!(out.stats.reordered_flushes, 1);
    }

    #[test]
    fn headers_and_checkpoints_are_not_tearable() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        let truncated = w
            .write_checkpoint(&CheckpointImage {
                base_records: 1,
                txn_floor: 1,
                next_exec_seq: 1,
                states: vec![(ObjectId(0), 5u64)],
            })
            .unwrap();
        assert_eq!(truncated, 0, "checkpoint in segment 0 truncates nothing");
        // Last flush is the header rewrite — not a commit, so storage
        // tear/reorder faults must degrade.
        assert!(!w.tear_last_flush(1));
        assert!(!w.reorder_last_flush());
    }

    #[test]
    fn checkpoint_truncates_and_recovery_replays_from_it() {
        let mut w = wal();
        for i in 0..40u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        let seg_before = w.seg;
        assert!(seg_before > 0);
        let truncated = w
            .write_checkpoint(&CheckpointImage {
                base_records: 40,
                txn_floor: 40,
                next_exec_seq: 40,
                states: vec![(ObjectId(0), 40u64)],
            })
            .unwrap();
        assert!(truncated >= 1, "earlier segments must be reclaimed");
        w.append_commit(&rec(41, 40, &[2])).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        let cp = out.checkpoint.expect("checkpoint survives");
        assert_eq!(cp.states, vec![(ObjectId(0), 40u64)]);
        assert_eq!(cp.base_records, 40);
        assert_eq!(out.records, vec![rec(41, 40, &[2])]);
        assert_eq!(out.txn_floor, 41);
        assert_eq!(out.next_exec_seq, 41);
        assert_eq!(out.stats.checkpoints, 1);
    }

    #[test]
    fn discarding_a_needed_checkpoint_fails_loudly() {
        let mut w = wal();
        for i in 0..40u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        assert!(
            w.write_checkpoint(&CheckpointImage {
                base_records: 40,
                txn_floor: 40,
                next_exec_seq: 40,
                states: vec![(ObjectId(0), 40u64)],
            })
            .unwrap()
                >= 1
        );
        // Simulate losing the checkpoint frame itself: delete every data
        // sector of the current segment, leaving only its header (which
        // carries requires_checkpoint). DiscardTail must refuse to start
        // cold — the truncated prefix is unrecoverable without the
        // checkpoint.
        let base = w.seg * w.cfg.seg_sectors + w.header_sectors();
        let doomed: Vec<u64> = w.disk.durable_sectors().filter(|&s| s >= base).collect();
        for s in doomed {
            w.disk.delete(s);
        }
        w.crash();
        let err = w.recover(TailPolicy::DiscardTail).unwrap_err();
        assert!(matches!(err.kind, StoreFailureKind::Corrupt { .. }));
        assert_eq!(err.report.damage, "missing-checkpoint");
    }

    #[test]
    fn every_single_bit_flip_is_detected_under_strict() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3, 4])).unwrap();
        w.write_checkpoint(&CheckpointImage {
            base_records: 2,
            txn_floor: 2,
            next_exec_seq: 3,
            states: vec![(ObjectId(0), 12u64)],
        })
        .unwrap();
        w.append_commit(&rec(3, 3, &[7])).unwrap();
        w.crash();
        let clean = w.recover(TailPolicy::Strict).unwrap();
        let bits = w.storage_bits();
        assert!(bits > 0);
        let mut healed = clean.clone();
        for bit in 0..bits {
            assert!(w.flip_bit(bit));
            w.crash();
            let res = w.recover(TailPolicy::Strict);
            assert!(res.is_err(), "bit {bit}: flip recovered silently");
            assert_eq!(w.repair_flips(), 1);
            // Re-scan after the medium repair: detection + recovery, and the
            // detection counter is persisted by the successful scan.
            healed = w.recover(TailPolicy::Strict).unwrap();
            assert_eq!(healed.records, clean.records, "bit {bit}");
        }
        assert_eq!(healed.checkpoint, clean.checkpoint);
        // Most flips are CRC mismatches; a flip in a length field can
        // masquerade as a torn or reordered write instead. Every one of them
        // must have been detected as *something*.
        let detections = healed.stats.bitflips_detected
            + healed.stats.sector_tears
            + healed.stats.reordered_flushes;
        assert!(detections >= bits, "{detections} detections for {bits} flips");
        assert!(healed.stats.bitflips_detected > 0);
    }

    #[test]
    fn misdirected_commit_is_interior_corruption() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.disk_mut().arm_misdirect(4);
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        w.crash();
        // The frame landed 4 sectors late: a hole where it should start,
        // with a valid frame beyond it — unrecoverable under any policy.
        for policy in [TailPolicy::Strict, TailPolicy::DiscardTail] {
            w.crash();
            let err = w.recover(policy).unwrap_err();
            assert!(matches!(err.kind, StoreFailureKind::Corrupt { .. }), "{policy:?}");
            assert_eq!(err.report.damage, "interior");
        }
    }

    #[test]
    fn group_flush_round_trips_in_commit_order() {
        let mut w = wal();
        let batch = vec![rec(1, 0, &[5]), rec(2, 1, &[3]), rec(3, 2, &[7])];
        w.append_commits(&batch).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, batch);
        assert_eq!(out.txn_floor, 3);
        assert_eq!(out.next_exec_seq, 3);
        assert_eq!(out.scan.damage, "clean");
        assert!(out.scan.detections.is_empty());
    }

    #[test]
    fn a_group_of_one_is_byte_identical_to_a_plain_commit() {
        let image = |grouped: bool| {
            let mut w = wal();
            if grouped {
                w.append_commits(&[rec(1, 0, &[5])]).unwrap();
            } else {
                w.append_commit(&rec(1, 0, &[5])).unwrap();
            }
            let d = &w.disk;
            d.durable_sectors().map(|s| (s, d.read(s).unwrap().to_vec())).collect::<Vec<_>>()
        };
        assert_eq!(image(true), image(false));
    }

    #[test]
    fn torn_group_flush_keeps_an_acknowledged_free_prefix() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[9])).unwrap();
        let batch = vec![rec(2, 1, &[5]), rec(3, 2, &[3]), rec(4, 3, &[7])];
        w.append_commits(&batch).unwrap();
        // Each one-op member is exactly two sectors; losing one sector tears
        // the last member mid-frame.
        assert!(w.tear_last_flush(1));
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert!(matches!(err.kind, StoreFailureKind::Torn { .. }));
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[9]), rec(2, 1, &[5]), rec(3, 2, &[3])]);
        // The two scans re-detected the same tear: one count.
        assert_eq!(out.stats.sector_tears, 1);
        // The surviving batch prefix was rewritten in place with len = 2:
        // a fresh Strict scan is clean.
        w.crash();
        let again = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.scan.damage, "clean");
    }

    #[test]
    fn frame_aligned_batch_tear_is_a_torn_batch() {
        let mut w = wal();
        let batch = vec![rec(1, 0, &[5]), rec(2, 1, &[3]), rec(3, 2, &[7])];
        w.append_commits(&batch).unwrap();
        // Tear exactly the last member's two sectors: every surviving frame
        // is well-formed, but the batch headers say one record is missing.
        assert!(w.tear_last_flush(2));
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.report.damage, "torn-batch");
        assert!(matches!(err.kind, StoreFailureKind::Torn { expected: 3, found: 2, .. }));
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5]), rec(2, 1, &[3])]);
        assert_eq!(out.stats.sector_tears, 1);
        w.crash();
        let again = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.scan.damage, "clean");
    }

    #[test]
    fn reordered_group_flush_is_a_discardable_torn_batch() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[9])).unwrap();
        w.append_commits(&[rec(2, 1, &[5]), rec(3, 2, &[3])]).unwrap();
        // The flush's head sector never lands: a hole at the first member
        // with intact same-batch frames beyond it.
        assert!(w.reorder_last_flush());
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.report.damage, "torn-batch");
        let out = w.recover(TailPolicy::DiscardTail).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[9])]);
        assert_eq!(out.stats.reordered_flushes, 1);
        w.crash();
        assert_eq!(w.recover(TailPolicy::Strict).unwrap().scan.damage, "clean");
    }

    #[test]
    fn crc_damage_behind_intact_batch_frames_stays_interior() {
        let mut w = wal();
        w.append_commits(&[rec(1, 0, &[5]), rec(2, 1, &[3]), rec(3, 2, &[7])]).unwrap();
        // Flip a payload bit of the *first* member (sector 3 of the image:
        // three header sectors, then two sectors per member). The later
        // members stay intact — they were fsync-acknowledged, so no policy
        // may discard them to "repair" the batch.
        assert!(w.flip_bit((3 * 32 + 20) * 8));
        for policy in [TailPolicy::Strict, TailPolicy::DiscardTail] {
            w.crash();
            let err = w.recover(policy).unwrap_err();
            assert!(matches!(err.kind, StoreFailureKind::Corrupt { .. }), "{policy:?}");
            assert_eq!(err.report.damage, "interior", "{policy:?}");
        }
    }

    #[test]
    fn group_flush_rolls_across_segments() {
        let mut w = wal();
        // Fill most of segment 0, then flush a batch too big for what's left.
        for i in 0..25u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        let batch: Vec<_> = (0..10u32).map(|i| rec(26 + i, 25 + i as u64, &[2])).collect();
        w.append_commits(&batch).unwrap();
        assert!(w.seg > 0, "the batch must roll into a new segment");
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records.len(), 35);
        assert_eq!(out.records[25..], batch);
        assert_eq!(out.scan.damage, "clean");
    }

    #[test]
    fn same_operations_produce_identical_images_and_reports() {
        let run = || {
            let mut w = wal();
            for i in 0..10u32 {
                w.append_commit(&rec(i + 1, i as u64, &[1, 2])).unwrap();
            }
            w.tear_last_flush(1);
            w.crash();
            let out = w.recover(TailPolicy::DiscardTail).unwrap();
            let image: Vec<(u64, Vec<u8>)> = {
                let d = &w.disk;
                d.durable_sectors().map(|s| (s, d.read(s).unwrap().to_vec())).collect()
            };
            (out.records, out.scan, image)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn transient_errors_are_retried_with_deterministic_backoff() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        assert!(w.arm_transient_io(2));
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        // Both armed errors hit the first checked op; the default policy
        // (base 2, doubling) absorbed them for 2 + 4 logical ticks.
        let retries = w.drain_retries();
        assert_eq!(retries, vec![RetryRecord { attempts: 2, backoff: 6, ok: true }]);
        assert!(w.drain_retries().is_empty(), "drain empties the buffer");
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5]), rec(2, 1, &[3])]);
    }

    #[test]
    fn exhausted_retries_surface_and_roll_back_the_append() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        assert!(w.arm_transient_io(64));
        let err = w.append_commit(&rec(2, 1, &[3])).unwrap_err();
        assert_eq!(err.kind, StoreFailureKind::Device(DiskError::Transient));
        assert_eq!(err.report.damage, "device");
        let retries = w.drain_retries();
        assert_eq!(retries, vec![RetryRecord { attempts: 4, backoff: 30, ok: false }]);
        // The reported failure promised "nothing durable": after healing,
        // recovery sees only the first record, and appends work again.
        assert!(w.heal_device());
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records, vec![rec(1, 0, &[5])]);
        w.append_commit(&rec(2, 1, &[3])).unwrap();
    }

    #[test]
    fn full_device_refuses_appends_until_healed() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        assert!(w.set_device_full(true));
        let err = w.append_commit(&rec(2, 1, &[3])).unwrap_err();
        assert_eq!(err.kind, StoreFailureKind::Device(DiskError::Full));
        // A full device fails fast — no retry can help, so none is spent.
        assert!(w.drain_retries().is_empty());
        // Recovery also refuses: its epoch-bump seal is a write. Healing
        // the device lets both recovery and appends through again.
        w.crash();
        let err = w.recover(TailPolicy::Strict).unwrap_err();
        assert_eq!(err.kind, StoreFailureKind::Device(DiskError::Full));
        assert!(w.heal_device());
        w.crash();
        assert_eq!(w.recover(TailPolicy::Strict).unwrap().records.len(), 1);
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        w.crash();
        assert_eq!(w.recover(TailPolicy::Strict).unwrap().records.len(), 2);
    }

    #[test]
    fn convergence_probe_passes_on_clean_and_damaged_images() {
        let mut w = wal();
        for i in 0..6u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1, 2])).unwrap();
        }
        let report = w.check_recovery_convergence(TailPolicy::Strict).unwrap();
        assert!(report.device_ops > 0, "recovery must consume device ops");
        assert_eq!(report.trials, report.device_ops);
        // A torn tail converges under DiscardTail: a nested crash at any
        // device op still ends at the same repaired image.
        w.append_commit(&rec(7, 12, &[9])).unwrap();
        assert!(w.tear_last_flush(1));
        w.crash();
        let report = w.check_recovery_convergence(TailPolicy::DiscardTail).unwrap();
        assert!(report.trials > 0);
        // The probe leaves the backend recovered and usable.
        w.append_commit(&rec(8, 13, &[1])).unwrap();
        w.crash();
        let out = w.recover(TailPolicy::Strict).unwrap();
        assert_eq!(out.records.last(), Some(&rec(8, 13, &[1])));
    }

    #[test]
    fn convergence_probe_spans_checkpoint_truncation() {
        let mut w = wal();
        for i in 0..30u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        let truncated = w
            .write_checkpoint(&CheckpointImage {
                base_records: 30,
                txn_floor: 30,
                next_exec_seq: 30,
                states: vec![(ObjectId(0), 30u64)],
            })
            .unwrap();
        assert!(truncated >= 1, "30 commits must span a segment boundary");
        w.append_commit(&rec(31, 30, &[2])).unwrap();
        let report = w.check_recovery_convergence(TailPolicy::Strict).unwrap();
        assert!(report.trials > 0);
    }

    #[test]
    fn skipping_the_epoch_bump_is_caught_by_the_probe() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.set_skip_epoch_bump(true);
        let err = w.check_recovery_convergence(TailPolicy::Strict).unwrap_err();
        assert!(err.reason.contains("epoch"), "unexpected reason: {}", err.reason);
    }

    #[test]
    fn probe_refuses_an_unhealthy_device() {
        let mut w = wal();
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.set_device_full(true);
        let err = w.check_recovery_convergence(TailPolicy::Strict).unwrap_err();
        assert!(err.reason.contains("unhealthy"), "unexpected reason: {}", err.reason);
    }
}
