//! Byte codec for durable records, plus the CRC32 integrity check.
//!
//! The container has no crates.io access, so serialization is hand-rolled: a
//! minimal [`Persist`] trait (fixed-endian, length-prefixed, no schema
//! evolution — the log format is versioned by the frame magic instead) with
//! implementations for the primitive types the WAL persists and for the ADT
//! payload types of the workloads that run on the durable stack
//! ([`ccr_adt::bank`], [`ccr_adt::escrow`]).
//!
//! The CRC is the IEEE 802.3 polynomial (the one `crc32fast` implements),
//! table-driven and computed over the *entire sector-aligned frame extent*
//! including zero padding — so any single-bit flip anywhere inside a frame's
//! sectors, padding included, changes the checksum (satellite: corruption
//! exhaustion).

use ccr_core::adt::{Adt, Op};
use ccr_core::ids::{ObjectId, TxnId};

/// IEEE CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 of `data` (same polynomial and pre/post-conditioning as
/// `crc32fast` / zlib).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Fixed-endian byte serialization for durable records.
///
/// `decode` consumes from `buf` at `*pos`, advancing it past the value;
/// `None` means the bytes are structurally invalid (truncated or a bad tag).
/// Structural validation is best-effort — the WAL's CRC is the integrity
/// authority; `decode` only needs to never panic on arbitrary bytes.
pub trait Persist: Sized {
    /// Append this value's byte form to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Parse one value from `buf` at `*pos`, advancing the cursor.
    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    if end > buf.len() {
        return None;
    }
    let s = &buf[*pos..end];
    *pos = end;
    Some(s)
}

impl Persist for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        take(buf, pos, 1).map(|b| b[0])
    }
}

impl Persist for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        take(buf, pos, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
}

impl Persist for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        take(buf, pos, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

impl Persist for ObjectId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        u32::decode(buf, pos).map(ObjectId)
    }
}

impl Persist for TxnId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        u32::decode(buf, pos).map(TxnId)
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let n = u32::decode(buf, pos)? as usize;
        // Each element takes at least one byte; reject absurd lengths before
        // allocating (arbitrary corrupt bytes must never OOM the scanner).
        if n > buf.len().saturating_sub(*pos) {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(buf, pos)?);
        }
        Some(v)
    }
}

impl<S: Persist, T: Persist> Persist for (S, T) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((S::decode(buf, pos)?, T::decode(buf, pos)?))
    }
}

impl<S: Persist, T: Persist, U: Persist> Persist for (S, T, U) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((S::decode(buf, pos)?, T::decode(buf, pos)?, U::decode(buf, pos)?))
    }
}

impl<A> Persist for Op<A>
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.inv.encode(out);
        self.resp.encode(out);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(Op { inv: A::Invocation::decode(buf, pos)?, resp: A::Response::decode(buf, pos)? })
    }
}

impl Persist for ccr_adt::bank::BankInv {
    fn encode(&self, out: &mut Vec<u8>) {
        use ccr_adt::bank::BankInv::*;
        match self {
            Deposit(i) => {
                out.push(0);
                i.encode(out);
            }
            Withdraw(i) => {
                out.push(1);
                i.encode(out);
            }
            Balance => out.push(2),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use ccr_adt::bank::BankInv::*;
        match u8::decode(buf, pos)? {
            0 => Some(Deposit(u64::decode(buf, pos)?)),
            1 => Some(Withdraw(u64::decode(buf, pos)?)),
            2 => Some(Balance),
            _ => None,
        }
    }
}

impl Persist for ccr_adt::bank::BankResp {
    fn encode(&self, out: &mut Vec<u8>) {
        use ccr_adt::bank::BankResp::*;
        match self {
            Ok => out.push(0),
            No => out.push(1),
            Val(i) => {
                out.push(2);
                i.encode(out);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use ccr_adt::bank::BankResp::*;
        match u8::decode(buf, pos)? {
            0 => Some(Ok),
            1 => Some(No),
            2 => Some(Val(u64::decode(buf, pos)?)),
            _ => None,
        }
    }
}

impl Persist for ccr_adt::escrow::EscrowInv {
    fn encode(&self, out: &mut Vec<u8>) {
        use ccr_adt::escrow::EscrowInv::*;
        match self {
            Credit(i) => {
                out.push(0);
                i.encode(out);
            }
            Debit(i) => {
                out.push(1);
                i.encode(out);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use ccr_adt::escrow::EscrowInv::*;
        match u8::decode(buf, pos)? {
            0 => Some(Credit(u64::decode(buf, pos)?)),
            1 => Some(Debit(u64::decode(buf, pos)?)),
            _ => None,
        }
    }
}

impl Persist for ccr_adt::escrow::EscrowResp {
    fn encode(&self, out: &mut Vec<u8>) {
        use ccr_adt::escrow::EscrowResp::*;
        match self {
            Ok => out.push(0),
            No => out.push(1),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use ccr_adt::escrow::EscrowResp::*;
        match u8::decode(buf, pos)? {
            0 => Some(Ok),
            1 => Some(No),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{BankInv, BankResp};

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn every_bit_flip_changes_the_crc() {
        let data = b"the impact of recovery on concurrency control".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn round_trips() {
        fn rt<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(T::decode(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "decode must consume exactly what encode wrote");
        }
        rt(0xDEAD_BEEFu32);
        rt(u64::MAX);
        rt(ObjectId(7));
        rt(TxnId(3));
        rt(vec![1u64, 2, 3]);
        rt((ObjectId(1), 9u64));
        rt(BankInv::Deposit(5));
        rt(BankInv::Withdraw(2));
        rt(BankInv::Balance);
        rt(BankResp::Val(11));
        rt(ccr_adt::escrow::EscrowInv::Debit(4));
        rt(ccr_adt::escrow::EscrowResp::No);
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        let garbage = [0xFFu8; 16];
        let mut pos = 0;
        assert_eq!(BankInv::decode(&garbage, &mut pos), None);
        let mut pos = 0;
        // A length prefix larger than the buffer must be rejected, not
        // allocated.
        assert_eq!(<Vec<u64>>::decode(&garbage, &mut pos), None);
        let mut pos = 15;
        assert_eq!(u64::decode(&garbage, &mut pos), None);
    }
}
