//! Offline WAL forensics: a read-only walk of a [`SimDisk`] image that
//! lists every segment and frame, re-derives the recovery scanner's damage
//! classification, and renders it all as deterministic JSON — without
//! mutating the image or ticking a single checked device op.
//!
//! [`inspect_wal`] mirrors the classification rules of
//! [`LogBackend::recover`](crate::LogBackend::recover) (see `wal.rs`) over
//! raw sector reads. The invariant the workload tests pin: for any device
//! image the simulator produces, `inspect_wal(...).damage` equals the
//! `ScanReport::damage` a `TailPolicy::DiscardTail` recovery of the same
//! image reports. (The inspector follows the repairing policy's flow — a
//! `Strict` scan refuses at the first damage classification and so never
//! reaches the missing-checkpoint judgement; `DiscardTail` agrees with it
//! everywhere else.) Where recovery stops decoding at the first damage
//! site, the inspector keeps walking and lists the frames *beyond* it too —
//! that forensic tail is exactly what the scanner's probe uses to tell a
//! torn group flush from interior corruption.

use std::collections::{BTreeMap, BTreeSet};

use ccr_core::adt::Adt;

use crate::backend::Detection;
use crate::codec::{crc32, Persist};
use crate::disk::{SectorRead, SimDisk};
use crate::wal::{
    decode_batch, decode_checkpoint, decode_commit, decode_decide, decode_prepare, SegHeader,
    WalConfig, FRAME_OVERHEAD, HEADER_PAYLOAD, KIND_BATCH, KIND_CHECKPOINT, KIND_COMMIT,
    KIND_DECIDE, KIND_PREPARE, KIND_SEG_HEADER, MAGIC,
};

/// One frame (or damaged frame position) in the listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameInfo {
    /// Absolute start sector.
    pub sector: u64,
    /// Sector footprint (0 when the frame is too damaged to size).
    pub sectors: u64,
    /// `"seg-header"`, `"commit"`, `"batch"`, `"checkpoint"`, `"prepare"`,
    /// `"decide"`, or `"unknown"` when the kind byte itself is unreadable.
    pub kind: &'static str,
    /// `"valid"`, `"torn"`, or `"corrupt"` — status per the scanner's rules.
    pub status: &'static str,
    /// Whether the frame lies beyond the first damage site (recovery never
    /// replays it; the probe uses it for classification only).
    pub beyond_damage: bool,
    /// Decoded summary (floors, op counts, batch id/pos/len, ...). ASCII
    /// `key=value` pairs only, safe to embed in JSON unescaped.
    pub detail: String,
}

/// One segment of the log: its decoded header (if intact) and its frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment index (absolute sector / `seg_sectors`).
    pub index: u64,
    /// The decoded segment header, `None` when damaged.
    pub header: Option<SegHeader>,
    /// Frames in walk order, including any beyond the damage site.
    pub frames: Vec<FrameInfo>,
}

/// One group-commit batch seen in the replayable prefix: how many members
/// survived of the `len` the flush promised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRun {
    /// Epoch-salted flush id.
    pub id: u64,
    /// Members present in the walk.
    pub seen: u32,
    /// Members the batch headers promise.
    pub len: u32,
}

/// Everything the inspector derives from one device image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalInspection {
    /// Device sector size in bytes.
    pub sector_size: u64,
    /// Sectors per segment.
    pub seg_sectors: u64,
    /// Per-segment map with frame listings.
    pub segments: Vec<SegmentInfo>,
    /// Frames recovery would decode (headers + replayable data frames; the
    /// forensic tail beyond a damage site is excluded, matching
    /// `ScanReport::frames`).
    pub frames: u64,
    /// Durable sectors in the image (matches `ScanReport::sectors`).
    pub sectors: u64,
    /// Damage sites, in scan order (matches `ScanReport::detections`).
    pub detections: Vec<Detection>,
    /// The damage classification a recovery scan of this image reports.
    pub damage: &'static str,
    /// Whether a valid checkpoint frame survives in the replayable prefix.
    pub checkpoint: bool,
    /// Commit records recovery would replay (after the newest checkpoint).
    pub replay_records: u64,
    /// Transaction-id floor a successful recovery would resume from.
    pub txn_floor: u32,
    /// Execution-sequence floor a successful recovery would resume from.
    pub next_exec_seq: u64,
    /// Group-commit batch runs in the replayable prefix, in first-seen
    /// order.
    pub batches: Vec<BatchRun>,
    /// Gtids of prepared 2PC transactions with no durable decision in the
    /// replayable prefix — in doubt, sorted (matches the gtids of
    /// `RecoveredLog::in_doubt`).
    pub in_doubt: Vec<u64>,
    /// Durable 2PC decisions in append order, `true` = commit (matches
    /// `RecoveredLog::decisions`).
    pub decisions: Vec<(u64, bool)>,
}

/// Raw, unchecked view of one frame position (mirror of the scanner's
/// `FrameRead`, but over `read_classified` — never a checked device op).
enum RawFrame {
    Absent,
    Torn { expected: u64, found: u64 },
    Corrupt { kind: &'static str },
    Valid { kind: u8, payload: Vec<u8>, sectors: u64 },
}

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_SEG_HEADER => "seg-header",
        KIND_COMMIT => "commit",
        KIND_CHECKPOINT => "checkpoint",
        KIND_BATCH => "batch",
        KIND_PREPARE => "prepare",
        KIND_DECIDE => "decide",
        _ => "unknown",
    }
}

/// Read the frame starting at `pos` exactly the way the recovery scanner
/// does, using only raw reads.
fn read_frame_raw(disk: &SimDisk, cfg: &WalConfig, pos: u64, seg_end: u64) -> RawFrame {
    let first = match disk.read_classified(pos) {
        SectorRead::Data(bytes) => bytes,
        SectorRead::Torn | SectorRead::Absent => return RawFrame::Absent,
    };
    if first.len() < FRAME_OVERHEAD {
        return RawFrame::Corrupt { kind: "unknown" };
    }
    let magic = u32::from_le_bytes(first[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return RawFrame::Corrupt { kind: "unknown" };
    }
    let kind = first[4];
    if !(KIND_SEG_HEADER..=KIND_DECIDE).contains(&kind) {
        return RawFrame::Corrupt { kind: "unknown" };
    }
    let len = u32::from_le_bytes(first[5..9].try_into().expect("4 bytes")) as usize;
    let Some(total) = FRAME_OVERHEAD.checked_add(len) else {
        return RawFrame::Corrupt { kind: kind_name(kind) };
    };
    let sectors = total.div_ceil(cfg.sector) as u64;
    if pos + sectors > seg_end {
        return RawFrame::Corrupt { kind: kind_name(kind) };
    }
    let mut buf = Vec::with_capacity(sectors as usize * cfg.sector);
    for (i, s) in (pos..pos + sectors).enumerate() {
        match disk.read(s) {
            Some(bytes) => buf.extend_from_slice(bytes),
            None => return RawFrame::Torn { expected: sectors, found: i as u64 },
        }
    }
    let stored = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes"));
    buf[9..13].fill(0);
    if crc32(&buf) != stored {
        return RawFrame::Corrupt { kind: kind_name(kind) };
    }
    RawFrame::Valid { kind, payload: buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len].to_vec(), sectors }
}

/// A decoded data frame of the replayable prefix (pre-damage walk only).
enum Decoded {
    Commit { floor: u32, max_seq: Option<u64>, batch: Option<(u64, u32, u32)> },
    Checkpoint { txn_floor: u32, next_exec_seq: u64 },
    Prepare { gtid: u64, floor: u32, max_seq: Option<u64> },
    Decide { gtid: u64, commit: bool },
}

/// Walk a WAL device image and derive the full forensic report. Read-only:
/// takes `&SimDisk`, never mutates, never ticks `device_ops`.
pub fn inspect_wal<A>(disk: &SimDisk, cfg: &WalConfig) -> WalInspection
where
    A: Adt,
    A::Invocation: Persist,
    A::Response: Persist,
    A::State: Persist,
{
    let seg_sectors = cfg.seg_sectors;
    let header_sectors = (FRAME_OVERHEAD + HEADER_PAYLOAD).div_ceil(cfg.sector) as u64;
    let mut segs: Vec<u64> = disk.durable_sectors().map(|s| s / seg_sectors).collect();
    segs.dedup();

    let mut out = WalInspection {
        sector_size: cfg.sector as u64,
        seg_sectors,
        segments: Vec::new(),
        frames: 0,
        sectors: disk.durable_sectors().count() as u64,
        detections: Vec::new(),
        damage: "clean",
        checkpoint: false,
        replay_records: 0,
        txn_floor: 0,
        next_exec_seq: 0,
        batches: Vec::new(),
        in_doubt: Vec::new(),
        decisions: Vec::new(),
    };
    if segs.is_empty() {
        return out;
    }

    let mut governing = SegHeader::default();
    let mut decoded: Vec<Decoded> = Vec::new();
    // First damage site: (absolute sector, whether a tear/hole rather than
    // CRC damage) — the tear-vs-corruption split steers the torn-batch rule.
    let mut damage: Option<(u64, bool)> = None;
    // Classification state of the forensic tail beyond the damage site:
    // batch ids seen, and whether any valid non-batch frame appears.
    let mut tail_batch_ids: BTreeSet<u64> = BTreeSet::new();
    let mut tail_non_batch = false;

    for &seg_idx in &segs {
        let base = seg_idx * seg_sectors;
        let seg_end = base + seg_sectors;
        let mut seg = SegmentInfo { index: seg_idx, header: None, frames: Vec::new() };

        // The header position. Beyond a damage site the walk degenerates to
        // the probe (sector-by-sector), which visits this position too.
        if damage.is_none() {
            match read_frame_raw(disk, cfg, base, seg_end) {
                RawFrame::Valid { kind: KIND_SEG_HEADER, payload, sectors } => {
                    match SegHeader::decode(&payload) {
                        Some(h) => {
                            out.frames += 1;
                            seg.frames.push(FrameInfo {
                                sector: base,
                                sectors,
                                kind: "seg-header",
                                status: "valid",
                                beyond_damage: false,
                                detail: format!(
                                    "epoch={} seg={} requires_checkpoint={} floor={} seq={}",
                                    h.epoch,
                                    h.seg_index,
                                    h.requires_checkpoint,
                                    h.txn_floor,
                                    h.next_exec_seq
                                ),
                            });
                            seg.header = Some(h);
                            governing = h;
                        }
                        None => {
                            out.detections.push(Detection::CrcMismatch { sector: base });
                            out.damage = "corrupt-header";
                            seg.frames.push(FrameInfo {
                                sector: base,
                                sectors,
                                kind: "seg-header",
                                status: "corrupt",
                                beyond_damage: false,
                                detail: "undecodable header payload".to_string(),
                            });
                            out.segments.push(seg);
                            return finish(out, governing, decoded);
                        }
                    }
                }
                // Headers are fsynced in place; anything else here is
                // unrecoverable corruption, exactly as in the scanner.
                other => {
                    out.detections.push(Detection::CrcMismatch { sector: base });
                    out.damage = "corrupt-header";
                    let status = match other {
                        RawFrame::Torn { .. } => "torn",
                        _ => "corrupt",
                    };
                    seg.frames.push(FrameInfo {
                        sector: base,
                        sectors: 0,
                        kind: "seg-header",
                        status,
                        beyond_damage: false,
                        detail: "header position holds no valid header frame".to_string(),
                    });
                    out.segments.push(seg);
                    return finish(out, governing, decoded);
                }
            }
        }

        let mut pos = base + if damage.is_none() { header_sectors } else { 0 };
        while pos < seg_end {
            if damage.is_some() {
                // Probe mode: every sector position may start a frame; only
                // valid frames matter for classification, but list them all.
                if let RawFrame::Valid { kind, payload, sectors } =
                    read_frame_raw(disk, cfg, pos, seg_end)
                {
                    let batch = (kind == KIND_BATCH).then(|| decode_batch::<A>(&payload)).flatten();
                    let detail = match &batch {
                        Some((meta, rec)) => {
                            tail_batch_ids.insert(meta.id);
                            format!(
                                "batch_id={} pos={} len={} floor={} ops={}",
                                meta.id,
                                meta.pos,
                                meta.len,
                                rec.floor,
                                rec.ops.len()
                            )
                        }
                        None => {
                            tail_non_batch = true;
                            format!("kind={}", kind_name(kind))
                        }
                    };
                    seg.frames.push(FrameInfo {
                        sector: pos,
                        sectors,
                        kind: kind_name(kind),
                        status: "valid",
                        beyond_damage: true,
                        detail,
                    });
                }
                pos += 1;
                continue;
            }
            match read_frame_raw(disk, cfg, pos, seg_end) {
                RawFrame::Absent => {
                    // Candidate end of log: data after a hole in the same
                    // segment means the flush persisted out of order.
                    if (pos + 1..seg_end).any(|q| disk.read(q).is_some()) {
                        out.detections.push(Detection::MissingData { sector: pos });
                        damage = Some((pos, true));
                        seg.frames.push(FrameInfo {
                            sector: pos,
                            sectors: 0,
                            kind: "unknown",
                            status: "torn",
                            beyond_damage: false,
                            detail: "hole with surviving data after it".to_string(),
                        });
                        pos += 1;
                        continue;
                    }
                    // Clean tail (or clean roll into the next segment).
                    break;
                }
                RawFrame::Torn { expected, found } => {
                    out.detections.push(Detection::TornFrame { sector: pos });
                    damage = Some((pos, true));
                    seg.frames.push(FrameInfo {
                        sector: pos,
                        sectors: 0,
                        kind: "unknown",
                        status: "torn",
                        beyond_damage: false,
                        detail: format!("expected={expected} found={found}"),
                    });
                    pos += 1;
                }
                RawFrame::Corrupt { kind } => {
                    out.detections.push(Detection::CrcMismatch { sector: pos });
                    damage = Some((pos, false));
                    seg.frames.push(FrameInfo {
                        sector: pos,
                        sectors: 0,
                        kind,
                        status: "corrupt",
                        beyond_damage: false,
                        detail: "bad magic, length, or CRC".to_string(),
                    });
                    pos += 1;
                }
                RawFrame::Valid { kind, payload, sectors } => {
                    let (dec, detail) = match kind {
                        KIND_COMMIT => match decode_commit::<A>(&payload) {
                            Some(rec) => {
                                let max_seq = rec.ops.iter().map(|(s, _, _)| s + 1).max();
                                let detail = format!("floor={} ops={}", rec.floor, rec.ops.len());
                                (
                                    Some(Decoded::Commit {
                                        floor: rec.floor,
                                        max_seq,
                                        batch: None,
                                    }),
                                    detail,
                                )
                            }
                            None => (None, String::new()),
                        },
                        KIND_BATCH => match decode_batch::<A>(&payload) {
                            Some((meta, rec)) => {
                                let max_seq = rec.ops.iter().map(|(s, _, _)| s + 1).max();
                                let detail = format!(
                                    "batch_id={} pos={} len={} floor={} ops={}",
                                    meta.id,
                                    meta.pos,
                                    meta.len,
                                    rec.floor,
                                    rec.ops.len()
                                );
                                (
                                    Some(Decoded::Commit {
                                        floor: rec.floor,
                                        max_seq,
                                        batch: Some((meta.id, meta.pos, meta.len)),
                                    }),
                                    detail,
                                )
                            }
                            None => (None, String::new()),
                        },
                        KIND_CHECKPOINT => match decode_checkpoint::<A>(&payload) {
                            Some(img) => {
                                let detail = format!(
                                    "base_records={} floor={} seq={} states={}",
                                    img.base_records,
                                    img.txn_floor,
                                    img.next_exec_seq,
                                    img.states.len()
                                );
                                (
                                    Some(Decoded::Checkpoint {
                                        txn_floor: img.txn_floor,
                                        next_exec_seq: img.next_exec_seq,
                                    }),
                                    detail,
                                )
                            }
                            None => (None, String::new()),
                        },
                        KIND_PREPARE => match decode_prepare::<A>(&payload) {
                            Some((gtid, rec)) => {
                                let max_seq = rec.ops.iter().map(|(s, _, _)| s + 1).max();
                                let detail = format!(
                                    "gtid={} floor={} ops={}",
                                    gtid,
                                    rec.floor,
                                    rec.ops.len()
                                );
                                (Some(Decoded::Prepare { gtid, floor: rec.floor, max_seq }), detail)
                            }
                            None => (None, String::new()),
                        },
                        KIND_DECIDE => match decode_decide(&payload) {
                            Some((gtid, commit)) => {
                                let detail = format!("gtid={gtid} commit={commit}");
                                (Some(Decoded::Decide { gtid, commit }), detail)
                            }
                            None => (None, String::new()),
                        },
                        // A header frame in the data area: a misdirected
                        // write. The scanner classifies it as corruption.
                        _ => (None, String::new()),
                    };
                    match dec {
                        Some(d) => {
                            decoded.push(d);
                            out.frames += 1;
                            seg.frames.push(FrameInfo {
                                sector: pos,
                                sectors,
                                kind: kind_name(kind),
                                status: "valid",
                                beyond_damage: false,
                                detail,
                            });
                            pos += sectors;
                        }
                        None => {
                            out.detections.push(Detection::CrcMismatch { sector: pos });
                            damage = Some((pos, false));
                            seg.frames.push(FrameInfo {
                                sector: pos,
                                sectors,
                                kind: kind_name(kind),
                                status: "corrupt",
                                beyond_damage: false,
                                detail: "undecodable payload".to_string(),
                            });
                            pos += 1;
                        }
                    }
                }
            }
        }
        out.segments.push(seg);
    }

    // Classify what lies beyond a damage site, mirroring the scanner's
    // probe: nothing → torn tail; all-one-batch after a tear/hole → torn
    // group flush; anything else → interior corruption.
    if let Some((_, tearlike)) = damage {
        let first_valid = out
            .segments
            .iter()
            .flat_map(|s| s.frames.iter())
            .find(|f| f.beyond_damage && f.status == "valid")
            .map(|f| f.sector);
        out.damage = match first_valid {
            None => "torn-tail",
            Some(p) => {
                if tearlike && !tail_non_batch && tail_batch_ids.len() == 1 {
                    "torn-batch"
                } else {
                    out.detections.push(Detection::InteriorFrame { sector: p });
                    "interior"
                }
            }
        };
        return finish(out, governing, decoded);
    }

    // No physical damage: judge the trailing batch run for a frame-aligned
    // tear (a group flush whose final members never landed).
    let mut run: Option<(u64, u32, u32, bool)> = None; // (id, len, next, aligned)
    for d in &decoded {
        match d {
            Decoded::Commit { batch: Some((id, bpos, blen)), .. } => match &mut run {
                Some((rid, rlen, next, _)) if *id == *rid && *blen == *rlen && *bpos == *next => {
                    *next += 1;
                }
                _ => run = Some((*id, *blen, *bpos + 1, *bpos == 0)),
            },
            _ => run = None,
        }
    }
    if let Some((_, len, next, aligned)) = run {
        if !aligned {
            out.damage = "interior";
            return finish(out, governing, decoded);
        }
        if next < len {
            // The detection recovery counts sits at the log end — one past
            // the last decoded frame.
            let log_end = out
                .segments
                .iter()
                .flat_map(|s| s.frames.iter())
                .filter(|f| f.status == "valid" && !f.beyond_damage)
                .map(|f| f.sector + f.sectors)
                .max()
                .unwrap_or(0);
            out.detections.push(Detection::TornFrame { sector: log_end });
            out.damage = "torn-batch";
            return finish(out, governing, decoded);
        }
    }

    finish(out, governing, decoded)
}

/// Fold the decoded prefix into the replay summary (checkpoint base, record
/// suffix, floors, batch runs) and close the report — shared by every exit
/// path so damaged images still report what *would* replay.
fn finish(mut out: WalInspection, governing: SegHeader, decoded: Vec<Decoded>) -> WalInspection {
    let mut checkpoint: Option<(u32, u64)> = None;
    let mut records: Vec<(u32, Option<u64>)> = Vec::new();
    let mut batches: Vec<BatchRun> = Vec::new();
    // 2PC fold, mirroring the scanner: a prepare is pending until its decide
    // frame; decide-commit enters the replay suffix at the decide position;
    // leftovers are in doubt.
    let mut pending: BTreeMap<u64, (u32, Option<u64>)> = BTreeMap::new();
    let mut decisions: Vec<(u64, bool)> = Vec::new();
    for d in &decoded {
        match d {
            Decoded::Checkpoint { txn_floor, next_exec_seq } => {
                checkpoint = Some((*txn_floor, *next_exec_seq));
                records.clear();
            }
            Decoded::Commit { floor, max_seq, batch } => {
                records.push((*floor, *max_seq));
                if let Some((id, _, len)) = batch {
                    match batches.iter_mut().find(|b| b.id == *id) {
                        Some(b) => b.seen += 1,
                        None => batches.push(BatchRun { id: *id, seen: 1, len: *len }),
                    }
                }
            }
            Decoded::Prepare { gtid, floor, max_seq } => {
                pending.insert(*gtid, (*floor, *max_seq));
            }
            Decoded::Decide { gtid, commit } => {
                decisions.push((*gtid, *commit));
                if let Some(entry) = pending.remove(gtid) {
                    if *commit {
                        records.push(entry);
                    }
                }
            }
        }
    }
    // The missing-checkpoint judgement happens after damage repair in the
    // DiscardTail flow, so it overrides the repairable damage strings; the
    // refusal classifications (interior, corrupt-header) return before it.
    if governing.requires_checkpoint
        && checkpoint.is_none()
        && matches!(out.damage, "clean" | "torn-tail" | "torn-batch")
    {
        out.damage = "missing-checkpoint";
    }
    out.checkpoint = checkpoint.is_some();
    out.replay_records = records.len() as u64;
    // Floors mirror the scanner: max over the replay suffix *and* the
    // in-doubt set (a decide-commit carries its older prepare-time floor).
    out.txn_floor = records
        .iter()
        .map(|(f, _)| *f)
        .chain(pending.values().map(|(f, _)| *f))
        .max()
        .or(checkpoint.map(|(f, _)| f))
        .unwrap_or(governing.txn_floor);
    out.next_exec_seq = records
        .iter()
        .chain(pending.values())
        .filter_map(|(_, s)| *s)
        .max()
        .or(checkpoint.map(|(_, s)| s))
        .unwrap_or(governing.next_exec_seq);
    out.batches = batches;
    out.in_doubt = pending.into_keys().collect();
    out.decisions = decisions;
    out
}

impl WalInspection {
    /// Render the whole report as deterministic JSON: fixed key order, no
    /// floats, every string either a static token or inspector-built ASCII.
    pub fn to_json(&self) -> String {
        let mut segs = Vec::new();
        for s in &self.segments {
            let frames: Vec<String> = s
                .frames
                .iter()
                .map(|f| {
                    format!(
                        "{{\"sector\":{},\"sectors\":{},\"kind\":\"{}\",\"status\":\"{}\",\
                         \"beyond_damage\":{},\"detail\":\"{}\"}}",
                        f.sector, f.sectors, f.kind, f.status, f.beyond_damage, f.detail
                    )
                })
                .collect();
            let header = match &s.header {
                Some(h) => format!(
                    "{{\"epoch\":{},\"seg_index\":{},\"requires_checkpoint\":{},\
                     \"txn_floor\":{},\"next_exec_seq\":{}}}",
                    h.epoch, h.seg_index, h.requires_checkpoint, h.txn_floor, h.next_exec_seq
                ),
                None => "null".to_string(),
            };
            segs.push(format!(
                "{{\"index\":{},\"header\":{},\"frames\":[{}]}}",
                s.index,
                header,
                frames.join(",")
            ));
        }
        let detections: Vec<String> = self
            .detections
            .iter()
            .map(|d| {
                let kind = match d {
                    Detection::TornFrame { .. } => "torn-frame",
                    Detection::MissingData { .. } => "missing-data",
                    Detection::CrcMismatch { .. } => "crc-mismatch",
                    Detection::InteriorFrame { .. } => "interior-frame",
                };
                format!("{{\"kind\":\"{}\",\"sector\":{}}}", kind, d.sector())
            })
            .collect();
        let batches: Vec<String> = self
            .batches
            .iter()
            .map(|b| format!("{{\"id\":{},\"seen\":{},\"len\":{}}}", b.id, b.seen, b.len))
            .collect();
        let in_doubt: Vec<String> = self.in_doubt.iter().map(|g| g.to_string()).collect();
        let decisions: Vec<String> = self
            .decisions
            .iter()
            .map(|(g, c)| format!("{{\"gtid\":{g},\"commit\":{c}}}"))
            .collect();
        format!(
            "{{\"sector_size\":{},\"seg_sectors\":{},\"sectors\":{},\"frames\":{},\
             \"damage\":\"{}\",\"checkpoint\":{},\"replay_records\":{},\"txn_floor\":{},\
             \"next_exec_seq\":{},\"in_doubt\":[{}],\"decisions\":[{}],\"detections\":[{}],\
             \"batches\":[{}],\"segments\":[{}]}}",
            self.sector_size,
            self.seg_sectors,
            self.sectors,
            self.frames,
            self.damage,
            self.checkpoint,
            self.replay_records,
            self.txn_floor,
            self.next_exec_seq,
            in_doubt.join(","),
            decisions.join(","),
            detections.join(","),
            batches.join(","),
            segs.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CheckpointImage, CommitRecord, LogBackend, TailPolicy};
    use crate::wal::{WalBackend, WalConfig};
    use ccr_adt::bank::{BankAccount, BankInv, BankResp};
    use ccr_core::adt::Op;
    use ccr_core::ids::ObjectId;

    type Wal = WalBackend<BankAccount>;

    fn rec(floor: u32, seq0: u64, amounts: &[u64]) -> CommitRecord<BankAccount> {
        CommitRecord {
            floor,
            ops: amounts
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    (seq0 + i as u64, ObjectId(0), Op::new(BankInv::Deposit(a), BankResp::Ok))
                })
                .collect(),
        }
    }

    fn inspect(w: &Wal) -> WalInspection {
        inspect_wal::<BankAccount>(w.disk(), &w.config())
    }

    /// Inspection of `w`'s image must agree with a real recovery scan of a
    /// clone — damage string, detections, frame counts, floors — and must
    /// not tick checked device ops on the original.
    fn assert_agrees(w: &Wal, policy: TailPolicy) {
        let ops_before = w.disk().device_ops();
        let ins = inspect(w);
        assert_eq!(w.disk().device_ops(), ops_before, "inspect must not tick checked ops");
        let mut probe = w.clone();
        probe.crash();
        match probe.recover(policy) {
            Ok(out) => {
                assert_eq!(ins.damage, out.scan.damage, "damage must agree");
                assert_eq!(ins.frames, out.scan.frames, "frame counts must agree");
                assert_eq!(ins.sectors, out.scan.sectors, "sector counts must agree");
                assert_eq!(ins.detections, out.scan.detections, "detections must agree");
                assert_eq!(ins.txn_floor, out.txn_floor, "floors must agree");
                assert_eq!(ins.next_exec_seq, out.next_exec_seq);
                assert_eq!(ins.replay_records, out.records.len() as u64);
                let gtids: Vec<u64> = out.in_doubt.iter().map(|(g, _)| *g).collect();
                assert_eq!(ins.in_doubt, gtids, "in-doubt sets must agree");
                assert_eq!(ins.decisions, out.decisions, "decision logs must agree");
            }
            Err(fail) => {
                assert_eq!(ins.damage, fail.report.damage, "damage must agree on refusal");
                assert_eq!(ins.detections, fail.report.detections);
            }
        }
    }

    #[test]
    fn clean_log_inspects_clean_and_agrees_with_recovery() {
        let mut w = Wal::new(WalConfig::default());
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3, 4])).unwrap();
        let ins = inspect(&w);
        assert_eq!(ins.damage, "clean");
        assert_eq!(ins.replay_records, 2);
        assert_eq!(ins.txn_floor, 2);
        assert_eq!(ins.next_exec_seq, 3);
        assert!(!ins.checkpoint);
        assert_eq!(ins.segments.len(), 1);
        let kinds: Vec<&str> = ins.segments[0].frames.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!["seg-header", "commit", "commit"]);
        assert_agrees(&w, TailPolicy::Strict);
    }

    #[test]
    fn rolled_and_checkpointed_images_agree_with_recovery() {
        let mut w = Wal::new(WalConfig::default());
        for i in 0..40u32 {
            w.append_commit(&rec(i + 1, i as u64, &[1])).unwrap();
        }
        w.write_checkpoint(&CheckpointImage {
            base_records: 40,
            txn_floor: 40,
            next_exec_seq: 40,
            states: vec![(ObjectId(0), 40u64)],
        })
        .unwrap();
        w.append_commit(&rec(41, 40, &[2, 3])).unwrap();
        let ins = inspect(&w);
        assert_eq!(ins.damage, "clean");
        assert!(ins.checkpoint);
        assert_eq!(ins.replay_records, 1);
        assert_agrees(&w, TailPolicy::Strict);

        assert!(w.tear_last_flush(1));
        let ins = inspect(&w);
        assert_eq!(ins.damage, "torn-tail");
        assert_agrees(&w, TailPolicy::DiscardTail);
    }

    fn batched_wal() -> Wal {
        let mut w = Wal::new(WalConfig::default());
        w.append_commit(&rec(1, 0, &[9])).unwrap();
        w.append_commits(&[rec(2, 1, &[1]), rec(3, 2, &[2]), rec(4, 3, &[3])]).unwrap();
        w
    }

    #[test]
    fn torn_group_flush_classifies_as_torn_batch() {
        let mut w = batched_wal();
        let ins = inspect(&w);
        assert_eq!(ins.damage, "clean");
        assert_eq!(ins.batches.len(), 1);
        assert_eq!((ins.batches[0].seen, ins.batches[0].len), (3, 3));

        // A frame-aligned tear: the final batch member vanishes wholly, so
        // the walk sees a well-formed log whose trailing run stops short.
        let last = ins.segments.last().unwrap().frames.last().unwrap().sectors as usize;
        assert!(w.tear_last_flush(last));
        let ins = inspect(&w);
        assert_eq!(ins.damage, "torn-batch");
        assert_agrees(&w, TailPolicy::DiscardTail);

        // A sub-frame tear of the last member: nothing valid survives
        // beyond the torn frame, so the probe classifies a torn tail.
        let mut w = batched_wal();
        assert!(w.tear_last_flush(1));
        let ins = inspect(&w);
        assert_eq!(ins.damage, "torn-tail");
        assert_agrees(&w, TailPolicy::DiscardTail);

        // A reordered batch flush: a hole at one member with later members
        // of the same batch surviving — the probe's torn-batch case.
        let mut w = batched_wal();
        assert!(w.reorder_last_flush());
        let ins = inspect(&w);
        assert_eq!(ins.damage, "torn-batch");
        assert_agrees(&w, TailPolicy::DiscardTail);
    }

    #[test]
    fn prepare_and_decide_frames_list_and_agree_with_recovery() {
        let mut w = Wal::new(WalConfig::default());
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_prepare(7, &rec(2, 1, &[3])).unwrap();
        let ins = inspect(&w);
        assert_eq!(ins.damage, "clean");
        assert_eq!(ins.in_doubt, vec![7]);
        assert_eq!(ins.replay_records, 1, "an undecided prepare must not replay");
        let kinds: Vec<&str> = ins.segments[0].frames.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!["seg-header", "commit", "prepare"]);
        assert_agrees(&w, TailPolicy::Strict);

        // The commit decision folds the prepared record into the replay
        // suffix at the decide position and clears the doubt.
        w.append_decision(7, true).unwrap();
        let ins = inspect(&w);
        assert!(ins.in_doubt.is_empty());
        assert_eq!(ins.decisions, vec![(7, true)]);
        assert_eq!(ins.replay_records, 2);
        assert_eq!(ins.txn_floor, 2);
        assert_eq!(ins.next_exec_seq, 2);
        assert_agrees(&w, TailPolicy::Strict);

        // An abort decision drops the prepared record entirely.
        let mut w = Wal::new(WalConfig::default());
        w.append_prepare(9, &rec(1, 0, &[4])).unwrap();
        w.append_decision(9, false).unwrap();
        let ins = inspect(&w);
        assert!(ins.in_doubt.is_empty());
        assert_eq!(ins.decisions, vec![(9, false)]);
        assert_eq!(ins.replay_records, 0);
        assert_agrees(&w, TailPolicy::Strict);
    }

    #[test]
    fn bit_flip_classifies_like_the_scanner_and_json_is_deterministic() {
        let mut w = Wal::new(WalConfig::default());
        w.append_commit(&rec(1, 0, &[5])).unwrap();
        w.append_commit(&rec(2, 1, &[3])).unwrap();
        assert!(w.flip_bit(700));
        assert_agrees(&w, TailPolicy::Strict);
        let a = inspect(&w).to_json();
        let b = inspect(&w).to_json();
        assert_eq!(a, b, "inspection must be byte-deterministic");
        assert!(a.starts_with("{\"sector_size\":32,"));
    }
}
