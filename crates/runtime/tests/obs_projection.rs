//! The `SystemStats` counters are maintained incrementally by the tracer's
//! `absorb` as events are emitted — and `ccr_obs::project` replays the same
//! `absorb` over the recorded event stream. These tests pin the refactor's
//! core invariant: on every scenario (policies, engines, every fault kind,
//! crash recovery) the projection of the recorded events equals the
//! incrementally maintained counters, i.e. the counters really are a pure
//! function of the trace.

use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr_core::atomicity::SystemSpec;
use ccr_core::ids::ObjectId;
use ccr_runtime::crash::DurableSystem;
use ccr_runtime::engine::{DuEngine, UipEngine};
use ccr_runtime::fault::{FaultKind, FaultPlan, FaultSpec};
use ccr_runtime::scheduler::{run, SchedulerCfg};
use ccr_runtime::script::{OpsScript, Script};
use ccr_runtime::sim::{run_sim, SimCfg};
use ccr_runtime::system::{ConflictPolicy, TxnSystem};
use ccr_runtime::threaded::{run_threaded, ThreadedCfg};
use ccr_store::{WalBackend, WalConfig};

const X: ObjectId = ObjectId::SOLE;

fn scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
    (0..n)
        .map(|_| {
            Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                as Box<dyn Script<BankAccount>>
        })
        .collect()
}

fn assert_projection_matches<A, E, C>(sys: &TxnSystem<A, E, C>)
where
    A: ccr_core::adt::Adt,
    E: ccr_runtime::engine::RecoveryEngine<A>,
    C: ccr_core::conflict::Conflict<A>,
{
    let obs = sys.obs();
    assert!(obs.record_events(), "projection needs the event stream");
    assert_eq!(
        obs.project_stats(),
        *obs.stats(),
        "projected counters must equal incrementally absorbed counters"
    );
}

#[test]
fn projection_matches_under_every_conflict_policy() {
    for policy in [ConflictPolicy::Block, ConflictPolicy::WoundWait, ConflictPolicy::NoWait] {
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc()).with_policy(policy);
        run(&mut sys, scripts(8), &SchedulerCfg { seed: 3, ..Default::default() });
        assert!(sys.stats().committed > 0);
        assert_projection_matches(&sys);
    }
}

#[test]
fn projection_matches_for_deferred_update_with_validation() {
    let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nfc());
    run(&mut sys, scripts(8), &SchedulerCfg { seed: 5, ..Default::default() });
    assert_projection_matches(&sys);
}

#[test]
fn projection_matches_across_every_fault_kind_and_crash_recovery() {
    let plan = FaultPlan::new(vec![
        FaultSpec { at_event: 2, kind: FaultKind::ForceAbort },
        FaultSpec { at_event: 5, kind: FaultKind::DelayCommit { rounds: 3 } },
        FaultSpec { at_event: 9, kind: FaultKind::TornCrash { drop_ops: 1 } },
        FaultSpec { at_event: 14, kind: FaultKind::WoundStorm },
        FaultSpec { at_event: 20, kind: FaultKind::Crash },
    ]);
    let spec = SystemSpec::single(BankAccount::default());

    let mut uip: DurableSystem<BankAccount, UipEngine<BankAccount>, _> =
        DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
    let r = run_sim(&mut uip, scripts(6), &plan, &SimCfg::default(), &spec, None).unwrap();
    assert_eq!(r.faults_injected, 5);
    assert!(uip.system().stats().crashes >= 1, "the plan's crashes must have fired");
    assert_projection_matches(uip.system());

    let mut du: DurableSystem<BankAccount, DuEngine<BankAccount>, _> =
        DurableSystem::new(BankAccount::default(), 1, bank_nfc());
    let r = run_sim(&mut du, scripts(6), &plan, &SimCfg::default(), &spec, None).unwrap();
    assert_eq!(r.faults_injected, 5);
    assert_projection_matches(du.system());
}

#[test]
fn run_report_semantics_agree_across_executors() {
    // The shared RunReport field semantics documented on the struct must
    // hold under both executors: the outcome partition covers every script,
    // blocked_ops never exceeds the raw block counter, admission_rounds is
    // zero when MPL is unlimited and positive when an MPL bound parks work
    // (on BOTH executors — the threaded one routes begins through the same
    // gate), and the threaded attempt identity
    // (rounds == committed + voluntary_aborts + retries) is exact.
    let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
    let r = run(&mut sys, scripts(8), &SchedulerCfg { seed: 3, ..Default::default() });
    assert_eq!(r.committed + r.voluntary_aborts + r.gave_up, 8);
    assert_eq!(r.admission_rounds, 0, "no admission control configured");
    assert!(r.blocked_ops <= r.stats.blocks);
    assert_eq!(r.stats.committed, r.committed);
    assert_projection_matches(&sys);

    let tsys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
    let (tr, tsys) = run_threaded(tsys, scripts(8), &ThreadedCfg::default());
    assert_eq!(tr.committed + tr.voluntary_aborts + tr.gave_up, 8);
    assert_eq!(tr.admission_rounds, 0, "no MPL bound configured");
    assert!(tr.blocked_ops <= tr.stats.blocks);
    assert_eq!(tr.stats.committed, tr.committed);
    assert_eq!(
        tr.rounds,
        tr.committed + tr.voluntary_aborts + tr.retries,
        "threaded attempt identity: {tr:?}"
    );
    assert_projection_matches(&tsys);

    // Bounded MPL: the hot-spot workload must park someone on each executor,
    // and every shared-semantics assertion still holds.
    let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
    let r = run(&mut sys, scripts(8), &SchedulerCfg { seed: 3, mpl: 1, ..Default::default() });
    assert_eq!(r.committed, 8);
    assert!(r.admission_rounds > 0, "MPL 1 must queue scheduler drivers");
    assert_projection_matches(&sys);

    // 256 scripts so the run comfortably outlasts worker-thread startup:
    // some worker is always parked at admission while another holds the
    // single slot.
    let tsys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
    let (tr, tsys) =
        run_threaded(tsys, scripts(256), &ThreadedCfg { mpl: 1, ..Default::default() });
    assert_eq!(tr.committed, 256);
    assert!(tr.admission_rounds > 0, "MPL 1 must park threaded workers");
    assert_eq!(
        tr.rounds,
        tr.committed + tr.voluntary_aborts + tr.retries,
        "attempt identity under MPL: {tr:?}"
    );
    assert_projection_matches(&tsys);
}

#[test]
fn projection_is_neutral_to_group_flush_events() {
    // A disk-backed group-commit run emits GroupFlush events; they feed the
    // histograms only, so the counter projection must still match.
    let spec = SystemSpec::uniform(BankAccount::default(), 6);
    let mut sys: DurableSystem<BankAccount, UipEngine<BankAccount>, _, WalBackend<BankAccount>> =
        DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
    let scripts: Vec<Box<dyn Script<BankAccount>>> = (0..6)
        .map(|i| {
            Box::new(OpsScript::on(ObjectId(i), vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                as Box<dyn Script<BankAccount>>
        })
        .collect();
    let cfg = SimCfg { group_commit: true, ..Default::default() };
    run_sim(&mut sys, scripts, &FaultPlan::none(), &cfg, &spec, None).unwrap();
    let flushes =
        sys.system().obs().events().iter().filter(|e| e.kind_name() == "group_flush").count();
    assert!(flushes >= 1, "the group-commit path must have flushed");
    assert_projection_matches(sys.system());
}

#[test]
fn projection_matches_on_seeded_fault_plans() {
    // Seeded plans mix fault kinds and land on arbitrary event indices —
    // a broader net than the hand-picked plan above.
    let spec = SystemSpec::single(BankAccount::default());
    for seed in 0..8 {
        let plan = FaultPlan::from_seed(seed, 40, 4);
        let mut sys: DurableSystem<BankAccount, UipEngine<BankAccount>, _> =
            DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        run_sim(&mut sys, scripts(6), &plan, &SimCfg { seed, ..Default::default() }, &spec, None)
            .unwrap();
        assert_projection_matches(sys.system());
    }
}
