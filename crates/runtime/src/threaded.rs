//! A multi-threaded executor over [`TxnSystem`].
//!
//! Worker threads pull scripts from a shared queue and drive them against a
//! mutex-protected system. Blocked invocations wait on a condvar that is
//! signalled whenever any transaction completes (completion is what releases
//! implicit locks). Deadlocks are detected while holding the manager lock:
//! a blocked worker checks the wait-for graph and, if its own transaction is
//! the youngest on a cycle, self-aborts and retries.
//!
//! The manager lock serialises bookkeeping, not transactions: waiting
//! transactions release the lock, so the admitted interleavings are those of
//! the conflict relation, which is what the experiments measure.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use ccr_core::adt::Adt;
use ccr_core::conflict::Conflict;

use crate::engine::RecoveryEngine;
use crate::error::{AbortReason, TxnError};
use crate::scheduler::RunReport;
use crate::script::{Script, Step};
use crate::system::TxnSystem;

/// Threaded-executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedCfg {
    /// Worker threads.
    pub workers: usize,
    /// Retries per script.
    pub max_retries: usize,
    /// Condvar wait slice (re-checks deadlock after each).
    pub wait_slice: Duration,
    /// Stamp tracer events with wall-clock microseconds in addition to the
    /// logical clock. Off by default: wall stamps are nondeterministic by
    /// nature and exist only for human-read threaded profiles.
    pub wall_clock: bool,
}

impl Default for ThreadedCfg {
    fn default() -> Self {
        ThreadedCfg {
            workers: 4,
            max_retries: 64,
            wait_slice: Duration::from_millis(5),
            wall_clock: false,
        }
    }
}

struct Shared<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> {
    sys: Mutex<TxnSystem<A, E, C>>,
    queue: Mutex<VecDeque<Box<dyn Script<A>>>>,
    completed: Condvar,
    tallies: Mutex<Tallies>,
}

#[derive(Default)]
struct Tallies {
    committed: u64,
    voluntary_aborts: u64,
    gave_up: u64,
    deadlock_aborts: u64,
    retries: u64,
    blocked_ops: u64,
}

/// Run `scripts` over `sys` with `cfg.workers` threads; returns the report
/// and the system (for trace/state inspection).
pub fn run_threaded<A, E, C>(
    mut sys: TxnSystem<A, E, C>,
    scripts: Vec<Box<dyn Script<A>>>,
    cfg: &ThreadedCfg,
) -> (RunReport, TxnSystem<A, E, C>)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    if cfg.wall_clock {
        sys.obs_mut().enable_wall_clock();
    }
    let shared = Arc::new(Shared {
        sys: Mutex::new(sys),
        queue: Mutex::new(scripts.into_iter().collect::<VecDeque<_>>()),
        completed: Condvar::new(),
        tallies: Mutex::new(Tallies::default()),
    });

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let cfg = *cfg;
            scope.spawn(move || worker(&shared, &cfg));
        }
    });

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("workers joined"));
    let sys = shared.sys.into_inner();
    let t = shared.tallies.into_inner();
    let report = RunReport {
        committed: t.committed,
        voluntary_aborts: t.voluntary_aborts,
        gave_up: t.gave_up,
        deadlock_aborts: t.deadlock_aborts,
        validation_aborts: sys.stats().validation_aborts,
        retries: t.retries,
        admission_rounds: 0,
        blocked_ops: t.blocked_ops,
        rounds: 0,
        wait_rounds: 0,
        stats: sys.stats().clone(),
    };
    (report, sys)
}

fn worker<A, E, C>(shared: &Shared<A, E, C>, cfg: &ThreadedCfg)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    loop {
        let script = {
            let mut q = shared.queue.lock();
            match q.pop_front() {
                Some(s) => s,
                None => return,
            }
        };
        drive(shared, cfg, script);
    }
}

fn drive<A, E, C>(shared: &Shared<A, E, C>, cfg: &ThreadedCfg, mut script: Box<dyn Script<A>>)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    let mut retries = 0usize;
    'attempt: loop {
        script.reset();
        let mut last: Option<A::Response> = None;
        let txn = shared.sys.lock().begin();
        loop {
            let step = script.next(last.as_ref());
            match step {
                Step::Invoke(obj, inv) => {
                    let mut sys = shared.sys.lock();
                    let mut first_attempt = true;
                    loop {
                        match sys.invoke(txn, obj, inv.clone()) {
                            Ok(resp) => {
                                last = Some(resp);
                                break;
                            }
                            Err(TxnError::Blocked { .. }) => {
                                if first_attempt {
                                    shared.tallies.lock().blocked_ops += 1;
                                    first_attempt = false;
                                }
                                // Deadlock check: self-abort if this txn is
                                // the youngest on a cycle it belongs to.
                                if let Some(cycle) = sys.find_deadlock(txn) {
                                    let victim =
                                        cycle.iter().copied().max().expect("non-empty cycle");
                                    if victim == txn {
                                        sys.abort_with(txn, AbortReason::Deadlock).expect("active");
                                        shared.tallies.lock().deadlock_aborts += 1;
                                        shared.completed.notify_all();
                                        drop(sys);
                                        retries += 1;
                                        shared.tallies.lock().retries += 1;
                                        if retries > cfg.max_retries {
                                            shared.tallies.lock().gave_up += 1;
                                            return;
                                        }
                                        continue 'attempt;
                                    }
                                    // Another worker owns the victim; fall
                                    // through and wait for it to notice.
                                }
                                shared.completed.wait_for(&mut sys, cfg.wait_slice);
                            }
                            Err(TxnError::Aborted(_)) => {
                                drop(sys);
                                shared.completed.notify_all();
                                retries += 1;
                                shared.tallies.lock().retries += 1;
                                if retries > cfg.max_retries {
                                    shared.tallies.lock().gave_up += 1;
                                    return;
                                }
                                continue 'attempt;
                            }
                            Err(e) => panic!("script error: {e}"),
                        }
                    }
                }
                Step::Commit => {
                    let mut sys = shared.sys.lock();
                    match sys.commit(txn) {
                        Ok(()) => {
                            drop(sys);
                            shared.completed.notify_all();
                            shared.tallies.lock().committed += 1;
                            return;
                        }
                        Err(TxnError::Aborted(_)) => {
                            drop(sys);
                            shared.completed.notify_all();
                            retries += 1;
                            shared.tallies.lock().retries += 1;
                            if retries > cfg.max_retries {
                                shared.tallies.lock().gave_up += 1;
                                return;
                            }
                            continue 'attempt;
                        }
                        Err(e) => panic!("commit error: {e}"),
                    }
                }
                Step::Abort => {
                    shared.sys.lock().abort(txn).expect("active");
                    shared.completed.notify_all();
                    shared.tallies.lock().voluntary_aborts += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DuEngine, UipEngine};
    use crate::script::OpsScript;
    use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
    use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};
    use ccr_core::ids::ObjectId;

    const X: ObjectId = ObjectId::SOLE;

    fn scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
        (0..n)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    #[test]
    fn threaded_uip_commits_everything() {
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let (report, mut sys) = run_threaded(sys, scripts(16), &ThreadedCfg::default());
        assert_eq!(report.committed, 16);
        assert_eq!(sys.committed_state(X), 16);
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn threaded_du_commits_everything() {
        let sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nfc());
        let (report, mut sys) = run_threaded(sys, scripts(16), &ThreadedCfg::default());
        assert_eq!(report.committed, 16);
        assert_eq!(sys.committed_state(X), 16);
    }

    #[test]
    fn cross_object_deadlocks_resolve() {
        // Balance-then-deposit crosswise over two objects (the deadlock
        // pattern from the system tests), many times over.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        for i in 0..8 {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg = ThreadedCfg { workers: 4, ..Default::default() };
        let (report, mut sys) = run_threaded(sys, scripts, &cfg);
        assert_eq!(report.committed + report.gave_up, 8);
        assert_eq!(report.gave_up, 0, "retries must eventually succeed");
        let spec = SystemSpec::uniform(BankAccount::default(), 2);
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
        let _ = sys.committed_state(X);
    }
}
