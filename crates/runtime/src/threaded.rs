//! A multi-threaded executor over [`TxnSystem`].
//!
//! Worker threads pull scripts from a shared queue and drive them against a
//! mutex-protected system. Blocked invocations wait on a condvar that is
//! signalled whenever any transaction completes (completion is what releases
//! implicit locks). Deadlocks are detected while holding the manager lock:
//! a blocked worker checks the wait-for graph and, if its own transaction is
//! the youngest on a cycle, self-aborts and retries.
//!
//! The manager lock serialises bookkeeping, not transactions: waiting
//! transactions release the lock, so the admitted interleavings are those of
//! the conflict relation, which is what the experiments measure.
//!
//! [`run_threaded_durable`] adds write-ahead journaling through a
//! [`LogBackend`] with **group commit**: committers stage their record in a
//! shared batch buffer and wait on a commit barrier; one of them becomes the
//! flush leader, drains the whole batch, and makes it durable with a single
//! fsync while the followers hold no lock on the system — the next batch
//! forms behind the in-flight flush. See DESIGN.md §10.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ccr_core::adt::{Adt, Op};
use ccr_core::conflict::Conflict;
use ccr_core::ids::{ObjectId, TxnId};
use ccr_obs::Phase;
use ccr_store::{CommitRecord, LogBackend};

use crate::engine::RecoveryEngine;
use crate::error::{AbortReason, TxnError};
use crate::scheduler::RunReport;
use crate::script::{Script, Step};
use crate::system::TxnSystem;

/// Threaded-executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedCfg {
    /// Worker threads.
    pub workers: usize,
    /// Retries per script.
    pub max_retries: usize,
    /// Condvar wait slice (re-checks deadlock after each).
    pub wait_slice: Duration,
    /// Stamp tracer events with wall-clock microseconds in addition to the
    /// logical clock. Off by default: wall stamps are nondeterministic by
    /// nature and exist only for human-read threaded profiles.
    pub wall_clock: bool,
    /// Admission control: maximum transactions in flight (0 = unlimited),
    /// the same gate [`SchedulerCfg::mpl`] applies in the round-robin
    /// scheduler. Workers park on an admission condvar before `begin`;
    /// each elapsed wait slice counts into [`RunReport::admission_rounds`].
    ///
    /// [`SchedulerCfg::mpl`]: crate::scheduler::SchedulerCfg::mpl
    pub mpl: usize,
    /// Per-transaction wall-clock deadline (`ZERO` = none): a transaction
    /// still blocked past this budget self-aborts with
    /// [`AbortReason::Deadline`] and its script retries against the retry
    /// budget — the threaded analogue of [`SchedulerCfg::deadline`]'s round
    /// budget. Checked on every wakeup from a blocked wait, which is the
    /// only place a threaded transaction can stall.
    ///
    /// [`SchedulerCfg::deadline`]: crate::scheduler::SchedulerCfg::deadline
    pub deadline: Duration,
    /// Exponential post-restart backoff with seeded jitter, the threaded
    /// analogue of [`SchedulerCfg::backoff`]: a restarted script sleeps
    /// `2^min(retries,5) + jitter` tenths of a wait slice before its next
    /// attempt, decorrelating the wakeups of a conflict clique.
    ///
    /// [`SchedulerCfg::backoff`]: crate::scheduler::SchedulerCfg::backoff
    pub backoff: bool,
}

impl Default for ThreadedCfg {
    fn default() -> Self {
        ThreadedCfg {
            workers: 4,
            max_retries: 64,
            wait_slice: Duration::from_millis(5),
            wall_clock: false,
            mpl: 0,
            deadline: Duration::ZERO,
            backoff: false,
        }
    }
}

struct Shared<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> {
    sys: Mutex<TxnSystem<A, E, C>>,
    queue: Mutex<VecDeque<Box<dyn Script<A>>>>,
    completed: Condvar,
    tallies: Mutex<Tallies>,
    /// Signalled when an admission slot frees up (paired with `tallies`).
    admitted: Condvar,
}

#[derive(Default)]
struct Tallies {
    committed: u64,
    voluntary_aborts: u64,
    gave_up: u64,
    deadlock_aborts: u64,
    retries: u64,
    blocked_ops: u64,
    /// Transaction attempts (each `begin` of a script attempt) — the
    /// threaded meaning of [`RunReport::rounds`].
    rounds: u64,
    /// Condvar wait slices elapsed while blocked — the threaded meaning of
    /// [`RunReport::wait_rounds`].
    wait_rounds: u64,
    /// Admission wait slices elapsed while parked for an MPL slot — the
    /// threaded meaning of [`RunReport::admission_rounds`].
    admission_rounds: u64,
    /// Transactions currently holding an admission slot (live, or — on the
    /// durable executor — committed but still riding the commit barrier, so
    /// WAL lag exerts backpressure on admission).
    in_flight: u64,
}

/// Claim an admission slot: with `cfg.mpl > 0`, park until fewer than `mpl`
/// transactions are in flight, tallying each elapsed wait slice into
/// `admission_rounds`. With `mpl == 0` admission is unbounded and this only
/// tracks the in-flight count.
fn admit(tallies: &Mutex<Tallies>, admitted: &Condvar, cfg: &ThreadedCfg) {
    let mut t = tallies.lock();
    while cfg.mpl > 0 && t.in_flight as usize >= cfg.mpl {
        t.admission_rounds += 1;
        admitted.wait_for(&mut t, cfg.wait_slice);
    }
    t.in_flight += 1;
}

/// Release an admission slot (the transaction committed or aborted) and
/// wake one parked admitter.
fn release(tallies: &Mutex<Tallies>, admitted: &Condvar) {
    tallies.lock().in_flight -= 1;
    admitted.notify_one();
}

/// With backoff enabled, sleep out this restart's exponential backoff
/// (same schedule as the scheduler's, scaled to tenths of a wait slice so
/// even a budget-capped backoff stays in the low milliseconds) after
/// reporting the drawn jitter to `observe` for the retry-jitter histogram.
fn pause_for_backoff(cfg: &ThreadedCfg, txn: TxnId, retries: usize, observe: impl FnOnce(u64)) {
    if !cfg.backoff {
        return;
    }
    let jitter = crate::scheduler::seeded_jitter(0, txn.0 as u64, retries);
    observe(jitter);
    let units = crate::scheduler::backoff_base(retries) + jitter;
    std::thread::sleep(cfg.wait_slice / 10 * units as u32);
}

/// Run `scripts` over `sys` with `cfg.workers` threads; returns the report
/// and the system (for trace/state inspection).
pub fn run_threaded<A, E, C>(
    mut sys: TxnSystem<A, E, C>,
    scripts: Vec<Box<dyn Script<A>>>,
    cfg: &ThreadedCfg,
) -> (RunReport, TxnSystem<A, E, C>)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    if cfg.wall_clock {
        sys.obs_mut().enable_wall_clock();
    }
    let shared = Arc::new(Shared {
        sys: Mutex::new(sys),
        queue: Mutex::new(scripts.into_iter().collect::<VecDeque<_>>()),
        completed: Condvar::new(),
        tallies: Mutex::new(Tallies::default()),
        admitted: Condvar::new(),
    });

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let cfg = *cfg;
            scope.spawn(move || worker(&shared, &cfg));
        }
    });

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("workers joined"));
    let sys = shared.sys.into_inner();
    let t = shared.tallies.into_inner();
    let report = report_from(&t, &sys);
    (report, sys)
}

/// Assemble a [`RunReport`] from worker tallies under the shared field
/// semantics documented on [`RunReport`]: `rounds` counts transaction
/// attempts, `wait_rounds` counts elapsed lock-wait slices, and
/// `admission_rounds` counts elapsed admission-wait slices (zero when
/// [`ThreadedCfg::mpl`] is unlimited).
fn report_from<A, E, C>(t: &Tallies, sys: &TxnSystem<A, E, C>) -> RunReport
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
{
    RunReport {
        committed: t.committed,
        voluntary_aborts: t.voluntary_aborts,
        gave_up: t.gave_up,
        deadlock_aborts: t.deadlock_aborts,
        validation_aborts: sys.stats().validation_aborts,
        retries: t.retries,
        admission_rounds: t.admission_rounds,
        blocked_ops: t.blocked_ops,
        rounds: t.rounds,
        wait_rounds: t.wait_rounds,
        stats: sys.stats().clone(),
    }
}

fn worker<A, E, C>(shared: &Shared<A, E, C>, cfg: &ThreadedCfg)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    loop {
        let script = {
            let mut q = shared.queue.lock();
            match q.pop_front() {
                Some(s) => s,
                None => return,
            }
        };
        drive(shared, cfg, script);
    }
}

fn drive<A, E, C>(shared: &Shared<A, E, C>, cfg: &ThreadedCfg, mut script: Box<dyn Script<A>>)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
{
    let mut retries = 0usize;
    'attempt: loop {
        admit(&shared.tallies, &shared.admitted, cfg);
        shared.tallies.lock().rounds += 1;
        let began = Instant::now();
        script.reset();
        let mut last: Option<A::Response> = None;
        let txn = shared.sys.lock().begin();
        loop {
            let step = script.next(last.as_ref());
            match step {
                Step::Invoke(obj, inv) => {
                    let mut sys = shared.sys.lock();
                    let mut first_attempt = true;
                    loop {
                        match sys.invoke(txn, obj, inv.clone()) {
                            Ok(resp) => {
                                last = Some(resp);
                                break;
                            }
                            Err(TxnError::Blocked { .. }) => {
                                if first_attempt {
                                    shared.tallies.lock().blocked_ops += 1;
                                    first_attempt = false;
                                }
                                // Deadlock check: self-abort if this txn is
                                // the youngest on a cycle it belongs to.
                                if let Some(cycle) = sys.find_deadlock(txn) {
                                    let victim =
                                        cycle.iter().copied().max().expect("non-empty cycle");
                                    if victim == txn {
                                        sys.abort_with(txn, AbortReason::Deadlock).expect("active");
                                        shared.tallies.lock().deadlock_aborts += 1;
                                        shared.completed.notify_all();
                                        drop(sys);
                                        release(&shared.tallies, &shared.admitted);
                                        retries += 1;
                                        shared.tallies.lock().retries += 1;
                                        if retries > cfg.max_retries {
                                            shared.tallies.lock().gave_up += 1;
                                            return;
                                        }
                                        pause_for_backoff(cfg, txn, retries, |j| {
                                            shared.sys.lock().obs_mut().on_retry_jitter(j)
                                        });
                                        continue 'attempt;
                                    }
                                    // Another worker owns the victim: wake
                                    // every waiter so the victim re-checks
                                    // the cycle *now* instead of sleeping
                                    // out its full wait slice.
                                    shared.completed.notify_all();
                                }
                                shared.tallies.lock().wait_rounds += 1;
                                shared.completed.wait_for(&mut sys, cfg.wait_slice);
                                // Deadline: a transaction still blocked past
                                // its wall budget self-aborts with a typed
                                // reason and retries — bounded time on any
                                // lock it cannot get.
                                if !cfg.deadline.is_zero() && began.elapsed() > cfg.deadline {
                                    sys.abort_with(txn, AbortReason::Deadline).expect("active");
                                    shared.completed.notify_all();
                                    drop(sys);
                                    release(&shared.tallies, &shared.admitted);
                                    retries += 1;
                                    shared.tallies.lock().retries += 1;
                                    if retries > cfg.max_retries {
                                        shared.tallies.lock().gave_up += 1;
                                        return;
                                    }
                                    pause_for_backoff(cfg, txn, retries, |j| {
                                        shared.sys.lock().obs_mut().on_retry_jitter(j)
                                    });
                                    continue 'attempt;
                                }
                            }
                            Err(TxnError::Aborted(_)) => {
                                drop(sys);
                                shared.completed.notify_all();
                                release(&shared.tallies, &shared.admitted);
                                retries += 1;
                                shared.tallies.lock().retries += 1;
                                if retries > cfg.max_retries {
                                    shared.tallies.lock().gave_up += 1;
                                    return;
                                }
                                pause_for_backoff(cfg, txn, retries, |j| {
                                    shared.sys.lock().obs_mut().on_retry_jitter(j)
                                });
                                continue 'attempt;
                            }
                            Err(e) => panic!("script error: {e}"),
                        }
                    }
                }
                Step::Commit => {
                    let mut sys = shared.sys.lock();
                    match sys.commit(txn) {
                        Ok(()) => {
                            drop(sys);
                            shared.completed.notify_all();
                            release(&shared.tallies, &shared.admitted);
                            shared.tallies.lock().committed += 1;
                            return;
                        }
                        Err(TxnError::Aborted(_)) => {
                            drop(sys);
                            shared.completed.notify_all();
                            release(&shared.tallies, &shared.admitted);
                            retries += 1;
                            shared.tallies.lock().retries += 1;
                            if retries > cfg.max_retries {
                                shared.tallies.lock().gave_up += 1;
                                return;
                            }
                            pause_for_backoff(cfg, txn, retries, |j| {
                                shared.sys.lock().obs_mut().on_retry_jitter(j)
                            });
                            continue 'attempt;
                        }
                        Err(e) => panic!("commit error: {e}"),
                    }
                }
                Step::Abort => {
                    shared.sys.lock().abort(txn).expect("active");
                    shared.completed.notify_all();
                    release(&shared.tallies, &shared.admitted);
                    shared.tallies.lock().voluntary_aborts += 1;
                    return;
                }
            }
        }
    }
}

/// Durability discipline for [`run_threaded_durable`].
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitCfg {
    /// Batch commit records and flush each batch with **one** fsync via a
    /// leader thread; `false` is the per-commit-fsync baseline the bench
    /// compares against.
    pub group_commit: bool,
    /// Simulated device flush time, charged while the backend lock is held.
    /// A nonzero delay is what makes batches form under load: committers
    /// arriving during the in-flight flush stage behind it and share the
    /// next fsync.
    pub flush_delay: Duration,
}

impl Default for GroupCommitCfg {
    fn default() -> Self {
        GroupCommitCfg { group_commit: true, flush_delay: Duration::ZERO }
    }
}

/// Result of a durable threaded run: the report, the system (trace/state
/// inspection), the backend (its durable image can be recovered from), and
/// the measured durability figures.
pub struct DurableRun<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    /// Scheduler-shaped run report (see [`RunReport`] field semantics).
    pub report: RunReport,
    /// The volatile system, with one `group_flush` trace event replayed per
    /// fsync (batch size and flush latency feed the tracer's histograms).
    pub sys: TxnSystem<A, E, C>,
    /// The log backend holding every acknowledged commit record durably.
    pub backend: B,
    /// Fsyncs issued (group mode: one per batch; baseline: one per commit).
    pub fsyncs: u64,
    /// Per-commit latency in wall microseconds from commit entry to
    /// durability acknowledgement, sorted ascending.
    pub commit_latencies_us: Vec<u64>,
}

/// The volatile half of the durable executor, guarded by one mutex: the
/// transaction system plus the write-ahead buffer that commit journals
/// (mirrors `DurableSystem`'s bookkeeping).
struct Volatile<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> {
    sys: TxnSystem<A, E, C>,
    /// Global execution-sequence allocator (stamps every executed op).
    op_seq: u64,
    /// Executed-but-uncommitted operations per live transaction.
    pending: BTreeMap<TxnId, Vec<(u64, ObjectId, Op<A>)>>,
}

/// Commit-barrier state: staged records, the durable watermark the barrier
/// waits on, and the measured flush figures.
struct Stage<A: Adt> {
    /// Records staged for the next group flush, in commit order.
    staged: Vec<CommitRecord<A>>,
    /// Total records ever staged; a committer's record is durable once
    /// `durable` reaches the value this held when it staged.
    seq: u64,
    /// Total records flushed durably.
    durable: u64,
    /// A leader is currently flushing (at most one at a time, so batches
    /// reach the log in staging order).
    leader: bool,
    /// `(batch_len, micros)` per fsync, replayed into the tracer post-join.
    flushes: Vec<(u64, u64)>,
    /// Commit-entry→durability latency per acknowledged commit (unsorted;
    /// workers push on acknowledgement).
    latencies_us: Vec<u64>,
    /// Wall nanoseconds each follower spent parked on the commit barrier
    /// (one sample per committer that had to wait), replayed into the
    /// tracer's `BarrierWait` phase post-join.
    barrier_ns: Vec<u64>,
}

struct DurableShared<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    vol: Mutex<Volatile<A, E, C>>,
    queue: Mutex<VecDeque<Box<dyn Script<A>>>>,
    completed: Condvar,
    tallies: Mutex<Tallies>,
    /// Signalled when an admission slot frees up (paired with `tallies`).
    /// A committer holds its slot until its record is durable, so a lagging
    /// WAL throttles admission.
    admitted: Condvar,
    stage: Mutex<Stage<A>>,
    /// Signalled by the flush leader when a batch becomes durable.
    durable: Condvar,
    /// The log device. Held across `append`+`flush_delay` so fsyncs
    /// serialise; never acquired while holding `vol` or `stage` — that is
    /// what lets followers (and fresh committers) run while a flush is in
    /// flight.
    backend: Mutex<B>,
    gc: GroupCommitCfg,
}

/// Run `scripts` over `sys` with durable commits journaled to `backend`.
/// With `gc.group_commit` the commit path is: apply the commit in the
/// volatile system, stage the redo record, release the system mutex, and
/// wait on the commit barrier until a flush leader has made the record's
/// batch durable with one fsync. Without it, every committer appends and
/// fsyncs its own record (the baseline).
pub fn run_threaded_durable<A, E, C, B>(
    mut sys: TxnSystem<A, E, C>,
    backend: B,
    scripts: Vec<Box<dyn Script<A>>>,
    cfg: &ThreadedCfg,
    gc: &GroupCommitCfg,
) -> DurableRun<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
    B: LogBackend<A> + Send,
{
    if cfg.wall_clock {
        sys.obs_mut().enable_wall_clock();
    }
    sys.obs_mut().set_label("backend", backend.name());
    let shared = Arc::new(DurableShared {
        vol: Mutex::new(Volatile { sys, op_seq: 0, pending: BTreeMap::new() }),
        queue: Mutex::new(scripts.into_iter().collect::<VecDeque<_>>()),
        completed: Condvar::new(),
        tallies: Mutex::new(Tallies::default()),
        admitted: Condvar::new(),
        stage: Mutex::new(Stage {
            staged: Vec::new(),
            seq: 0,
            durable: 0,
            leader: false,
            flushes: Vec::new(),
            latencies_us: Vec::new(),
            barrier_ns: Vec::new(),
        }),
        durable: Condvar::new(),
        backend: Mutex::new(backend),
        gc: *gc,
    });

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let cfg = *cfg;
            scope.spawn(move || durable_worker(&shared, &cfg));
        }
    });

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("workers joined"));
    let mut vol = shared.vol.into_inner();
    let t = shared.tallies.into_inner();
    let stage = shared.stage.into_inner();
    // Replay the flush log into the tracer: one group_flush event per fsync
    // feeds the batch-size and flush-latency histograms, and one `Fsync`
    // phase sample per fsync feeds the per-phase profile. Barrier-park and
    // commit-entry→durable latencies become `BarrierWait` / `CommitTotal`
    // samples (wall stamps survive only when `cfg.wall_clock` armed the
    // tracer's wall epoch, so deterministic runs stay byte-identical).
    for &(batch, micros) in &stage.flushes {
        vol.sys.obs_mut().on_group_flush(batch, micros);
        vol.sys.obs_mut().on_phase(Phase::Fsync, batch, micros * 1_000);
    }
    for &ns in &stage.barrier_ns {
        vol.sys.obs_mut().on_phase(Phase::BarrierWait, 1, ns);
    }
    for &us in &stage.latencies_us {
        vol.sys.obs_mut().on_phase(Phase::CommitTotal, 1, us * 1_000);
    }
    let report = report_from(&t, &vol.sys);
    let mut latencies = stage.latencies_us;
    latencies.sort_unstable();
    DurableRun {
        report,
        sys: vol.sys,
        backend: shared.backend.into_inner(),
        fsyncs: stage.flushes.len() as u64,
        commit_latencies_us: latencies,
    }
}

fn durable_worker<A, E, C, B>(shared: &DurableShared<A, E, C, B>, cfg: &ThreadedCfg)
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
    B: LogBackend<A> + Send,
{
    loop {
        let script = {
            let mut q = shared.queue.lock();
            match q.pop_front() {
                Some(s) => s,
                None => return,
            }
        };
        drive_durable(shared, cfg, script);
    }
}

/// Make one committed transaction's record durable. `rec` was built under
/// the `vol` guard, which is handed in still held: the append (baseline) or
/// staging (group) slot is claimed **before** the system mutex is released,
/// so the log's record order always equals the volatile commit order — and
/// only then is `vol` dropped, letting other workers run during the flush.
fn make_durable<A, E, C, B>(
    shared: &DurableShared<A, E, C, B>,
    rec: CommitRecord<A>,
    entered: Instant,
    vol: parking_lot::MutexGuard<'_, Volatile<A, E, C>>,
) where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    // Stage the record, then hold the barrier until a flush leader has made
    // it durable. Whoever finds work staged and no leader in flight becomes
    // the leader; everyone else parks on the barrier holding no lock but the
    // stage's. The leader drains the whole staged batch either way — with
    // group commit it costs ONE fsync, without it one fsync per record (the
    // per-commit baseline: same ordering discipline, no amortisation).
    let mut stage = shared.stage.lock();
    drop(vol);
    shared.completed.notify_all();
    stage.staged.push(rec);
    stage.seq += 1;
    let my_seq = stage.seq;
    let mut waited_ns = 0u64;
    while stage.durable < my_seq {
        if !stage.leader && !stage.staged.is_empty() {
            stage.leader = true;
            let batch = std::mem::take(&mut stage.staged);
            drop(stage);
            if shared.gc.group_commit {
                let micros = {
                    let mut backend = shared.backend.lock();
                    let t0 = Instant::now();
                    backend
                        .append_commits(&batch)
                        .expect("threaded harness runs on a healthy device");
                    if !shared.gc.flush_delay.is_zero() {
                        std::thread::sleep(shared.gc.flush_delay);
                    }
                    t0.elapsed().as_micros() as u64
                };
                stage = shared.stage.lock();
                stage.durable += batch.len() as u64;
                stage.flushes.push((batch.len() as u64, micros));
            } else {
                // Per-commit baseline: every record pays its own fsync, and
                // each committer is released as soon as *its* record is
                // durable.
                for r in &batch {
                    let micros = {
                        let mut backend = shared.backend.lock();
                        let t0 = Instant::now();
                        backend
                            .append_commit(r)
                            .expect("threaded harness runs on a healthy device");
                        if !shared.gc.flush_delay.is_zero() {
                            std::thread::sleep(shared.gc.flush_delay);
                        }
                        t0.elapsed().as_micros() as u64
                    };
                    let mut s = shared.stage.lock();
                    s.durable += 1;
                    s.flushes.push((1, micros));
                    shared.durable.notify_all();
                }
                stage = shared.stage.lock();
            }
            stage.leader = false;
            shared.durable.notify_all();
        } else {
            let parked = Instant::now();
            shared.durable.wait(&mut stage);
            waited_ns += parked.elapsed().as_nanos() as u64;
        }
    }
    if waited_ns > 0 {
        stage.barrier_ns.push(waited_ns);
    }
    let latency = entered.elapsed().as_micros() as u64;
    stage.latencies_us.push(latency);
}

fn drive_durable<A, E, C, B>(
    shared: &DurableShared<A, E, C, B>,
    cfg: &ThreadedCfg,
    mut script: Box<dyn Script<A>>,
) where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Send + Sync,
    B: LogBackend<A> + Send,
{
    let mut retries = 0usize;
    'attempt: loop {
        admit(&shared.tallies, &shared.admitted, cfg);
        shared.tallies.lock().rounds += 1;
        let began = Instant::now();
        script.reset();
        let mut last: Option<A::Response> = None;
        let txn = shared.vol.lock().sys.begin();
        loop {
            let step = script.next(last.as_ref());
            match step {
                Step::Invoke(obj, inv) => {
                    let mut vol = shared.vol.lock();
                    let mut first_attempt = true;
                    loop {
                        match vol.sys.invoke(txn, obj, inv.clone()) {
                            Ok(resp) => {
                                let seq = vol.op_seq;
                                vol.op_seq += 1;
                                vol.pending.entry(txn).or_default().push((
                                    seq,
                                    obj,
                                    Op::new(inv.clone(), resp.clone()),
                                ));
                                last = Some(resp);
                                break;
                            }
                            Err(TxnError::Blocked { .. }) => {
                                if first_attempt {
                                    shared.tallies.lock().blocked_ops += 1;
                                    first_attempt = false;
                                }
                                if let Some(cycle) = vol.sys.find_deadlock(txn) {
                                    let victim =
                                        cycle.iter().copied().max().expect("non-empty cycle");
                                    if victim == txn {
                                        vol.sys
                                            .abort_with(txn, AbortReason::Deadlock)
                                            .expect("active");
                                        vol.pending.remove(&txn);
                                        shared.tallies.lock().deadlock_aborts += 1;
                                        shared.completed.notify_all();
                                        drop(vol);
                                        release(&shared.tallies, &shared.admitted);
                                        retries += 1;
                                        shared.tallies.lock().retries += 1;
                                        if retries > cfg.max_retries {
                                            shared.tallies.lock().gave_up += 1;
                                            return;
                                        }
                                        pause_for_backoff(cfg, txn, retries, |j| {
                                            shared.vol.lock().sys.obs_mut().on_retry_jitter(j)
                                        });
                                        continue 'attempt;
                                    }
                                    // Another worker owns the victim: wake
                                    // every waiter so it re-checks now.
                                    shared.completed.notify_all();
                                }
                                shared.tallies.lock().wait_rounds += 1;
                                shared.completed.wait_for(&mut vol, cfg.wait_slice);
                                // Deadline: still blocked past the wall
                                // budget — self-abort with a typed reason
                                // and retry.
                                if !cfg.deadline.is_zero() && began.elapsed() > cfg.deadline {
                                    vol.sys.abort_with(txn, AbortReason::Deadline).expect("active");
                                    vol.pending.remove(&txn);
                                    shared.completed.notify_all();
                                    drop(vol);
                                    release(&shared.tallies, &shared.admitted);
                                    retries += 1;
                                    shared.tallies.lock().retries += 1;
                                    if retries > cfg.max_retries {
                                        shared.tallies.lock().gave_up += 1;
                                        return;
                                    }
                                    pause_for_backoff(cfg, txn, retries, |j| {
                                        shared.vol.lock().sys.obs_mut().on_retry_jitter(j)
                                    });
                                    continue 'attempt;
                                }
                            }
                            Err(TxnError::Aborted(_)) => {
                                vol.pending.remove(&txn);
                                drop(vol);
                                shared.completed.notify_all();
                                release(&shared.tallies, &shared.admitted);
                                retries += 1;
                                shared.tallies.lock().retries += 1;
                                if retries > cfg.max_retries {
                                    shared.tallies.lock().gave_up += 1;
                                    return;
                                }
                                pause_for_backoff(cfg, txn, retries, |j| {
                                    shared.vol.lock().sys.obs_mut().on_retry_jitter(j)
                                });
                                continue 'attempt;
                            }
                            Err(e) => panic!("script error: {e}"),
                        }
                    }
                }
                Step::Commit => {
                    let entered = Instant::now();
                    let mut vol = shared.vol.lock();
                    match vol.sys.commit(txn) {
                        Ok(()) => {
                            let ops = vol.pending.remove(&txn).unwrap_or_default();
                            let rec = CommitRecord { floor: vol.sys.next_txn_id(), ops };
                            // Prune buffers of transactions aborted behind
                            // our back (wound-wait victims never reach the
                            // abort arm here).
                            let active: BTreeSet<TxnId> = vol.sys.active().collect();
                            vol.pending.retain(|t, _| active.contains(t));
                            // The system mutex is released inside
                            // make_durable (after the log slot is claimed):
                            // other workers invoke and commit while this
                            // record rides the barrier.
                            // The admission slot is held until the record is
                            // durable: commit-barrier lag (a stalling WAL
                            // device) backpressures admission under MPL.
                            make_durable(shared, rec, entered, vol);
                            release(&shared.tallies, &shared.admitted);
                            shared.tallies.lock().committed += 1;
                            return;
                        }
                        Err(TxnError::Aborted(_)) => {
                            vol.pending.remove(&txn);
                            drop(vol);
                            shared.completed.notify_all();
                            release(&shared.tallies, &shared.admitted);
                            retries += 1;
                            shared.tallies.lock().retries += 1;
                            if retries > cfg.max_retries {
                                shared.tallies.lock().gave_up += 1;
                                return;
                            }
                            pause_for_backoff(cfg, txn, retries, |j| {
                                shared.vol.lock().sys.obs_mut().on_retry_jitter(j)
                            });
                            continue 'attempt;
                        }
                        Err(e) => panic!("commit error: {e}"),
                    }
                }
                Step::Abort => {
                    let mut vol = shared.vol.lock();
                    vol.pending.remove(&txn);
                    vol.sys.abort(txn).expect("active");
                    drop(vol);
                    shared.completed.notify_all();
                    release(&shared.tallies, &shared.admitted);
                    shared.tallies.lock().voluntary_aborts += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DuEngine, UipEngine};
    use crate::script::OpsScript;
    use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
    use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};
    use ccr_core::ids::ObjectId;

    const X: ObjectId = ObjectId::SOLE;

    fn scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
        (0..n)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    #[test]
    fn threaded_uip_commits_everything() {
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let (report, mut sys) = run_threaded(sys, scripts(16), &ThreadedCfg::default());
        assert_eq!(report.committed, 16);
        assert_eq!(sys.committed_state(X), 16);
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn threaded_du_commits_everything() {
        let sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nfc());
        let (report, mut sys) = run_threaded(sys, scripts(16), &ThreadedCfg::default());
        assert_eq!(report.committed, 16);
        assert_eq!(sys.committed_state(X), 16);
    }

    #[test]
    fn attempt_accounting_identity_holds() {
        // Shared RunReport semantics: every transaction attempt ends in a
        // commit, a voluntary abort, or a retry — so `rounds` (attempts)
        // must equal their sum. With no MPL configured, admission never
        // parks anyone.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let (report, _) = run_threaded(sys, scripts(16), &ThreadedCfg::default());
        assert_eq!(
            report.rounds,
            report.committed + report.voluntary_aborts + report.retries,
            "attempt identity: {report:?}"
        );
        assert!(report.rounds >= 16, "at least one attempt per script");
        assert_eq!(report.admission_rounds, 0);
    }

    #[test]
    fn mpl_serialises_the_crosswise_clique_without_deadlocks() {
        // The same admission gate the scheduler has: with MPL 1 the
        // crosswise deadlock clique serialises — no blocks, no deadlock
        // aborts — and the parked workers' wait slices show up in
        // `admission_rounds` instead of a hardcoded zero.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        // 256 scripts so the run comfortably outlasts worker-thread startup
        // and someone is always parked at the single admission slot.
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        for i in 0..256 {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg = ThreadedCfg { workers: 4, mpl: 1, ..Default::default() };
        let (report, mut sys) = run_threaded(sys, scripts, &cfg);
        assert_eq!(report.committed, 256);
        assert_eq!(report.blocked_ops, 0);
        assert_eq!(report.deadlock_aborts, 0);
        assert!(report.admission_rounds > 0, "parked workers must be tallied: {report:?}");
        assert_eq!(sys.committed_state(X) + sys.committed_state(y), 256);
    }

    #[test]
    fn deadlines_type_the_abort_and_the_clique_still_drains() {
        // A deadline of one nanosecond turns every blocked wait into a
        // typed Deadline self-abort on wakeup; jittered backoff decorrelates
        // the retries, and the crosswise clique still fully commits without
        // a single hung transaction. 256 scripts so the run comfortably
        // outlasts worker-thread startup and waits actually happen.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        let n = 256;
        for i in 0..n {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg = ThreadedCfg {
            workers: 4,
            max_retries: 10_000,
            wait_slice: Duration::from_micros(200),
            deadline: Duration::from_nanos(1),
            backoff: true,
            ..Default::default()
        };
        let (report, mut sys) = run_threaded(sys, scripts, &cfg);
        assert_eq!(report.committed, n as u64);
        assert_eq!(report.gave_up, 0);
        assert!(
            report.stats.deadline_aborts > 0,
            "blocked waits must become typed deadline aborts: {report:?}"
        );
        assert_eq!(sys.committed_state(X) + sys.committed_state(y), n as u64);
    }

    #[test]
    fn deadlock_victims_are_woken_not_slept_out() {
        // Regression: when a worker detects a deadlock whose victim belongs
        // to another worker, it must notify the condvar so the victim
        // re-checks the cycle immediately. Before the fix the victim slept
        // out its full wait slice — with a 5-second slice, any reliance on
        // the timeout makes this run take multiple seconds.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        for i in 0..16 {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg =
            ThreadedCfg { workers: 4, wait_slice: Duration::from_secs(5), ..Default::default() };
        let t0 = Instant::now();
        let (report, _sys) = run_threaded(sys, scripts, &cfg);
        let elapsed = t0.elapsed();
        assert_eq!(report.committed + report.gave_up, 16);
        assert_eq!(report.gave_up, 0);
        assert!(
            elapsed < Duration::from_millis(2500),
            "victims must be woken immediately, not after the wait slice: {elapsed:?}"
        );
    }

    #[test]
    fn cross_object_deadlocks_resolve() {
        // Balance-then-deposit crosswise over two objects (the deadlock
        // pattern from the system tests), many times over.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        for i in 0..8 {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg = ThreadedCfg { workers: 4, ..Default::default() };
        let (report, mut sys) = run_threaded(sys, scripts, &cfg);
        assert_eq!(report.committed + report.gave_up, 8);
        assert_eq!(report.gave_up, 0, "retries must eventually succeed");
        let spec = SystemSpec::uniform(BankAccount::default(), 2);
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
        let _ = sys.committed_state(X);
    }

    use crate::crash::{DurableSystem, TornPolicy};
    use ccr_obs::EventKind;
    use ccr_store::{WalBackend, WalConfig};

    fn spread_scripts(n: u32, objects: u32) -> Vec<Box<dyn Script<BankAccount>>> {
        (0..n)
            .map(|i| {
                Box::new(OpsScript::on(ObjectId(i % objects), vec![BankInv::Deposit(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    #[test]
    fn durable_group_commit_amortises_fsyncs_and_recovers() {
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 8, bank_nrbc());
        let cfg = ThreadedCfg { workers: 4, ..Default::default() };
        let gc = GroupCommitCfg { group_commit: true, flush_delay: Duration::from_micros(500) };
        let run = run_threaded_durable(
            sys,
            WalBackend::new(WalConfig::default()),
            spread_scripts(32, 8),
            &cfg,
            &gc,
        );
        assert_eq!(run.report.committed, 32);
        assert_eq!(run.commit_latencies_us.len(), 32);
        assert!(run.fsyncs < 32, "batches must amortise fsyncs: {} for 32 commits", run.fsyncs);
        // The replayed group_flush events cover every commit exactly once.
        let flushed: u64 = run
            .sys
            .obs()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::GroupFlush { batch, .. } => Some(batch),
                _ => None,
            })
            .sum();
        assert_eq!(flushed, 32);
        // Every acknowledged commit is durable: a fresh system recovering
        // from the backend's stable image replays all 32 records strictly.
        let mut rec: DurableSystem<
            BankAccount,
            UipEngine<BankAccount>,
            _,
            WalBackend<BankAccount>,
        > = DurableSystem::with_backend(BankAccount::default(), 8, bank_nrbc(), run.backend);
        rec.crash_and_recover_with(TornPolicy::Strict).unwrap();
        assert_eq!(rec.journal().len(), 32);
        for i in 0..8 {
            assert_eq!(rec.committed_state(ObjectId(i)), 4);
        }
    }

    #[test]
    fn durable_baseline_pays_one_fsync_per_commit() {
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 8, bank_nrbc());
        let cfg = ThreadedCfg { workers: 4, ..Default::default() };
        let gc = GroupCommitCfg { group_commit: false, flush_delay: Duration::ZERO };
        let run = run_threaded_durable(
            sys,
            WalBackend::new(WalConfig::default()),
            spread_scripts(16, 8),
            &cfg,
            &gc,
        );
        assert_eq!(run.report.committed, 16);
        assert_eq!(run.fsyncs, 16, "baseline: one fsync per commit");
        assert_eq!(
            run.report.rounds,
            run.report.committed + run.report.voluntary_aborts + run.report.retries,
            "attempt identity holds for the durable executor too"
        );
    }

    #[test]
    fn durable_mpl_holds_slots_through_the_commit_barrier() {
        // MPL on the durable executor: a committer keeps its admission slot
        // until its record is durable, so a slow flush device throttles
        // admission instead of letting transactions pile up behind the WAL.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 8, bank_nrbc());
        let cfg = ThreadedCfg { workers: 4, mpl: 1, ..Default::default() };
        let gc = GroupCommitCfg { group_commit: true, flush_delay: Duration::from_micros(500) };
        let run = run_threaded_durable(
            sys,
            WalBackend::new(WalConfig::default()),
            spread_scripts(16, 8),
            &cfg,
            &gc,
        );
        assert_eq!(run.report.committed, 16);
        assert!(run.report.admission_rounds > 0, "slow flushes must park admitters");
        let mut rec: DurableSystem<
            BankAccount,
            UipEngine<BankAccount>,
            _,
            WalBackend<BankAccount>,
        > = DurableSystem::with_backend(BankAccount::default(), 8, bank_nrbc(), run.backend);
        rec.crash_and_recover_with(TornPolicy::Strict).unwrap();
        assert_eq!(rec.journal().len(), 16);
    }

    #[test]
    fn durable_group_commit_handles_contention_and_deadlocks() {
        // The contended crosswise pattern under the durable executor with
        // group commit: every script must still commit, and the journal must
        // replay to the same state.
        let sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
        for i in 0..8 {
            let (first, second) = if i % 2 == 0 { (X, y) } else { (y, X) };
            scripts.push(Box::new(OpsScript::new(vec![
                (first, BankInv::Balance),
                (second, BankInv::Deposit(1)),
            ])));
        }
        let cfg = ThreadedCfg { workers: 4, ..Default::default() };
        let gc = GroupCommitCfg { group_commit: true, flush_delay: Duration::from_micros(200) };
        let run =
            run_threaded_durable(sys, WalBackend::new(WalConfig::default()), scripts, &cfg, &gc);
        assert_eq!(run.report.committed, 8);
        let mut rec: DurableSystem<
            BankAccount,
            UipEngine<BankAccount>,
            _,
            WalBackend<BankAccount>,
        > = DurableSystem::with_backend(BankAccount::default(), 2, bank_nrbc(), run.backend);
        rec.crash_and_recover_with(TornPolicy::Strict).unwrap();
        assert_eq!(rec.journal().len(), 8);
        assert_eq!(rec.committed_state(X) + rec.committed_state(y), 8);
    }
}
