//! Sharded durable runtime: presumed-abort two-phase commit across
//! independently crashing [`DurableSystem`] shards.
//!
//! The paper's model (and every layer below this one) is a single recovery
//! domain: one log, one crash, one recovery scan. This module partitions
//! the object space across `n` full durable systems — each with its own
//! WAL, checkpoint lifecycle, [`SystemMode`] and fault channels — and
//! coordinates cross-shard transactions with **presumed-abort 2PC**
//! journaled through the very same frame/recovery machinery:
//!
//! * phase one: every participant durably appends a PREPARE frame (the
//!   full commit record under the coordinator's global id) — the yes-vote
//!   — and keeps the transaction *active*, holding its locks;
//! * the coordinator durably records only **commit** decisions
//!   ([`CoordinatorLog`]); the absence of a record *is* the abort decision
//!   (presumed abort — no durable write on the abort path, none on
//!   read-only votes);
//! * phase two: each participant durably appends the DECIDE frame, then
//!   applies it (volatile commit or abort, locks released either way).
//!
//! Crash of any shard subset is survivable at any point: a participant
//! that lost power between its PREPARE and DECIDE frames recovers the
//! transaction *in doubt* — a ghost re-holding the locks — and
//! [`ShardedSystem::resolve_in_doubt`] settles it deterministically by
//! querying the coordinator's durable commit set, else presuming abort. A
//! torn PREPARE classifies as a torn tail and is discarded by recovery:
//! exactly the no-vote the coordinator presumed. A degraded shard refuses
//! its own prepares ([`TxnError::ReadOnly`] — a no-vote) but is never
//! consulted for transactions that do not touch it.
//!
//! The global dynamic-atomicity oracle leg ([`check_uniform_outcome`])
//! demands the outcome of every global transaction be *uniform* across its
//! participants — no subset crash, coordinator crash, or crash at any 2PC
//! step may commit a transaction on one shard and abort it on another. The
//! [`CoordinatorLog::arm_lose_decision`] sabotage (the decision record
//! evaporates after participants were told to commit) is the negative
//! control: it manufactures exactly the mixed outcome the leg must catch.

use std::collections::{BTreeMap, BTreeSet};

use ccr_core::adt::Adt;
use ccr_core::conflict::Conflict;
use ccr_core::ids::{ObjectId, TxnId};
use ccr_store::LogBackend;

use crate::crash::{DurableSystem, RedoError, SystemSnapshot, TornPolicy};
use crate::engine::RecoveryEngine;
use crate::error::TxnError;

/// The coordinator's stable storage: the set of global transaction ids
/// durably decided **commit**. Presumed abort needs nothing else — an id
/// absent from this set, with no live coordinator memory, is abort.
#[derive(Clone, Debug, Default)]
pub struct CoordinatorLog {
    durable: BTreeSet<u64>,
    lose_next: bool,
    lost: u64,
}

impl CoordinatorLog {
    /// Durably record a commit decision. Returns whether the record
    /// actually reached stable storage — `false` only under the armed
    /// [sabotage](Self::arm_lose_decision) (the negative control).
    pub fn log_commit(&mut self, gtid: u64) -> bool {
        if self.lose_next {
            self.lose_next = false;
            self.lost += 1;
            return false;
        }
        self.durable.insert(gtid);
        true
    }

    /// The durable decision for `gtid`: `true` iff a commit record exists
    /// (presumed abort otherwise).
    pub fn decision(&self, gtid: u64) -> bool {
        self.durable.contains(&gtid)
    }

    /// Every durably committed global id, ascending.
    pub fn committed(&self) -> impl Iterator<Item = u64> + '_ {
        self.durable.iter().copied()
    }

    /// Sabotage (negative control): the *next* commit decision is silently
    /// lost — participants proceed on the coordinator's volatile word, the
    /// durable record never lands, and a crash before every participant
    /// resolved manufactures a mixed outcome for the oracle to catch.
    pub fn arm_lose_decision(&mut self) {
        self.lose_next = true;
    }

    /// Decision records lost to the sabotage so far.
    pub fn lost_decisions(&self) -> u64 {
        self.lost
    }
}

/// A live cross-shard transaction: one local transaction per participant
/// shard, plus which of those participants hold a durable PREPARE.
#[derive(Clone, Debug, Default)]
struct GlobalTxn {
    parts: BTreeMap<usize, TxnId>,
    prepared: BTreeSet<usize>,
}

/// A global transaction whose outcome differs across its participants —
/// the global dynamic-atomicity violation [`check_uniform_outcome`] hunts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalAtomicityViolation {
    /// The split transaction's global id.
    pub gtid: u64,
    /// Participant shards where its effects are visible.
    pub committed_on: Vec<usize>,
    /// Participant shards where they are not.
    pub aborted_on: Vec<usize>,
}

/// The eighth oracle leg: every global transaction's outcome must be
/// uniform across its participants. `gtids` lists each global transaction
/// with its participant shards; `visible` reports whether its effects
/// survived on one shard. Single-participant transactions are trivially
/// uniform; the first split found is returned.
pub fn check_uniform_outcome(
    gtids: &[(u64, Vec<usize>)],
    mut visible: impl FnMut(u64, usize) -> bool,
) -> Result<(), GlobalAtomicityViolation> {
    for (gtid, parts) in gtids {
        let (committed_on, aborted_on): (Vec<usize>, Vec<usize>) =
            parts.iter().partition(|&&s| visible(*gtid, s));
        if !committed_on.is_empty() && !aborted_on.is_empty() {
            return Err(GlobalAtomicityViolation { gtid: *gtid, committed_on, aborted_on });
        }
    }
    Ok(())
}

/// The canonical crash points of one cross-shard commit, for the fault
/// planner's crash-at-every-2PC-step arm
/// ([`FaultKind::TwoPcCrash`](crate::fault::FaultKind::TwoPcCrash)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoPcStep {
    /// The coordinator dies after the prepares, before any decision:
    /// every participant is left in doubt; presumed abort resolves them.
    CoordinatorAfterPrepare,
    /// The first participant dies in doubt (prepare durable, no decision);
    /// the coordinator still holds every durable yes-vote and commits.
    ParticipantInDoubt,
    /// Coordinator *and* first participant die after the commit decision
    /// reached stable storage and part of the fleet: the survivor of the
    /// doubt window finds the durable decision and commits.
    BothAfterDecide,
    /// A participant dies in doubt and then dies *again* during its own
    /// recovery (nested crash inside the recovery scan).
    CrashDuringRecovery,
}

impl TwoPcStep {
    /// Map the fault plan's numeric step (any u32) onto the table.
    pub fn from_index(step: u32) -> Self {
        match step % 4 {
            0 => TwoPcStep::CoordinatorAfterPrepare,
            1 => TwoPcStep::ParticipantInDoubt,
            2 => TwoPcStep::BothAfterDecide,
            _ => TwoPcStep::CrashDuringRecovery,
        }
    }
}

/// `n` full durable systems, each the recovery domain for the objects it
/// owns (`ObjectId % n`), coordinated by presumed-abort 2PC. See the
/// module docs for the protocol.
pub struct ShardedSystem<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    shards: Vec<DurableSystem<A, E, C, B>>,
    coord: CoordinatorLog,
    next_gtid: u64,
    live: BTreeMap<u64, GlobalTxn>,
}

impl<A, E, C, B> ShardedSystem<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A> + Clone,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    /// Build a fleet from per-shard constructors (`make(i)` builds shard
    /// `i`; each shard must cover the full object space — routing, not the
    /// shard, decides ownership).
    pub fn new_with(nshards: usize, make: impl FnMut(usize) -> DurableSystem<A, E, C, B>) -> Self {
        assert!(nshards >= 1, "a fleet needs at least one shard");
        ShardedSystem {
            shards: (0..nshards).map(make).collect(),
            coord: CoordinatorLog::default(),
            next_gtid: 1,
            live: BTreeMap::new(),
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `obj`.
    pub fn shard_of(&self, obj: ObjectId) -> usize {
        obj.0 as usize % self.shards.len()
    }

    /// Shared access to shard `i`.
    pub fn shard(&self, i: usize) -> &DurableSystem<A, E, C, B> {
        &self.shards[i]
    }

    /// Mutable access to shard `i` (fault injection, state reads).
    pub fn shard_mut(&mut self, i: usize) -> &mut DurableSystem<A, E, C, B> {
        &mut self.shards[i]
    }

    /// The coordinator's durable commit set.
    pub fn coordinator(&self) -> &CoordinatorLog {
        &self.coord
    }

    /// Mutable coordinator access (the sabotage arm).
    pub fn coordinator_mut(&mut self) -> &mut CoordinatorLog {
        &mut self.coord
    }

    /// The next global id the allocator will hand out (model checker's
    /// canonical state key).
    pub fn next_gtid(&self) -> u64 {
        self.next_gtid
    }

    /// Begin a global transaction. Local transactions are begun lazily on
    /// the first operation routed to each shard.
    pub fn begin_global(&mut self) -> u64 {
        let gtid = self.next_gtid;
        self.next_gtid += 1;
        self.live.insert(gtid, GlobalTxn::default());
        gtid
    }

    /// Execute one operation of global transaction `gtid` on the shard
    /// owning `obj`.
    pub fn invoke_global(
        &mut self,
        gtid: u64,
        obj: ObjectId,
        inv: A::Invocation,
    ) -> Result<A::Response, TxnError> {
        let s = self.shard_of(obj);
        let Some(gt) = self.live.get_mut(&gtid) else {
            return Err(TxnError::NotActive(TxnId(gtid as u32)));
        };
        let txn = match gt.parts.get(&s) {
            Some(&t) => t,
            None => {
                let t = self.shards[s].begin();
                gt.parts.insert(s, t);
                t
            }
        };
        self.shards[s].invoke(txn, obj, inv)
    }

    /// The participant shards of a live global transaction, ascending.
    pub fn participants(&self, gtid: u64) -> Vec<usize> {
        self.live.get(&gtid).map(|g| g.parts.keys().copied().collect()).unwrap_or_default()
    }

    /// Abort a global transaction everywhere: local aborts on unprepared
    /// participants, durable abort decisions on prepared ones. Per
    /// presumed abort the coordinator records nothing.
    pub fn abort_global(&mut self, gtid: u64) {
        let Some(gt) = self.live.remove(&gtid) else { return };
        for (&s, &txn) in &gt.parts {
            if gt.prepared.contains(&s) {
                let _ = self.shards[s].resolve(gtid, false);
            } else {
                let _ = self.shards[s].abort(txn);
            }
        }
    }

    /// 2PC phase one: collect a durable yes-vote from every participant,
    /// in shard order. Any no-vote (degraded shard, crashed device, dead
    /// transaction) aborts the transaction globally — prepared
    /// participants get a durable abort decision, unprepared ones a local
    /// abort — and surfaces the vote's error. On `Ok` every participant
    /// holds a durable PREPARE and awaits the decision.
    pub fn prepare_all(&mut self, gtid: u64) -> Result<(), TxnError> {
        let Some(gt) = self.live.get(&gtid) else {
            return Err(TxnError::NotActive(TxnId(gtid as u32)));
        };
        let parts: Vec<(usize, TxnId)> = gt.parts.iter().map(|(&s, &t)| (s, t)).collect();
        for (s, txn) in parts {
            match self.shards[s].prepare(txn, gtid) {
                Ok(()) => {
                    self.live.get_mut(&gtid).expect("checked live above").prepared.insert(s);
                }
                Err(e) => {
                    self.abort_global(gtid);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// 2PC decision: durably record commit for a fully prepared
    /// transaction. Returns whether the record reached stable storage
    /// (`false` only under the armed lose-decision sabotage). Panics if a
    /// participant has not durably voted — deciding commit without every
    /// yes-vote is a coordinator bug, not a runtime condition.
    pub fn decide_commit(&mut self, gtid: u64) -> bool {
        let gt = self.live.get(&gtid).expect("decide for a live transaction");
        assert!(
            gt.prepared.len() == gt.parts.len(),
            "coordinator bug: commit decided for gtid {gtid} without every yes-vote"
        );
        self.coord.log_commit(gtid)
    }

    /// 2PC phase two for one participant: durably journal and apply the
    /// decision on shard `s`.
    pub fn resolve_participant(
        &mut self,
        gtid: u64,
        s: usize,
        commit: bool,
    ) -> Result<(), TxnError> {
        let r = self.shards[s].resolve(gtid, commit);
        if r.is_ok() {
            if let Some(gt) = self.live.get_mut(&gtid) {
                gt.parts.remove(&s);
                gt.prepared.remove(&s);
                if gt.parts.is_empty() {
                    self.live.remove(&gtid);
                }
            }
        }
        r
    }

    /// Commit a global transaction. Single-participant transactions take
    /// the fast path — a plain local commit, no PREPARE/DECIDE frames, no
    /// coordinator record (the shard's own log is the whole recovery
    /// domain). Cross-shard transactions run full presumed-abort 2PC.
    pub fn commit_global(&mut self, gtid: u64) -> Result<(), TxnError> {
        let Some(gt) = self.live.get(&gtid) else {
            return Err(TxnError::NotActive(TxnId(gtid as u32)));
        };
        match gt.parts.len() {
            0 => {
                self.live.remove(&gtid);
                Ok(())
            }
            1 => {
                let (&s, &txn) = gt.parts.iter().next().expect("one participant");
                let r = self.shards[s].commit(txn);
                self.live.remove(&gtid);
                r
            }
            _ => {
                self.prepare_all(gtid)?;
                self.decide_commit(gtid);
                for s in self.participants(gtid) {
                    self.resolve_participant(gtid, s, true)?;
                }
                Ok(())
            }
        }
    }

    /// Crash the shard subset named by `mask` (bit `i` ⇒ shard `i`), each
    /// recovering under [`TornPolicy::DiscardTail`] — a torn tail is a
    /// commit (or prepare) that never finished, which presumed abort
    /// already accounts for. A live global transaction that lost an
    /// *unprepared* half (its volatile operations evaporated with the
    /// shard) can never collect that yes-vote: it is aborted globally —
    /// prepared halves anywhere get a durable abort decision (a ghost
    /// resolves by gtid just like a live preparee), unprepared halves on
    /// surviving shards a local abort. A transaction whose crashed halves
    /// were all *prepared* stays live: its doubt is durable, and the
    /// still-running coordinator may yet decide either way.
    pub fn crash_subset(&mut self, mask: u32) -> Result<(), RedoError> {
        let mask = mask & ((1u32 << self.shards.len().min(31)) - 1);
        if mask == 0 {
            return Ok(());
        }
        for s in 0..self.shards.len() {
            if mask & (1 << s) != 0 {
                self.shards[s].crash_and_recover_with(TornPolicy::DiscardTail)?;
            }
        }
        let doomed: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, gt)| {
                gt.parts.keys().any(|&s| mask & (1 << s) != 0 && !gt.prepared.contains(&s))
            })
            .map(|(&g, _)| g)
            .collect();
        for gtid in doomed {
            let gt = self.live.remove(&gtid).expect("collected from live");
            debug_assert!(!self.coord.decision(gtid), "commit decided without every yes-vote");
            for (&s, &txn) in &gt.parts {
                if gt.prepared.contains(&s) {
                    let _ = self.shards[s].resolve(gtid, false);
                } else if mask & (1 << s) == 0 {
                    let _ = self.shards[s].abort(txn);
                }
            }
        }
        Ok(())
    }

    /// Crash the coordinator: its volatile memory (live transaction table,
    /// id allocator) is lost; only [`CoordinatorLog`]'s durable commit set
    /// survives. Participants keep running — unprepared halves of orphaned
    /// transactions are aborted locally, prepared halves stay in doubt
    /// until [`resolve_in_doubt`](Self::resolve_in_doubt). The global-id
    /// allocator restarts above every id with a durable trace (a decision
    /// record or an in-doubt prepare), so no live id is ever reissued.
    pub fn crash_coordinator(&mut self) {
        let live = std::mem::take(&mut self.live);
        for (gtid, gt) in live {
            for (&s, &txn) in &gt.parts {
                if !gt.prepared.contains(&s) {
                    let _ = self.shards[s].abort(txn);
                } else {
                    let _ = gtid; // stays in doubt on shard `s`
                }
            }
        }
        let mut floor = 0u64;
        for g in self.coord.committed() {
            floor = floor.max(g);
        }
        for shard in &self.shards {
            for g in shard.in_doubt() {
                floor = floor.max(g);
            }
        }
        self.next_gtid = floor + 1;
    }

    /// Settle every in-doubt transaction on every shard from durable
    /// truth: the coordinator's commit record if one exists, presumed
    /// abort otherwise. Returns the number resolved. Idempotent —
    /// resolution is itself durable, so a crash mid-settlement just leaves
    /// fewer entries for the retry.
    pub fn resolve_in_doubt(&mut self) -> usize {
        let mut resolved = 0;
        for s in 0..self.shards.len() {
            for gtid in self.shards[s].in_doubt() {
                let commit = self.coord.decision(gtid);
                if self.shards[s].resolve_in_doubt(gtid, commit).is_ok() {
                    resolved += 1;
                    // Scrub the settled half from the live table (the
                    // ghost's pre-crash TxnId is long dead).
                    if let Some(gt) = self.live.get_mut(&gtid) {
                        gt.parts.remove(&s);
                        gt.prepared.remove(&s);
                        if gt.parts.is_empty() {
                            self.live.remove(&gtid);
                        }
                    }
                }
            }
        }
        resolved
    }

    /// Global ids in doubt anywhere in the fleet, ascending, deduplicated.
    pub fn in_doubt(&self) -> Vec<u64> {
        let mut all = BTreeSet::new();
        for shard in &self.shards {
            all.extend(shard.in_doubt());
        }
        all.into_iter().collect()
    }

    /// Capture the complete fleet state — every shard's volatile + stable
    /// snapshot, the coordinator log, the id allocator and the live
    /// transaction table — for later [`restore`](Self::restore). The
    /// sharded model checker's DFS fork point.
    pub fn snapshot(&self) -> ShardedSnapshot<A, E, C, B> {
        ShardedSnapshot {
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            coord: self.coord.clone(),
            next_gtid: self.next_gtid,
            live: self.live.clone(),
        }
    }

    /// Rewind to a snapshot taken from this (or an identically configured)
    /// fleet. Non-consuming.
    pub fn restore(&mut self, snap: &ShardedSnapshot<A, E, C, B>) {
        assert_eq!(self.shards.len(), snap.shards.len(), "snapshot from a different fleet");
        for (shard, s) in self.shards.iter_mut().zip(&snap.shards) {
            shard.restore(s);
        }
        self.coord = snap.coord.clone();
        self.next_gtid = snap.next_gtid;
        self.live = snap.live.clone();
    }

    /// Run one cross-shard commit *through* a crash at the given 2PC step
    /// (the fault planner's crash-at-every-step arm), then settle the
    /// fleet. Returns whether the transaction ultimately committed —
    /// deterministic per step: presumed abort at
    /// [`TwoPcStep::CoordinatorAfterPrepare`] and
    /// [`TwoPcStep::CrashDuringRecovery`] (no decision record exists),
    /// commit at the other two (every yes-vote, or the decision itself,
    /// is already durable). The transaction must be live with at least
    /// two participants.
    pub fn commit_global_with_crash(
        &mut self,
        gtid: u64,
        step: TwoPcStep,
    ) -> Result<bool, RedoError> {
        let parts = self.participants(gtid);
        assert!(parts.len() >= 2, "2PC crash steps need a cross-shard transaction");
        let first = parts[0];
        if self.prepare_all(gtid).is_err() {
            // A no-vote aborted the transaction before the crash point was
            // reached; the step becomes a plain settled abort.
            self.resolve_in_doubt();
            return Ok(false);
        }
        match step {
            TwoPcStep::CoordinatorAfterPrepare => {
                self.crash_coordinator();
                self.resolve_in_doubt();
                Ok(false)
            }
            TwoPcStep::ParticipantInDoubt => {
                self.crash_subset(1 << first)?;
                // Every yes-vote is durable, so the transaction stayed
                // live across the crash: the coordinator commits, resolves
                // the surviving participants directly, and the crashed
                // one settles from doubt against the decision record.
                self.coord.log_commit(gtid);
                for s in self.participants(gtid) {
                    if s != first {
                        let _ = self.resolve_participant(gtid, s, true);
                    }
                }
                self.live.remove(&gtid);
                self.resolve_in_doubt();
                Ok(true)
            }
            TwoPcStep::BothAfterDecide => {
                self.decide_commit(gtid);
                let _ = self.resolve_participant(gtid, first, true);
                let rest: u32 = self.participants(gtid).iter().fold(0, |m, &s| m | (1 << s));
                self.crash_coordinator();
                self.crash_subset(rest)?;
                self.resolve_in_doubt();
                Ok(true)
            }
            TwoPcStep::CrashDuringRecovery => {
                // The participant dies in doubt, then its recovery is
                // itself interrupted by a nested power loss (absorbed
                // internally; doubt must still be stable across it).
                self.shards[first].crash_recover_interrupted(TornPolicy::DiscardTail, 2)?;
                self.crash_coordinator();
                self.resolve_in_doubt();
                Ok(false)
            }
        }
    }
}

/// A restorable snapshot of a whole [`ShardedSystem`]: one
/// [`SystemSnapshot`] per shard plus the coordinator log, the global-id
/// allocator and the live cross-shard transaction table.
pub struct ShardedSnapshot<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    shards: Vec<SystemSnapshot<A, E, C, B>>,
    coord: CoordinatorLog,
    next_gtid: u64,
    live: BTreeMap<u64, GlobalTxn>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::SystemMode;
    use crate::engine::UipEngine;
    use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv};
    use ccr_store::{WalBackend, WalConfig};

    type Sharded = ShardedSystem<
        BankAccount,
        UipEngine<BankAccount>,
        ccr_core::conflict::FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;

    /// Two disk-backed shards over four objects: 0/2 live on shard 0,
    /// 1/3 on shard 1.
    fn fleet(nshards: usize) -> Sharded {
        ShardedSystem::new_with(nshards, |_| {
            DurableSystem::with_backend(
                BankAccount::default(),
                4,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            )
        })
    }

    const S0: ObjectId = ObjectId(0);
    const S1: ObjectId = ObjectId(1);

    #[test]
    fn cross_shard_commit_is_durable_on_every_shard() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        assert_eq!(sys.participants(g), vec![0, 1]);
        sys.commit_global(g).unwrap();
        sys.crash_subset(0b11).unwrap();
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.shard_mut(0).committed_state(S0), 10);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 20);
        // The decision was journaled per participant: each shard's own log
        // replays it without the coordinator.
        assert!(sys.coordinator().decision(g));
    }

    #[test]
    fn single_participant_commit_skips_two_phase() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(7)).unwrap();
        sys.commit_global(g).unwrap();
        // Fast path: no coordinator record, no prepare/decide frames.
        assert!(!sys.coordinator().decision(g));
        assert_eq!(sys.shard(0).stats().prepares, 0);
        sys.crash_subset(0b01).unwrap();
        assert_eq!(sys.shard_mut(0).committed_state(S0), 7);
    }

    #[test]
    fn coordinator_death_after_prepare_presumes_abort() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        let committed =
            sys.commit_global_with_crash(g, TwoPcStep::CoordinatorAfterPrepare).unwrap();
        assert!(!committed);
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.shard_mut(0).committed_state(S0), 0);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 0);
        // Uniform outcome either way.
        let mut sys2 = sys;
        check_uniform_outcome(&[(g, vec![0, 1])], |_, s| {
            sys2.shard_mut(s).committed_state(ObjectId(s as u32)) != 0
        })
        .unwrap();
    }

    #[test]
    fn participant_death_in_doubt_commits_from_the_decision_record() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        let committed = sys.commit_global_with_crash(g, TwoPcStep::ParticipantInDoubt).unwrap();
        assert!(committed);
        assert_eq!(sys.shard_mut(0).committed_state(S0), 10);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 20);
        assert_eq!(sys.shard(0).stats().resolved, 1, "shard 0 settled from doubt");
    }

    #[test]
    fn both_dying_after_a_durable_decision_still_commits_everywhere() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        let committed = sys.commit_global_with_crash(g, TwoPcStep::BothAfterDecide).unwrap();
        assert!(committed);
        assert_eq!(sys.shard_mut(0).committed_state(S0), 10);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 20);
        // And survives yet another full-fleet crash.
        sys.crash_subset(0b11).unwrap();
        assert_eq!(sys.shard_mut(0).committed_state(S0), 10);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 20);
    }

    #[test]
    fn nested_crash_during_participant_recovery_keeps_doubt_stable() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        let committed = sys.commit_global_with_crash(g, TwoPcStep::CrashDuringRecovery).unwrap();
        assert!(!committed);
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.shard_mut(0).committed_state(S0), 0);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 0);
    }

    #[test]
    fn lost_decision_record_is_caught_by_the_uniformity_leg() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(10)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(20)).unwrap();
        sys.prepare_all(g).unwrap();
        // Sabotage: the commit decision evaporates...
        sys.coordinator_mut().arm_lose_decision();
        assert!(!sys.decide_commit(g), "the armed decision record must be lost");
        // ...but shard 0 is told to commit before anyone notices...
        sys.resolve_participant(g, 0, true).unwrap();
        // ...and shard 1 dies in doubt. Settlement presumes abort there.
        sys.crash_subset(0b10).unwrap();
        assert_eq!(sys.resolve_in_doubt(), 1);
        assert_eq!(sys.coordinator().lost_decisions(), 1);
        // Mixed outcome: exactly what the eighth leg exists to catch.
        let err = check_uniform_outcome(&[(g, vec![0, 1])], |_, s| {
            sys.shard_mut(s).committed_state(ObjectId(s as u32)) != 0
        })
        .unwrap_err();
        assert_eq!(
            err,
            GlobalAtomicityViolation { gtid: g, committed_on: vec![0], aborted_on: vec![1] }
        );
    }

    #[test]
    fn degraded_shard_never_blocks_commits_that_avoid_it() {
        let mut sys = fleet(2);
        // Shard 1's device fills up and its next commit degrades it.
        sys.shard_mut(1).backend_mut().set_device_full(true);
        let g = sys.begin_global();
        sys.invoke_global(g, S1, BankInv::Deposit(1)).unwrap();
        assert!(sys.commit_global(g).is_err());
        assert_eq!(sys.shard(1).mode(), SystemMode::Degraded);
        // A transaction touching only shard 0 commits unimpeded.
        let h = sys.begin_global();
        sys.invoke_global(h, S0, BankInv::Deposit(5)).unwrap();
        sys.commit_global(h).unwrap();
        assert_eq!(sys.shard_mut(0).committed_state(S0), 5);
        // A cross-shard transaction gets shard 1's no-vote and aborts
        // uniformly — shard 0's half must not commit.
        let k = sys.begin_global();
        sys.invoke_global(k, S0, BankInv::Deposit(100)).unwrap();
        sys.invoke_global(k, S1, BankInv::Deposit(100)).unwrap();
        assert!(matches!(sys.commit_global(k), Err(TxnError::ReadOnly)));
        assert_eq!(sys.shard_mut(0).committed_state(S0), 5);
        assert_eq!(sys.shard_mut(1).committed_state(S1), 0);
        assert!(sys.in_doubt().is_empty());
    }

    #[test]
    fn coordinator_restart_reissues_no_traced_gtid() {
        let mut sys = fleet(2);
        let g = sys.begin_global();
        sys.invoke_global(g, S0, BankInv::Deposit(1)).unwrap();
        sys.invoke_global(g, S1, BankInv::Deposit(1)).unwrap();
        sys.commit_global(g).unwrap();
        let h = sys.begin_global();
        sys.invoke_global(h, S0, BankInv::Deposit(2)).unwrap();
        sys.invoke_global(h, S1, BankInv::Deposit(2)).unwrap();
        sys.prepare_all(h).unwrap();
        sys.crash_coordinator();
        // Both the decided gtid and the in-doubt one stay retired.
        let next = sys.begin_global();
        assert!(next > g && next > h);
        sys.resolve_in_doubt();
        assert_eq!(sys.shard_mut(0).committed_state(S0), 1);
    }
}
