//! Recovery engines: executable realisations of the paper's two `View`
//! functions (§5).
//!
//! * [`UipEngine`] — **update-in-place**: a single current state plus a
//!   tagged operation log. Aborts remove the transaction's entries and
//!   rebuild the state — by *logical inverses* when the ADT provides them
//!   ([`ccr_adt::traits::InvertibleAdt`], O(ops-to-undo)), falling back to
//!   replay of the surviving log (O(log length)). The visible state equals
//!   the paper's `UIP(H, A)` view for every transaction.
//! * [`DuEngine`] — **deferred update**: a committed base state (in commit
//!   order) plus per-transaction intentions lists (private workspaces). The
//!   visible state equals `DU(H, A)`: the committed base plus the
//!   transaction's own operations. Commit applies the intentions to the
//!   base after a validation pass; abort just drops the list.
//!
//! Engine invariants are cross-checked against the abstract `View` functions
//! on recorded histories in the integration tests.

use std::collections::BTreeMap;

use ccr_adt::traits::InvertibleAdt;
use ccr_core::adt::{Adt, Op};
use ccr_core::ids::{ObjectId, TxnId};

use crate::error::RecoveryError;

/// A per-object recovery engine.
pub trait RecoveryEngine<A: Adt>: Send + 'static {
    /// Construct for an object of the given specification.
    fn new(adt: A, obj: ObjectId) -> Self;

    /// The serial state transaction `txn` observes (used to choose
    /// responses).
    fn view_state(&mut self, txn: TxnId) -> A::State;

    /// Record an executed operation (the response was chosen against
    /// `view_state(txn)`; `post` is the resulting state).
    fn record(&mut self, txn: TxnId, op: Op<A>, post: A::State);

    /// Validate that `txn` can commit (deferred-update engines check that
    /// the intentions apply to the current base). Must not mutate state.
    fn prepare_commit(&mut self, txn: TxnId) -> Result<(), RecoveryError>;

    /// Commit `txn` (infallible after a successful [`Self::prepare_commit`]).
    fn commit(&mut self, txn: TxnId);

    /// Abort `txn`, undoing its effects.
    fn abort(&mut self, txn: TxnId) -> Result<(), RecoveryError>;

    /// Whether `txn` can no longer proceed because recovery invalidated its
    /// view (deferred-update workspaces whose intentions no longer apply).
    /// The system aborts such transactions with a validation failure.
    fn is_doomed(&mut self, _txn: TxnId) -> bool {
        false
    }

    /// The state reflecting only committed transactions (for inspection and
    /// final-state assertions).
    fn committed_state(&mut self) -> A::State;

    /// Reset the engine so `state` is its committed base — used by crash
    /// recovery to seed an object from a checkpoint image before replaying
    /// the log suffix. All in-flight transaction state is discarded (a crash
    /// already destroyed it).
    fn restore(&mut self, state: A::State);

    /// Engine name for reports.
    fn name() -> &'static str;
}

/// How [`UipEngine`] rebuilds state on abort.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UndoStrategy {
    /// Replay the surviving log from the base state.
    #[default]
    Replay,
    /// Apply logical inverses of the aborted transaction's operations in
    /// reverse order (falls back to replay if an inverse is unavailable).
    /// Requires `A: InvertibleAdt` — see [`UipEngine::with_inverses`].
    Inverse,
}

/// Update-in-place engine. See module docs.
///
/// `Clone` snapshots the full volatile engine state (base fold, in-flight
/// log, commit set) — the model checker's explorer clones whole systems.
#[derive(Clone)]
pub struct UipEngine<A: Adt> {
    adt: A,
    obj: ObjectId,
    /// State reflecting `base_committed` (a fold of compacted log prefix).
    base: A::State,
    /// Operations of non-aborted transactions executed since `base`, in
    /// execution order.
    log: Vec<(TxnId, Op<A>)>,
    /// Cached fold of `base` + `log` — the single "current" state.
    current: A::State,
    /// Which of the log's owners have committed (for compaction).
    committed: std::collections::BTreeSet<TxnId>,
    strategy: UndoStrategy,
    use_inverses: Option<UndoFn<A>>,
}

/// A logical-inverse function: remove `op`'s effect from the state.
type UndoFn<A> = fn(&A, &<A as Adt>::State, &Op<A>) -> Option<<A as Adt>::State>;

impl<A: Adt> RecoveryEngine<A> for UipEngine<A> {
    fn new(adt: A, obj: ObjectId) -> Self {
        let base = adt.initial();
        UipEngine {
            current: base.clone(),
            base,
            adt,
            obj,
            log: Vec::new(),
            committed: Default::default(),
            strategy: UndoStrategy::Replay,
            use_inverses: None,
        }
    }

    fn view_state(&mut self, _txn: TxnId) -> A::State {
        // UIP exposes the same current state to every transaction.
        self.current.clone()
    }

    fn record(&mut self, txn: TxnId, op: Op<A>, post: A::State) {
        debug_assert!(self.adt.apply(&self.current, &op).contains(&post));
        self.log.push((txn, op));
        self.current = post;
    }

    fn prepare_commit(&mut self, _txn: TxnId) -> Result<(), RecoveryError> {
        Ok(()) // update-in-place commits are trivially valid
    }

    fn commit(&mut self, txn: TxnId) {
        self.committed.insert(txn);
        self.compact();
    }

    fn abort(&mut self, txn: TxnId) -> Result<(), RecoveryError> {
        let undone: Vec<Op<A>> =
            self.log.iter().filter(|(t, _)| *t == txn).map(|(_, op)| op.clone()).collect();
        if undone.is_empty() {
            return Ok(());
        }
        self.log.retain(|(t, _)| *t != txn);
        if self.strategy == UndoStrategy::Inverse {
            if let Some(invert) = self.use_inverses {
                let mut s = self.current.clone();
                let mut ok = true;
                for op in undone.iter().rev() {
                    match invert(&self.adt, &s, op) {
                        Some(s2) => s = s2,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    self.current = s;
                    return Ok(());
                }
                // fall through to replay
            }
        }
        self.replay()
    }

    fn committed_state(&mut self) -> A::State {
        // Fold only committed owners' operations over the base. Under an
        // `NRBC`-containing conflict relation the committed subsequence is
        // legal; if not, fall back to the raw current state.
        let mut s = self.base.clone();
        for (t, op) in &self.log {
            if self.committed.contains(t) {
                match self.adt.apply(&s, op).into_iter().next() {
                    Some(s2) => s = s2,
                    None => return self.current.clone(),
                }
            }
        }
        s
    }

    fn restore(&mut self, state: A::State) {
        self.base = state.clone();
        self.current = state;
        self.log.clear();
        self.committed.clear();
    }

    fn name() -> &'static str {
        "UIP"
    }
}

impl<A: Adt> UipEngine<A> {
    /// Rebuild `current` by replaying the surviving log over `base`.
    fn replay(&mut self) -> Result<(), RecoveryError> {
        let mut s = self.base.clone();
        for (_, op) in &self.log {
            // Op-deterministic ADTs have at most one post-state; for others
            // the first is taken (a fixed choice function, as §4 permits).
            match self.adt.apply(&s, op).into_iter().next() {
                Some(s2) => s = s2,
                None => return Err(RecoveryError::ReplayFailed { obj: self.obj }),
            }
        }
        self.current = s;
        Ok(())
    }

    /// Fold committed-prefix operations into the base state so logs do not
    /// grow without bound.
    fn compact(&mut self) {
        let mut folded = 0;
        let mut s = self.base.clone();
        for (t, op) in &self.log {
            if !self.committed.contains(t) {
                break;
            }
            match self.adt.apply(&s, op).into_iter().next() {
                Some(s2) => s = s2,
                None => break,
            }
            folded += 1;
        }
        if folded > 0 {
            self.base = s;
            self.log.drain(..folded);
            // Committed markers are only needed while the owner still has
            // entries in the log; drop the rest so the set stays bounded.
            let live: std::collections::BTreeSet<TxnId> =
                self.log.iter().map(|(owner, _)| *owner).collect();
            self.committed.retain(|t| live.contains(t));
        }
    }

    /// The number of log entries not yet compacted (for tests and metrics).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

impl<A: InvertibleAdt> UipEngine<A> {
    /// Switch abort handling to logical inverses (O(1) per undone op for
    /// constant-size states) with replay as the fallback.
    pub fn with_inverses(mut self) -> Self {
        self.strategy = UndoStrategy::Inverse;
        self.use_inverses = Some(|adt, s, op| adt.undo(s, op));
        self
    }
}

/// A convenience engine type: update-in-place with inverse-based undo.
#[derive(Clone)]
pub struct UipInverseEngine<A: InvertibleAdt>(UipEngine<A>);

impl<A: InvertibleAdt> RecoveryEngine<A> for UipInverseEngine<A> {
    fn new(adt: A, obj: ObjectId) -> Self {
        UipInverseEngine(UipEngine::new(adt, obj).with_inverses())
    }

    fn view_state(&mut self, txn: TxnId) -> A::State {
        self.0.view_state(txn)
    }

    fn record(&mut self, txn: TxnId, op: Op<A>, post: A::State) {
        self.0.record(txn, op, post)
    }

    fn prepare_commit(&mut self, txn: TxnId) -> Result<(), RecoveryError> {
        self.0.prepare_commit(txn)
    }

    fn commit(&mut self, txn: TxnId) {
        self.0.commit(txn)
    }

    fn abort(&mut self, txn: TxnId) -> Result<(), RecoveryError> {
        self.0.abort(txn)
    }

    fn committed_state(&mut self) -> A::State {
        self.0.committed_state()
    }

    fn restore(&mut self, state: A::State) {
        self.0.restore(state)
    }

    fn name() -> &'static str {
        "UIP-inverse"
    }
}

/// Deferred-update engine. See module docs.
///
/// `Clone` snapshots committed base plus every private workspace.
#[derive(Clone)]
pub struct DuEngine<A: Adt> {
    adt: A,
    obj: ObjectId,
    /// State reflecting committed transactions, in commit order.
    base: A::State,
    /// Bumped on every commit; invalidates private-workspace caches.
    base_version: u64,
    /// Per-transaction intentions and cached private state.
    workspaces: BTreeMap<TxnId, Workspace<A>>,
}

#[derive(Clone)]
struct Workspace<A: Adt> {
    intentions: Vec<Op<A>>,
    cached: A::State,
    cached_version: u64,
    /// Set if a base change made the intentions inapplicable — the
    /// transaction is doomed and must abort.
    doomed: bool,
}

impl<A: Adt> DuEngine<A> {
    fn workspace(&mut self, txn: TxnId) -> &mut Workspace<A> {
        let base = self.base.clone();
        let version = self.base_version;
        self.workspaces.entry(txn).or_insert(Workspace {
            intentions: Vec::new(),
            cached: base,
            cached_version: version,
            doomed: false,
        })
    }

    /// Recompute a workspace's private state if the base moved under it.
    fn refresh(&mut self, txn: TxnId) {
        let base = self.base.clone();
        let version = self.base_version;
        let adt = self.adt.clone();
        let ws = self.workspace(txn);
        if ws.cached_version == version {
            return;
        }
        let mut s = base;
        for op in &ws.intentions {
            match adt.apply(&s, op).into_iter().next() {
                Some(s2) => s = s2,
                None => {
                    ws.doomed = true;
                    break;
                }
            }
        }
        if !ws.doomed {
            ws.cached = s;
        }
        ws.cached_version = version;
    }
}

impl<A: Adt> RecoveryEngine<A> for DuEngine<A> {
    fn new(adt: A, obj: ObjectId) -> Self {
        DuEngine { base: adt.initial(), adt, obj, base_version: 0, workspaces: BTreeMap::new() }
    }

    fn view_state(&mut self, txn: TxnId) -> A::State {
        self.refresh(txn);
        self.workspace(txn).cached.clone()
    }

    fn record(&mut self, txn: TxnId, op: Op<A>, post: A::State) {
        self.refresh(txn);
        let ws = self.workspace(txn);
        debug_assert!(!ws.doomed, "recording on a doomed workspace");
        ws.intentions.push(op);
        ws.cached = post;
    }

    fn prepare_commit(&mut self, txn: TxnId) -> Result<(), RecoveryError> {
        self.refresh(txn);
        let obj = self.obj;
        let adt = self.adt.clone();
        let base = self.base.clone();
        let ws = self.workspace(txn);
        if ws.doomed {
            return Err(RecoveryError::ApplyFailed { obj });
        }
        let mut s = base;
        for op in &ws.intentions {
            match adt.apply(&s, op).into_iter().next() {
                Some(s2) => s = s2,
                None => return Err(RecoveryError::ApplyFailed { obj }),
            }
        }
        Ok(())
    }

    fn commit(&mut self, txn: TxnId) {
        let Some(ws) = self.workspaces.remove(&txn) else {
            return;
        };
        let mut s = self.base.clone();
        for op in &ws.intentions {
            match self.adt.apply(&s, op).into_iter().next() {
                Some(s2) => s = s2,
                None => unreachable!("commit after successful prepare_commit"),
            }
        }
        if !ws.intentions.is_empty() {
            self.base = s;
            self.base_version += 1;
        }
    }

    fn abort(&mut self, txn: TxnId) -> Result<(), RecoveryError> {
        // Deferred update makes aborts trivial: discard the workspace.
        self.workspaces.remove(&txn);
        Ok(())
    }

    /// A base change can invalidate a workspace's intentions — possible only
    /// when the conflict relation does not contain `NFC`.
    fn is_doomed(&mut self, txn: TxnId) -> bool {
        self.refresh(txn);
        self.workspace(txn).doomed
    }

    fn committed_state(&mut self) -> A::State {
        self.base.clone()
    }

    fn restore(&mut self, state: A::State) {
        self.base = state;
        self.base_version += 1;
        self.workspaces.clear();
    }

    fn name() -> &'static str {
        "DU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{ops::*, BankAccount};
    use ccr_core::ids::{ObjectId, TxnId};

    const T: fn(u32) -> TxnId = TxnId;
    const X: ObjectId = ObjectId::SOLE;

    fn record<E: RecoveryEngine<BankAccount>>(
        e: &mut E,
        txn: TxnId,
        op: ccr_core::adt::Op<BankAccount>,
    ) {
        let s = e.view_state(txn);
        let post =
            BankAccount::default().apply(&s, &op).into_iter().next().expect("op legal in view");
        e.record(txn, op, post);
    }

    use ccr_core::adt::Adt;

    #[test]
    fn uip_view_is_shared_and_abort_replays() {
        let mut e = UipEngine::new(BankAccount::default(), X);
        record(&mut e, T(0), deposit(5));
        record(&mut e, T(1), deposit(3));
        // Both transactions see 8 — UIP exposes uncommitted effects.
        assert_eq!(e.view_state(T(0)), 8);
        assert_eq!(e.view_state(T(2)), 8);
        e.abort(T(0)).unwrap();
        assert_eq!(e.view_state(T(1)), 3);
        e.commit(T(1));
        assert_eq!(e.committed_state(), 3);
    }

    #[test]
    fn uip_inverse_undo_matches_replay() {
        // Drive the same interleaving through both undo strategies; the
        // resulting states must agree at every step.
        let mut replay = UipEngine::new(BankAccount::default(), X);
        let mut inverse = UipInverseEngine::new(BankAccount::default(), X);
        let script: &[(&str, TxnId, Option<ccr_core::adt::Op<BankAccount>>)] = &[
            ("op", T(0), Some(deposit(5))),
            ("op", T(1), Some(deposit(7))),
            ("op", T(0), Some(withdraw_ok(2))),
            ("op", T(2), Some(withdraw_ok(4))),
            ("abort", T(0), None),
            ("commit", T(1), None),
            ("abort", T(2), None),
        ];
        for (what, t, op) in script {
            match *what {
                "op" => {
                    let op = op.clone().unwrap();
                    record(&mut replay, *t, op.clone());
                    record(&mut inverse, *t, op);
                }
                "abort" => {
                    replay.abort(*t).unwrap();
                    inverse.abort(*t).unwrap();
                }
                "commit" => {
                    replay.commit(*t);
                    inverse.commit(*t);
                }
                _ => unreachable!(),
            }
            assert_eq!(
                replay.view_state(T(99)),
                inverse.view_state(T(99)),
                "strategies diverged after {what} {t}"
            );
        }
        assert_eq!(replay.committed_state(), 7);
        assert_eq!(inverse.committed_state(), 7);
    }

    #[test]
    fn du_views_are_private() {
        let mut e = DuEngine::new(BankAccount::default(), X);
        record(&mut e, T(0), deposit(5));
        assert_eq!(e.view_state(T(0)), 5, "own ops visible");
        assert_eq!(e.view_state(T(1)), 0, "others' uncommitted ops invisible");
        e.prepare_commit(T(0)).unwrap();
        e.commit(T(0));
        assert_eq!(e.view_state(T(1)), 5, "committed ops visible");
        assert_eq!(e.committed_state(), 5);
    }

    #[test]
    fn du_abort_discards_workspace() {
        let mut e = DuEngine::new(BankAccount::default(), X);
        record(&mut e, T(0), deposit(5));
        e.abort(T(0)).unwrap();
        assert_eq!(e.committed_state(), 0);
        assert_eq!(e.view_state(T(0)), 0, "fresh workspace after abort");
    }

    #[test]
    fn du_workspaces_refresh_when_the_base_moves() {
        let mut e = DuEngine::new(BankAccount::default(), X);
        // T1 opens a workspace against the empty base.
        assert_eq!(e.view_state(T(1)), 0);
        record(&mut e, T(1), deposit(3));
        assert_eq!(e.view_state(T(1)), 3);
        // T0 commits a deposit: T1's private view must now include it
        // *before* T1's own intentions (commit order precedes the active
        // transaction's ops in DU(H, A)).
        record(&mut e, T(0), deposit(10));
        e.prepare_commit(T(0)).unwrap();
        e.commit(T(0));
        assert_eq!(e.view_state(T(1)), 13);
        assert!(!e.is_doomed(T(1)));
    }

    #[test]
    fn du_commit_orders_by_commit_not_execution() {
        let mut e = DuEngine::new(BankAccount::default(), X);
        record(&mut e, T(1), deposit(3)); // B executes first
        record(&mut e, T(0), deposit(5));
        e.prepare_commit(T(0)).unwrap();
        e.commit(T(0)); // A commits first
        e.prepare_commit(T(1)).unwrap();
        e.commit(T(1));
        assert_eq!(e.committed_state(), 8);
    }

    #[test]
    fn du_doomed_workspace_fails_validation() {
        // Without NFC conflicts, two concurrent withdrawals over-draw; the
        // second to commit must fail validation.
        let mut e = DuEngine::new(BankAccount::default(), X);
        record(&mut e, T(9), deposit(3));
        e.prepare_commit(T(9)).unwrap();
        e.commit(T(9));
        record(&mut e, T(0), withdraw_ok(3));
        record(&mut e, T(1), withdraw_ok(3)); // both see balance 3
        e.prepare_commit(T(0)).unwrap();
        e.commit(T(0));
        assert!(e.is_doomed(T(1)));
        assert!(e.prepare_commit(T(1)).is_err());
    }

    #[test]
    fn uip_compaction_bounds_log() {
        let mut e = UipEngine::new(BankAccount::default(), X);
        for i in 0..10 {
            record(&mut e, T(i), deposit(1));
            e.commit(T(i));
        }
        assert_eq!(e.log_len(), 0, "fully committed log compacts away");
        assert_eq!(e.committed_state(), 10);
    }
}
