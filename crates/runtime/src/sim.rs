//! Deterministic fault-injection simulation with an atomicity oracle.
//!
//! [`run_sim`] drives seeded scripts through a [`DurableSystem`] exactly like
//! the plain scheduler, but counts every driver step on a global *event
//! counter* and injects the faults of a [`FaultPlan`] when the counter
//! reaches their indices: crashes (with optional torn final journal record),
//! forced aborts, delayed commits, wound storms, and — through the
//! `ccr-store` backend — sector-granularity storage faults: torn flushes,
//! reordered flushes, bit flips, transient I/O budgets (absorbed by the
//! backend's bounded retries) and a disk-full condition (driving the system
//! into read-only degraded mode until the scheduler's deterministic heal
//! flow checkpoints it back). After every injected fault — and once more
//! at the end of the run — an **oracle** checks that
//!
//! 1. the recorded history is dynamic atomic (paper §3.4, via the
//!    `ccr-core` checkers);
//! 2. redo-replay is equieffective with the pre-crash committed state
//!    (strict crashes) and with a shadow fold of the journal through the
//!    serial specification (all checks);
//! 3. the paper's two physical recovery views — redo in execution order
//!    (UIP) and commit-ordered replay (DU) — reconstruct the *same*
//!    committed state from the journal, modulo a legitimately-lost
//!    un-fsynced tail;
//! 4. injected storage damage is always *detected*: strict recovery must
//!    refuse a torn or corrupted log rather than replay it silently;
//! 5. any caller-supplied state invariant holds (e.g. escrow capacity
//!    bounds);
//! 6. (with [`SimCfg::fault_during_recovery`]) recovery *converges*: a
//!    fresh crash injected at every device-op index of recovery itself
//!    must, after power-cycling, recover to the baseline outcome.
//!
//! Everything is deterministic in `(seed, plan, scripts)`: the report —
//! including a fingerprint folded over every crash epoch's history — is
//! byte-identical across runs, which is what makes failures shrinkable
//! (see `ccr-workload`'s shrinker).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ccr_core::adt::Adt;
use ccr_core::atomicity::{check_dynamic_atomic_auto, DynAtomViolation, SystemSpec};
use ccr_core::conflict::Conflict;
use ccr_core::history::History;
use ccr_core::ids::{ObjectId, TxnId};
use ccr_obs::FaultCounter;
use ccr_store::{replay_uip, LogBackend, TailPolicy};

use crate::crash::{DurableSystem, RedoError, TornPolicy};
use crate::engine::RecoveryEngine;
use crate::error::{AbortReason, TxnError};
use crate::fault::{FaultKind, FaultPlan};
use crate::script::{Script, Step};
use crate::system::SystemStats;

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimCfg {
    /// RNG seed for the interleaving order.
    pub seed: u64,
    /// Retries per script before giving up.
    pub max_retries: usize,
    /// Safety cap on scheduler rounds.
    pub max_rounds: u64,
    /// Use the exhaustive dynamic-atomicity checker up to this many
    /// committed transactions; sample beyond it.
    pub exhaustive_limit: usize,
    /// Consistent orders sampled by the non-exhaustive checker.
    pub oracle_samples: usize,
    /// Write a checkpoint (folding the journal prefix into a durable image
    /// and letting the backend truncate) every this many commits. `None`
    /// disables checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Group commit: drivers reaching their commit step stage it instead of
    /// flushing immediately; at the end of every scheduler round the staged
    /// batch is committed and made durable with **one** flush
    /// ([`DurableSystem::commit_group`]), and only then are the drivers
    /// acknowledged. Storage faults that tear the batch flush exercise the
    /// torn-batch recovery rules: strict recovery must refuse the tail,
    /// discard recovery must keep exactly a prefix of the batch.
    pub group_commit: bool,
    /// Run the sixth oracle leg at the end of the run: crash the device at
    /// *every* op index recovery itself consumes
    /// ([`LogBackend::check_recovery_convergence`]) and demand every
    /// eventual recovery reproduce the baseline outcome. No-op on backends
    /// without a device.
    pub fault_during_recovery: bool,
    /// Multiprogramming level: drivers wanting to *begin* a transaction
    /// wait while this many are already in flight. 0 = unlimited.
    pub mpl: usize,
    /// Per-transaction deadline in scheduler rounds: a transaction older
    /// than this is aborted with `AbortReason::Deadline` and its driver
    /// restarted under jittered backoff. 0 = no deadlines.
    pub deadline: u64,
    /// Group-commit admission bound ([`DurableSystem::set_admission_bound`]):
    /// batch members beyond this many staged records are shed with
    /// [`TxnError::Shed`] and their drivers restarted under backpressure.
    /// 0 = unbounded.
    pub max_staged: usize,
    /// Gray-failure health detector threshold
    /// ([`DurableSystem::set_stall_detector`], two strikes): a commit whose
    /// device-stall delta reaches this many ticks counts toward degrading
    /// the system. 0 = detector off.
    pub stall_threshold: u64,
    /// Seventh-leg liveness budget: a live transaction older than this many
    /// rounds fails the bounded-outcome oracle. 0 disables the in-run age
    /// check (the end-of-run accounting still runs).
    pub outcome_budget: u64,
    /// Negative control for the seventh leg: swallow the admission gate's
    /// shed acknowledgement (the driver is silently marked done instead of
    /// restarted). The bounded-outcome oracle must catch the resulting
    /// unaccounted driver — a run with this flag that *passes* means the
    /// leg has gone blind.
    pub mutate_swallow_shed: bool,
}

impl Default for SimCfg {
    fn default() -> Self {
        SimCfg {
            seed: 0,
            max_retries: 64,
            max_rounds: 100_000,
            exhaustive_limit: 6,
            oracle_samples: 64,
            checkpoint_every: None,
            group_commit: false,
            fault_during_recovery: false,
            mpl: 0,
            deadline: 0,
            max_staged: 0,
            stall_threshold: 0,
            outcome_budget: 10_000,
            mutate_swallow_shed: false,
        }
    }
}

/// Outcome of a fault-free-of-violations simulation. Contains no wall-clock
/// or other nondeterministic data: the same `(seed, plan, scripts)` must
/// produce an identical report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Scripts that ultimately committed.
    pub committed: u64,
    /// Scripts that ended with a voluntary abort.
    pub voluntary_aborts: u64,
    /// Scripts that exhausted their retries (or lost their step to
    /// corruption).
    pub gave_up: u64,
    /// Script restarts.
    pub retries: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Global events counted (the fault clock).
    pub events: u64,
    /// Faults actually injected (plan entries beyond the run never fire).
    pub faults_injected: u64,
    /// Oracle passes executed.
    pub oracle_checks: u64,
    /// Deadlock victims aborted by the simulator.
    pub deadlock_aborts: u64,
    /// Fingerprint folded over every crash epoch's recorded history — the
    /// determinism witness.
    pub history_fingerprint: u64,
    /// Per-committed-script latency in scheduler rounds (last begin to
    /// commit acknowledgement), sorted ascending. Logical time, so the
    /// vector is deterministic in `(seed, plan, scripts)` — the overload
    /// bench's p99 source.
    pub commit_latency_rounds: Vec<u64>,
    /// Final system counters (crash/fault counters included).
    pub stats: SystemStats,
}

/// A single oracle violation.
#[derive(Clone, Debug)]
pub enum OracleFailure {
    /// The recorded history is not dynamic atomic.
    NotDynamicAtomic(DynAtomViolation),
    /// Crash recovery failed (divergence, refusal, or an unexpected torn
    /// record).
    Redo(RedoError),
    /// A torn journal record was injected but strict recovery replayed it
    /// as if complete — the defect the torn-write fault exists to catch.
    TornNotDetected {
        /// The journal record that was torn.
        record: usize,
    },
    /// An engine's committed state disagrees with the shadow fold of the
    /// journal through the serial specification.
    StateDiverged {
        /// The divergent object.
        obj: ObjectId,
        /// The engine's committed state (`Debug` form).
        engine: String,
        /// The journal shadow fold's state (`Debug` form).
        shadow: String,
    },
    /// The journal itself is not serially legal: some journaled operation is
    /// refused when refolded through the specification (a committed effect
    /// depended on an uncommitted one — the classic weak-relation defect).
    ShadowRefused {
        /// Journal record index.
        record: usize,
        /// Operation index within the record.
        op: usize,
    },
    /// Committed state after recovery differs from committed state captured
    /// just before the crash.
    CrashStateMismatch {
        /// The divergent object.
        obj: ObjectId,
        /// State before the crash (`Debug` form).
        before: String,
        /// State after recovery (`Debug` form).
        after: String,
    },
    /// The paper's two recovery views disagree: redo in execution order
    /// (UIP, Theorem 9) and commit-ordered replay (DU, Theorem 10)
    /// reconstruct different committed states from the same journal.
    RecoveryViewDiverged {
        /// The divergent object.
        obj: ObjectId,
        /// The UIP (execution-order) view (`Debug` form, or `"refused"`).
        uip: String,
        /// The DU (commit-order) view (`Debug` form).
        du: String,
    },
    /// A storage fault (bit flip) survived recovery *undetected* and changed
    /// committed state — the silent-corruption verdict the CRC layer exists
    /// to make impossible.
    SilentCorruption {
        /// The divergent object.
        obj: ObjectId,
        /// State before the fault (`Debug` form).
        before: String,
        /// State after the undetected recovery (`Debug` form).
        after: String,
    },
    /// A caller-supplied invariant over committed states was violated.
    InvariantViolated {
        /// The invariant's own description of the violation.
        detail: String,
    },
    /// The sixth leg: a nested crash injected *during recovery* led — after
    /// power-cycling and recovering again — to an outcome different from
    /// the baseline recovery. Recovery is not convergent, so a crash at the
    /// wrong moment of a restart could silently change committed state.
    RecoveryDiverged {
        /// The probe's description of the divergent trial.
        detail: String,
    },
    /// The seventh leg: a driver's outcome was unbounded or unaccounted —
    /// its transaction outlived the liveness budget, or it ended the run
    /// neither committed, nor voluntarily aborted, nor with a *typed*
    /// give-up (retry budget exhausted, refused invocation). Every admitted
    /// transaction must commit or abort for a stated reason within a
    /// bounded number of rounds; anything else is a liveness hole.
    UnboundedOutcome {
        /// Which driver and how its accounting failed.
        detail: String,
    },
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleFailure::NotDynamicAtomic(v) => {
                write!(f, "history not dynamic atomic (refuting order {:?})", v.order)
            }
            OracleFailure::Redo(e) => write!(f, "redo recovery failed: {e:?}"),
            OracleFailure::TornNotDetected { record } => {
                write!(f, "torn journal record {record} replayed as if complete")
            }
            OracleFailure::StateDiverged { obj, engine, shadow } => write!(
                f,
                "committed state diverged at {obj}: engine {engine}, journal fold {shadow}"
            ),
            OracleFailure::ShadowRefused { record, op } => {
                write!(f, "journal record {record} op {op} illegal under serial refold")
            }
            OracleFailure::CrashStateMismatch { obj, before, after } => write!(
                f,
                "recovery changed committed state at {obj}: {before} before, {after} after"
            ),
            OracleFailure::RecoveryViewDiverged { obj, uip, du } => write!(
                f,
                "recovery views diverged at {obj}: exec-order (UIP) {uip}, commit-order (DU) {du}"
            ),
            OracleFailure::SilentCorruption { obj, before, after } => write!(
                f,
                "storage fault survived recovery undetected at {obj}: {before} before, {after} after"
            ),
            OracleFailure::InvariantViolated { detail } => {
                write!(f, "state invariant violated: {detail}")
            }
            OracleFailure::RecoveryDiverged { detail } => {
                write!(f, "recovery convergence violated: {detail}")
            }
            OracleFailure::UnboundedOutcome { detail } => {
                write!(f, "bounded-outcome liveness violated: {detail}")
            }
        }
    }
}

/// An oracle failure together with the event index it surfaced at — the
/// shrinker's search coordinates.
#[derive(Clone, Debug)]
pub struct SimFailure {
    /// Global event counter value when the failing oracle pass ran.
    pub at_event: u64,
    /// What the oracle found.
    pub failure: OracleFailure,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oracle failure at event {}: {}", self.at_event, self.failure)
    }
}

/// A caller-supplied invariant over the map of committed states.
pub type StateInvariant<A> = dyn Fn(&BTreeMap<ObjectId, <A as Adt>::State>) -> Result<(), String>;

struct Driver<A: Adt> {
    script: Box<dyn Script<A>>,
    txn: Option<TxnId>,
    last: Option<A::Response>,
    pending: Option<Step<A>>,
    blocked_epoch: Option<u64>,
    sleep_until_commit: Option<u64>,
    /// Turns left to sleep before attempting a commit (delayed-commit fault).
    delay_turns: u32,
    /// Commit staged for the round-end group flush (group-commit mode); the
    /// driver is acknowledged only once its record's batch is durable.
    awaiting_flush: bool,
    /// The round the current transaction began — the deadline and liveness
    /// clocks both measure from here.
    began_round: u64,
    retries: usize,
    done: bool,
    committed: bool,
    voluntary_abort: bool,
    /// Typed give-up marker: an invocation or commit was *refused* (not
    /// aborted) and the script stopped. The bounded-outcome leg accepts
    /// this — and an exhausted retry budget — as the only legitimate ways
    /// to give up.
    refused: bool,
}

impl<A: Adt> Driver<A> {
    fn new(mut script: Box<dyn Script<A>>) -> Self {
        script.reset();
        Driver {
            script,
            txn: None,
            last: None,
            pending: None,
            blocked_epoch: None,
            sleep_until_commit: None,
            delay_turns: 0,
            awaiting_flush: false,
            began_round: 0,
            retries: 0,
            done: false,
            committed: false,
            voluntary_abort: false,
            refused: false,
        }
    }

    /// Reset after the driver's transaction was aborted (by the system, a
    /// fault, or a crash). `commits_now` gates the post-abort backoff.
    fn restart(&mut self, max_retries: usize, backoff_until: Option<u64>, retries: &mut u64) {
        self.txn = None;
        self.last = None;
        self.pending = None;
        self.blocked_epoch = None;
        self.sleep_until_commit = backoff_until;
        self.delay_turns = 0;
        self.awaiting_flush = false;
        self.retries += 1;
        *retries += 1;
        self.script.reset();
        if self.retries > max_retries {
            self.done = true;
        }
    }
}

fn epoch(stats: &SystemStats) -> u64 {
    stats.committed + stats.aborted
}

/// Run `scripts` through `sys` under `plan`, checking the oracle after every
/// injected fault and at the end. Returns the deterministic report, or the
/// first oracle failure.
pub fn run_sim<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    scripts: Vec<Box<dyn Script<A>>>,
    plan: &FaultPlan,
    cfg: &SimCfg,
    spec: &SystemSpec<A>,
    invariant: Option<&StateInvariant<A>>,
) -> Result<SimReport, SimFailure>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut drivers: Vec<Driver<A>> = scripts.into_iter().map(Driver::new).collect();
    let mut report = SimReport::default();
    // Overload-protection knobs live on the durable system; the sim config
    // is their single source of truth so reproducer command lines pin them.
    sys.set_admission_bound(cfg.max_staged);
    if cfg.stall_threshold > 0 {
        sys.set_stall_detector(cfg.stall_threshold, 2);
    }
    let mut fault_idx = 0usize;
    // Fingerprint fold across crash epochs: each crash seals the epoch's
    // history into the fold before the trace is lost.
    let mut fp_fold = 0u64;
    // A pending delayed-commit fault, consumed by the next committer.
    let mut delay_next_commit: Option<u32> = None;

    let mut rounds = 0u64;
    'outer: loop {
        rounds += 1;
        if rounds > cfg.max_rounds {
            break;
        }
        let mut order: Vec<usize> = (0..drivers.len()).filter(|&i| !drivers[i].done).collect();
        if order.is_empty() {
            break;
        }
        order.shuffle(&mut rng);
        let mut progressed = false;
        for i in order {
            if drivers[i].done {
                continue;
            }
            // The fault clock ticks once per scheduled driver visit.
            report.events += 1;
            while let Some(f) = plan.faults().get(fault_idx) {
                if f.at_event > report.events {
                    break;
                }
                fault_idx += 1;
                report.faults_injected += 1;
                inject(
                    f.kind,
                    sys,
                    &mut drivers,
                    cfg,
                    spec,
                    invariant,
                    &mut report,
                    &mut fp_fold,
                    &mut delay_next_commit,
                )?;
            }
            if drivers[i].done {
                continue; // a fault may have exhausted this driver's retries
            }
            // Seventh-leg in-run check: no live transaction may outlive the
            // liveness budget — an admitted transaction that neither commits
            // nor aborts within it is a bounded-outcome violation.
            if cfg.outcome_budget > 0 && drivers[i].txn.is_some() {
                let age = rounds.saturating_sub(drivers[i].began_round);
                if age > cfg.outcome_budget {
                    return Err(SimFailure {
                        at_event: report.events,
                        failure: OracleFailure::UnboundedOutcome {
                            detail: format!(
                                "driver {i} transaction alive for {age} rounds \
                                 (budget {})",
                                cfg.outcome_budget
                            ),
                        },
                    });
                }
            }
            // Transaction deadline: abort over-age transactions with a typed
            // reason and restart the driver under jittered backoff.
            if cfg.deadline > 0 {
                if let Some(t) = drivers[i].txn {
                    if !drivers[i].awaiting_flush
                        && rounds.saturating_sub(drivers[i].began_round) > cfg.deadline
                    {
                        sys.system_mut()
                            .abort_with(t, AbortReason::Deadline)
                            .expect("deadline victim is active");
                        let jitter = crate::scheduler::seeded_jitter(
                            cfg.seed,
                            u64::from(t.0),
                            drivers[i].retries,
                        );
                        sys.system_mut().obs_mut().on_retry_jitter(jitter);
                        let commits = sys.stats().committed;
                        drivers[i].restart(cfg.max_retries, Some(commits), &mut report.retries);
                        drivers[i].delay_turns = jitter as u32;
                        progressed = true;
                        continue;
                    }
                }
            }
            if drivers[i].delay_turns > 0 {
                drivers[i].delay_turns -= 1;
                progressed = true; // the delay itself is ticking down
                continue;
            }
            if let Some(c) = drivers[i].sleep_until_commit {
                if sys.stats().committed == c {
                    continue;
                }
                drivers[i].sleep_until_commit = None;
            }
            if let Some(e) = drivers[i].blocked_epoch {
                if epoch(sys.stats()) == e {
                    continue;
                }
            }
            // Admission by multiprogramming level: a driver wanting to begin
            // waits (without progress — the deadlock breaker must still see
            // a stuck round) while `mpl` transactions are in flight.
            if cfg.mpl > 0 && drivers[i].txn.is_none() {
                let in_flight = drivers.iter().filter(|d| !d.done && d.txn.is_some()).count();
                if in_flight >= cfg.mpl {
                    continue;
                }
            }
            let pre_crashes = sys.stats().crashes;
            if step_driver(sys, &mut drivers[i], cfg, &mut report, &mut delay_next_commit, rounds) {
                progressed = true;
            }
            heal_device_failures(sys, &mut drivers, cfg, &mut report, pre_crashes);
        }
        if cfg.group_commit {
            let pre_crashes = sys.stats().crashes;
            flush_group(sys, &mut drivers, cfg, &mut report, rounds);
            heal_device_failures(sys, &mut drivers, cfg, &mut report, pre_crashes);
        }
        if !progressed {
            // Every live driver is blocked or sleeping: break a deadlock or
            // wake a sleeper, as the plain scheduler does.
            let blocked: Vec<TxnId> =
                drivers.iter().filter(|d| !d.done).filter_map(|d| d.txn).collect();
            let mut victim = None;
            for &t in &blocked {
                if let Some(cycle) = sys.system().find_deadlock(t) {
                    victim = cycle.into_iter().max();
                    break;
                }
            }
            let victim = match victim {
                Some(v) => {
                    report.deadlock_aborts += 1;
                    v
                }
                None => match blocked.into_iter().max() {
                    Some(t) => t,
                    None => match drivers.iter_mut().find(|d| !d.done) {
                        Some(d) => {
                            d.blocked_epoch = None;
                            d.sleep_until_commit = None;
                            continue 'outer;
                        }
                        None => break,
                    },
                },
            };
            sys.system_mut().abort_with(victim, AbortReason::Deadlock).expect("victim is active");
            let commits = sys.stats().committed;
            if let Some(d) = drivers.iter_mut().find(|d| d.txn == Some(victim)) {
                d.restart(cfg.max_retries, Some(commits), &mut report.retries);
            }
        }
    }

    // Final oracle pass over the last epoch.
    oracle(sys, spec, cfg, invariant, None, report.events, &mut report)?;

    // Sixth leg: recovery convergence. Heal any armed-but-unexercised device
    // fault first (the probe demands a healthy device at the start) and
    // crash the device at every op index recovery itself consumes; every
    // eventual recovery must reproduce the baseline outcome.
    if cfg.fault_during_recovery {
        sys.heal_device();
        match sys.backend_mut().check_recovery_convergence(TailPolicy::DiscardTail) {
            Ok(probe) => {
                report.oracle_checks += 1;
                if probe.device_ops > 0 {
                    sys.system_mut().obs_mut().on_convergence_check(probe.trials, probe.device_ops);
                }
            }
            Err(e) => {
                return Err(SimFailure {
                    at_event: report.events,
                    failure: OracleFailure::RecoveryDiverged { detail: e.to_string() },
                });
            }
        }
    }

    // Seventh leg: bounded outcomes. Every driver must end accounted —
    // committed, voluntarily aborted, or given up for a *typed* reason
    // (retry budget exhausted, refused invocation). A driver that is
    // neither is a liveness hole: its transaction was admitted and then
    // silently went nowhere (the swallow-shed mutation manufactures
    // exactly this). An acknowledged commit is terminal by construction
    // (committed drivers are done and never restarted); durability of the
    // ack is covered by the shadow-fold and crash-state legs above.
    report.oracle_checks += 1;
    for (i, d) in drivers.iter().enumerate() {
        if d.committed || d.voluntary_abort {
            continue;
        }
        let budget_exhausted = d.retries > cfg.max_retries;
        if !d.done || !(budget_exhausted || d.refused) {
            return Err(SimFailure {
                at_event: report.events,
                failure: OracleFailure::UnboundedOutcome {
                    detail: format!(
                        "driver {i} ended unaccounted: done={}, retries={}/{}, refused={}",
                        d.done, d.retries, cfg.max_retries, d.refused
                    ),
                },
            });
        }
    }

    report.rounds = rounds;
    report.commit_latency_rounds.sort_unstable();
    for d in &drivers {
        if d.committed {
            report.committed += 1;
        } else if d.voluntary_abort {
            report.voluntary_aborts += 1;
        } else {
            report.gave_up += 1;
        }
    }
    report.history_fingerprint = fold_fp(fp_fold, sys.system().trace());
    report.stats = sys.stats().clone();
    Ok(report)
}

fn fold_fp<A: Adt>(fold: u64, trace: &History<A>) -> u64 {
    fold.rotate_left(7) ^ trace.fingerprint()
}

/// Inject one fault and run the oracle afterwards.
#[allow(clippy::too_many_arguments)] // internal plumbing of one call site
fn inject<A, E, C, B>(
    kind: FaultKind,
    sys: &mut DurableSystem<A, E, C, B>,
    drivers: &mut [Driver<A>],
    cfg: &SimCfg,
    spec: &SystemSpec<A>,
    invariant: Option<&StateInvariant<A>>,
    report: &mut SimReport,
    fp_fold: &mut u64,
    delay_next_commit: &mut Option<u32>,
) -> Result<(), SimFailure>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let at = report.events;
    let fail = |failure| SimFailure { at_event: at, failure };
    match kind {
        FaultKind::Crash => {
            sys.system_mut().obs_mut().on_fault(None, || kind.to_string());
            let pre_states = committed_states(sys);
            *fp_fold = fold_fp(*fp_fold, sys.system().trace());
            // The oracle examines the pre-crash history *before* it is lost.
            let pre_trace = sys.system().trace().clone();
            check_history(spec, cfg, &pre_trace, at, report)?;
            // Restarting after a power loss includes the operator freeing
            // space: a still-full device would fail recovery's epoch seal
            // on a correct pairing.
            sys.backend_mut().set_device_full(false);
            sys.crash_and_recover().map_err(|e| fail(OracleFailure::Redo(e)))?;
            restart_all(drivers, cfg, report);
            oracle(sys, spec, cfg, invariant, Some(&pre_states), at, report)
        }
        FaultKind::TornCrash { drop_ops } => {
            if !sys.tear_last_record(drop_ops) {
                // Nothing journaled yet: degrade to a plain crash.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut().obs_mut().on_fault(None, || kind.to_string());
            torn_storage_flow(sys, drivers, cfg, spec, invariant, report, fp_fold, at)
        }
        FaultKind::SectorTorn { sectors } => {
            if !sys.tear_last_flush(sectors) {
                // No tearable flush (nothing journaled, or the tear would
                // remove the whole flush — indistinguishable from a plain
                // crash before the write): degrade to a plain crash.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::SectorTear), || kind.to_string());
            torn_storage_flow(sys, drivers, cfg, spec, invariant, report, fp_fold, at)
        }
        FaultKind::ReorderFlush => {
            if !sys.reorder_last_flush() {
                // The last flush was a single sector (or the backend has no
                // sector image): reordering is inexpressible, degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::ReorderedFlush), || kind.to_string());
            torn_storage_flow(sys, drivers, cfg, spec, invariant, report, fp_fold, at)
        }
        FaultKind::BitFlip { bit } => {
            if !sys.flip_bit(bit) {
                // No durable byte image (mem backend): degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut().obs_mut().on_fault(None, || kind.to_string());
            let pre_states = committed_states(sys);
            *fp_fold = fold_fp(*fp_fold, sys.system().trace());
            let pre_trace = sys.system().trace().clone();
            check_history(spec, cfg, &pre_trace, at, report)?;
            // The restart model frees a full device (see FaultKind::Crash).
            sys.backend_mut().set_device_full(false);
            let detected = match sys.crash_and_recover() {
                // Recovery claims the log is intact despite the flip: the
                // oracle below decides with the pre-crash states whether
                // that claim was honest (any divergence is the
                // silent-corruption verdict).
                Ok(()) => false,
                Err(_) => {
                    // Detected. Repair the medium and retry WITHOUT a fresh
                    // crash (a crash would wipe the backend's volatile
                    // detection counters before a successful recovery
                    // persists them); nothing was lost, so strict recovery
                    // must now succeed.
                    sys.repair_flips();
                    sys.recover_with(TornPolicy::Strict)
                        .map_err(|e| fail(OracleFailure::Redo(e)))?;
                    true
                }
            };
            restart_all(drivers, cfg, report);
            oracle(sys, spec, cfg, invariant, Some(&pre_states), at, report).map_err(|e| {
                match e.failure {
                    // An undetected flip that changed state is the silent-
                    // corruption verdict; after a *detected* flip the
                    // repair-and-retry path keeps the plain mismatch name.
                    OracleFailure::CrashStateMismatch { obj, before, after } if !detected => {
                        SimFailure {
                            at_event: e.at_event,
                            failure: OracleFailure::SilentCorruption { obj, before, after },
                        }
                    }
                    _ => e,
                }
            })
        }
        FaultKind::ForceAbort => {
            let victim = sys.system().active().max();
            // The counter is bumped only when the fault found a victim; the
            // fault *event* is recorded either way so traces show every
            // injection.
            sys.system_mut()
                .obs_mut()
                .on_fault(victim.map(|_| FaultCounter::ForcedAbort), || kind.to_string());
            if let Some(t) = victim {
                sys.system_mut()
                    .abort_with(t, AbortReason::ConflictAbort)
                    .expect("victim is active");
                let commits = sys.stats().committed;
                if let Some(d) = drivers.iter_mut().find(|d| d.txn == Some(t)) {
                    d.restart(cfg.max_retries, Some(commits), &mut report.retries);
                }
            }
            oracle(sys, spec, cfg, invariant, None, at, report)
        }
        FaultKind::WoundStorm => {
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::WoundStorm), || kind.to_string());
            let victims: Vec<TxnId> = sys.system().active().collect();
            for t in &victims {
                sys.system_mut()
                    .abort_with(*t, AbortReason::ConflictAbort)
                    .expect("victim is active");
            }
            let commits = sys.stats().committed;
            for d in drivers.iter_mut() {
                if d.txn.is_some_and(|t| victims.contains(&t)) {
                    d.restart(cfg.max_retries, Some(commits), &mut report.retries);
                }
            }
            oracle(sys, spec, cfg, invariant, None, at, report)
        }
        FaultKind::DelayCommit { rounds } => {
            *delay_next_commit = Some(rounds);
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::DelayedCommit), || kind.to_string());
            Ok(())
        }
        FaultKind::TransientIo { errors } => {
            if !sys.backend_mut().arm_transient_io(errors) {
                // No device to misbehave (mem backend): degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            // Arming is not yet an observable failure: the next commits'
            // bounded retries are expected to absorb the budget (visible
            // only in the retry telemetry), so no oracle pass here.
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::TransientIo), || kind.to_string());
            Ok(())
        }
        FaultKind::DiskFull => {
            if !sys.backend_mut().set_device_full(true) {
                // No device to fill (mem backend): degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            // The next durable append drives the system into read-only
            // degraded mode; the scheduler's heal flow then restarts the
            // killed drivers and exits it through a checkpoint.
            sys.system_mut().obs_mut().on_fault(Some(FaultCounter::DiskFull), || kind.to_string());
            Ok(())
        }
        FaultKind::SlowDisk { ops } => {
            // Fixed per-op surcharge keeps the run a pure function of the
            // plan: the device serves, just slowly — no error surfaces, so
            // no oracle pass here. The stall-latency telemetry (and, when
            // armed, the hysteresis detector) is how the fault becomes
            // visible.
            if !sys.backend_mut().arm_slow_ops(ops, 4) {
                // No device to slow down (mem backend): degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::SlowDevice), || kind.to_string());
            Ok(())
        }
        FaultKind::FsyncStall { stalls } => {
            // The classic gray symptom: flushes hang (32 extra ticks each)
            // but complete. Like SlowDisk, arming is not an observable
            // failure in itself.
            if !sys.backend_mut().arm_fsync_stall(stalls, 32) {
                // No device to stall (mem backend): degrade.
                return inject(
                    FaultKind::Crash,
                    sys,
                    drivers,
                    cfg,
                    spec,
                    invariant,
                    report,
                    fp_fold,
                    delay_next_commit,
                );
            }
            sys.system_mut()
                .obs_mut()
                .on_fault(Some(FaultCounter::FsyncStall), || kind.to_string());
            Ok(())
        }
        FaultKind::CrashShards { .. } | FaultKind::TwoPcCrash { .. } => {
            // Sharded arms in a single-system run: there is exactly one
            // "shard", so any subset crash (and any 2PC step crash — no
            // cross-shard commit exists) degrades to a plain crash. The
            // sharded simulator in `crate::shard` handles them natively.
            inject(
                FaultKind::Crash,
                sys,
                drivers,
                cfg,
                spec,
                invariant,
                report,
                fp_fold,
                delay_next_commit,
            )
        }
    }
}

/// The shared tail of every torn-storage fault (torn record, torn flush,
/// reordered flush), run after the damage was injected and the fault event
/// emitted: seal the epoch's history into the fingerprint, check it, demand
/// that strict recovery *refuses* the damaged tail (silence is itself an
/// oracle failure), recover under `DiscardTail`, and re-run the oracle. The
/// torn transaction's durability was legitimately lost, so there is no
/// pre-crash state comparison — the journal shadow fold remains the
/// equieffectivity authority.
#[allow(clippy::too_many_arguments)] // internal plumbing of three call sites
fn torn_storage_flow<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    drivers: &mut [Driver<A>],
    cfg: &SimCfg,
    spec: &SystemSpec<A>,
    invariant: Option<&StateInvariant<A>>,
    report: &mut SimReport,
    fp_fold: &mut u64,
    at: u64,
) -> Result<(), SimFailure>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let fail = |failure| SimFailure { at_event: at, failure };
    *fp_fold = fold_fp(*fp_fold, sys.system().trace());
    let pre_trace = sys.system().trace().clone();
    check_history(spec, cfg, &pre_trace, at, report)?;
    // The restart model frees a full device (see FaultKind::Crash).
    sys.backend_mut().set_device_full(false);
    match sys.crash_and_recover() {
        Ok(()) => {
            let record = sys.journal().len().saturating_sub(1);
            return Err(fail(OracleFailure::TornNotDetected { record }));
        }
        Err(RedoError::TornRecord { .. }) => {}
        Err(e) => return Err(fail(OracleFailure::Redo(e))),
    }
    sys.crash_and_recover_with(TornPolicy::DiscardTail)
        .map_err(|e| fail(OracleFailure::Redo(e)))?;
    restart_all(drivers, cfg, report);
    oracle(sys, spec, cfg, invariant, None, at, report)
}

/// The liveness half of the degradation model, run after every driver step
/// and group flush. Two device failures can strand the run mid-round:
///
/// - a commit-time power loss (`crashes` grew): the system already
///   power-cycled and recovered in place, but every *other* driver's
///   transaction evaporated with it — restart them before they mistake
///   their stale handles for refusals;
/// - the system entered read-only degraded mode: deterministic operator
///   intervention — restart the killed drivers, heal the device, and prove
///   it writable again with a checkpoint (the degraded-exit path).
fn heal_device_failures<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    drivers: &mut [Driver<A>],
    cfg: &SimCfg,
    report: &mut SimReport,
    pre_crashes: u64,
) where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    if sys.stats().crashes > pre_crashes {
        restart_all(drivers, cfg, report);
    }
    if sys.is_degraded() {
        restart_all(drivers, cfg, report);
        sys.heal_device();
        sys.checkpoint();
    }
}

/// Restart every driver whose transaction evaporated in a crash. Crash
/// restarts carry no commit backoff: the rebuilt system holds no locks.
fn restart_all<A: Adt>(drivers: &mut [Driver<A>], cfg: &SimCfg, report: &mut SimReport) {
    for d in drivers.iter_mut() {
        if !d.done && d.txn.is_some() {
            d.restart(cfg.max_retries, None, &mut report.retries);
        }
    }
}

fn committed_states<A, E, C, B>(sys: &mut DurableSystem<A, E, C, B>) -> BTreeMap<ObjectId, A::State>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    sys.system().object_ids().into_iter().map(|obj| (obj, sys.committed_state(obj))).collect()
}

/// Dynamic-atomicity leg of the oracle, over an explicit history (the live
/// trace, or a pre-crash clone).
fn check_history<A: Adt>(
    spec: &SystemSpec<A>,
    cfg: &SimCfg,
    h: &History<A>,
    at: u64,
    report: &mut SimReport,
) -> Result<(), SimFailure> {
    report.oracle_checks += 1;
    check_dynamic_atomic_auto(spec, h, cfg.exhaustive_limit, cfg.oracle_samples, cfg.seed ^ at)
        .map_err(|v| SimFailure { at_event: at, failure: OracleFailure::NotDynamicAtomic(v) })
}

/// The full oracle: dynamic atomicity of the current trace, journal shadow
/// fold vs engine committed states, optional pre-crash state comparison,
/// optional caller invariant.
fn oracle<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    spec: &SystemSpec<A>,
    cfg: &SimCfg,
    invariant: Option<&StateInvariant<A>>,
    pre_states: Option<&BTreeMap<ObjectId, A::State>>,
    at: u64,
    report: &mut SimReport,
) -> Result<(), SimFailure>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let fail = |failure| SimFailure { at_event: at, failure };
    let trace = sys.system().trace().clone();
    check_history(spec, cfg, &trace, at, report)?;

    // Shadow fold: refold the journal through the serial spec, starting
    // from the checkpoint base when one was taken (the image stands in for
    // the truncated records' effects). Every journaled response must be
    // legal, and the final states must match the engines' committed states.
    let base: BTreeMap<ObjectId, A::State> = match sys.journal().base_states() {
        Some(states) => states.iter().cloned().collect(),
        None => sys
            .system()
            .object_ids()
            .into_iter()
            .map(|obj| {
                let adt = sys.system().adt_of(obj).expect("object exists");
                (obj, adt.initial())
            })
            .collect(),
    };
    let base_records = sys.journal().base_records() as usize;
    let mut shadow = base.clone();
    for (ri, ops) in sys.journal().record_ops().enumerate() {
        for (oi, (_seq, obj, op)) in ops.iter().enumerate() {
            let adt = sys.system().adt_of(*obj).expect("object exists").clone();
            let state = shadow.get_mut(obj).expect("object exists");
            let next = adt
                .step(state, &op.inv)
                .into_iter()
                .find(|(resp, _)| *resp == op.resp)
                .map(|(_, post)| post);
            match next {
                Some(post) => *state = post,
                None => {
                    return Err(fail(OracleFailure::ShadowRefused {
                        record: base_records + ri,
                        op: oi,
                    }))
                }
            }
        }
    }
    for (obj, shadow_state) in &shadow {
        let engine_state = sys.committed_state(*obj);
        if engine_state != *shadow_state {
            return Err(fail(OracleFailure::StateDiverged {
                obj: *obj,
                engine: format!("{engine_state:?}"),
                shadow: format!("{shadow_state:?}"),
            }));
        }
    }

    // Fifth leg: the paper's two physical recovery views must agree. The
    // shadow fold above *is* the DU view (commit-ordered replay, Theorem
    // 10); redo the same journal in global execution order (the UIP view,
    // Theorem 9) and demand the identical committed state.
    if let Some(first) = sys.system().object_ids().first().copied() {
        let adt = sys.system().adt_of(first).expect("object exists").clone();
        match replay_uip(&adt, &base, sys.journal().records()) {
            Some(uip) => {
                for (obj, du_state) in &shadow {
                    if uip.get(obj) != Some(du_state) {
                        return Err(fail(OracleFailure::RecoveryViewDiverged {
                            obj: *obj,
                            uip: format!("{:?}", uip.get(obj)),
                            du: format!("{du_state:?}"),
                        }));
                    }
                }
            }
            None => {
                return Err(fail(OracleFailure::RecoveryViewDiverged {
                    obj: first,
                    uip: "refused".to_string(),
                    du: "legal fold".to_string(),
                }))
            }
        }
    }

    if let Some(pre) = pre_states {
        for (obj, before) in pre {
            let after = sys.committed_state(*obj);
            if after != *before {
                return Err(fail(OracleFailure::CrashStateMismatch {
                    obj: *obj,
                    before: format!("{before:?}"),
                    after: format!("{after:?}"),
                }));
            }
        }
    }

    if let Some(inv) = invariant {
        inv(&shadow).map_err(|detail| fail(OracleFailure::InvariantViolated { detail }))?;
    }
    Ok(())
}

/// Commit every staged driver's transaction as one durable batch (group-
/// commit mode, end of a scheduler round). Drivers whose transaction
/// evaporated mid-round (a fault restarted them) simply drop out of the
/// batch; the rest are acknowledged or restarted from the per-transaction
/// results of [`DurableSystem::commit_group`].
fn flush_group<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    drivers: &mut [Driver<A>],
    cfg: &SimCfg,
    report: &mut SimReport,
    round: u64,
) where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let batch: Vec<TxnId> =
        drivers.iter().filter(|d| !d.done && d.awaiting_flush).filter_map(|d| d.txn).collect();
    if batch.is_empty() {
        return;
    }
    let pre = sys.stats().committed;
    let results = sys.commit_group(&batch);
    for (t, res) in batch.iter().zip(results) {
        let d = drivers.iter_mut().find(|d| d.txn == Some(*t)).expect("staged driver");
        d.awaiting_flush = false;
        match res {
            Ok(()) => {
                d.done = true;
                d.committed = true;
                report.commit_latency_rounds.push(round.saturating_sub(d.began_round) + 1);
            }
            Err(TxnError::Aborted(_)) => {
                let commits = sys.stats().committed;
                d.restart(cfg.max_retries, Some(commits), &mut report.retries);
            }
            // The admission gate shed this member: it was cleanly aborted
            // before the journal saw it. Restart under backpressure — the
            // shed ack plus jittered backoff is the WAL-lag flow-control
            // loop. The negative control swallows the ack instead, leaving
            // the driver unaccounted for the bounded-outcome leg to catch.
            Err(TxnError::Shed) => {
                if cfg.mutate_swallow_shed {
                    d.done = true;
                } else {
                    let jitter =
                        crate::scheduler::seeded_jitter(cfg.seed, u64::from(t.0), d.retries);
                    sys.system_mut().obs_mut().on_retry_jitter(jitter);
                    let commits = sys.stats().committed;
                    d.restart(cfg.max_retries, Some(commits), &mut report.retries);
                    d.delay_turns = jitter as u32;
                }
            }
            // The batch's durability failed as a whole: the flush either
            // power-cycled (each transaction evaporated, NotActive) or
            // degraded the system (ReadOnly). Crash-style restart, no
            // backoff — the rebuilt system holds no locks.
            Err(TxnError::ReadOnly) | Err(TxnError::NotActive(_)) => {
                d.restart(cfg.max_retries, None, &mut report.retries);
            }
            Err(_) => {
                d.done = true;
                d.refused = true;
            }
        }
    }
    if let Some(every) = cfg.checkpoint_every {
        // A batch can cross the cadence boundary anywhere inside itself;
        // checkpoint whenever it did.
        if every > 0 && sys.stats().committed / every > pre / every {
            sys.checkpoint();
        }
    }
}

/// Advance one driver by one step. Returns whether it made progress.
fn step_driver<A, E, C, B>(
    sys: &mut DurableSystem<A, E, C, B>,
    d: &mut Driver<A>,
    cfg: &SimCfg,
    report: &mut SimReport,
    delay_next_commit: &mut Option<u32>,
    round: u64,
) -> bool
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    let txn = match d.txn {
        Some(t) => t,
        None => {
            let t = sys.begin();
            d.txn = Some(t);
            d.began_round = round;
            t
        }
    };
    let step = match d.pending.take() {
        Some(s) => s,
        None => d.script.next(d.last.as_ref()),
    };
    match step {
        Step::Invoke(obj, inv) => match sys.invoke(txn, obj, inv.clone()) {
            Ok(resp) => {
                d.last = Some(resp);
                d.blocked_epoch = None;
                true
            }
            Err(TxnError::Blocked { .. }) => {
                d.pending = Some(Step::Invoke(obj, inv));
                d.blocked_epoch = Some(epoch(sys.stats()));
                false
            }
            Err(TxnError::Aborted(_)) => {
                let commits = sys.stats().committed;
                d.restart(cfg.max_retries, Some(commits), &mut report.retries);
                true
            }
            // Unlike the plain scheduler, the simulator tolerates refused
            // invocations (faults can strand scripts in states their
            // generator never anticipated): the script simply gives up and
            // the oracle remains the arbiter of correctness.
            Err(_) => {
                if let Some(t) = d.txn.take() {
                    let _ = sys.abort(t);
                }
                d.done = true;
                d.refused = true;
                true
            }
        },
        Step::Commit => {
            if let Some(rounds) = delay_next_commit.take() {
                d.pending = Some(Step::Commit);
                d.delay_turns = rounds;
                return true;
            }
            if cfg.group_commit {
                // Stage the commit for the round-end group flush; the driver
                // is acknowledged (or restarted) only after the batch flush.
                d.awaiting_flush = true;
                return true;
            }
            match sys.commit(txn) {
                Ok(()) => {
                    if let Some(every) = cfg.checkpoint_every {
                        if every > 0 && sys.stats().committed.is_multiple_of(every) {
                            sys.checkpoint();
                        }
                    }
                    d.done = true;
                    d.committed = true;
                    report.commit_latency_rounds.push(round.saturating_sub(d.began_round) + 1);
                    true
                }
                Err(TxnError::Aborted(_)) => {
                    let commits = sys.stats().committed;
                    d.restart(cfg.max_retries, Some(commits), &mut report.retries);
                    true
                }
                // A device failure at commit: the transaction evaporated in
                // an in-place power-cycle (NotActive) or the system went
                // read-only (ReadOnly). Crash-style restart, no backoff.
                Err(TxnError::ReadOnly) | Err(TxnError::NotActive(_)) => {
                    d.restart(cfg.max_retries, None, &mut report.retries);
                    true
                }
                Err(_) => {
                    d.done = true;
                    d.refused = true;
                    true
                }
            }
        }
        Step::Abort => {
            let _ = sys.abort(txn);
            d.done = true;
            d.voluntary_abort = true;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DuEngine, UipEngine};
    use crate::fault::FaultSpec;
    use crate::script::OpsScript;
    use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
    use ccr_core::conflict::{FnConflict, SymmetricClosure};
    use ccr_store::{WalBackend, WalConfig};

    const X: ObjectId = ObjectId::SOLE;

    type UipDurable = DurableSystem<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>>;
    type DuDurable = DurableSystem<BankAccount, DuEngine<BankAccount>, FnConflict<BankAccount>>;
    type DiskUip = DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;
    type DiskDu = DurableSystem<
        BankAccount,
        DuEngine<BankAccount>,
        FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;

    fn transfer_scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
        (0..n)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    fn spec() -> SystemSpec<BankAccount> {
        SystemSpec::single(BankAccount::default())
    }

    fn spec_n(n: u32) -> SystemSpec<BankAccount> {
        SystemSpec::uniform(BankAccount::default(), n)
    }

    #[test]
    fn fault_free_sim_matches_plain_run() {
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report = run_sim(
            &mut sys,
            transfer_scripts(6),
            &FaultPlan::none(),
            &SimCfg::default(),
            &spec(),
            None,
        )
        .unwrap();
        assert_eq!(report.committed, 6);
        assert_eq!(report.faults_injected, 0);
        assert!(report.oracle_checks >= 1);
        assert_eq!(sys.committed_state(X), 6);
    }

    #[test]
    fn crash_faults_pass_the_oracle_on_a_correct_pairing() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 3, kind: FaultKind::Crash },
            FaultSpec { at_event: 9, kind: FaultKind::Crash },
        ]);
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report =
            run_sim(&mut sys, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
                .unwrap();
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.stats.crashes, 2);
        assert_eq!(report.committed, 6);
        assert_eq!(sys.committed_state(X), 6);
    }

    #[test]
    fn every_fault_kind_passes_on_correct_pairings() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 2, kind: FaultKind::ForceAbort },
            FaultSpec { at_event: 5, kind: FaultKind::DelayCommit { rounds: 3 } },
            FaultSpec { at_event: 9, kind: FaultKind::TornCrash { drop_ops: 1 } },
            FaultSpec { at_event: 14, kind: FaultKind::WoundStorm },
            FaultSpec { at_event: 20, kind: FaultKind::Crash },
        ]);
        let mut uip: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let r1 = run_sim(&mut uip, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
            .unwrap();
        assert_eq!(r1.faults_injected, 5);

        let mut du: DuDurable = DurableSystem::new(BankAccount::default(), 1, bank_nfc());
        let r2 = run_sim(&mut du, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
            .unwrap();
        assert_eq!(r2.faults_injected, 5);
    }

    #[test]
    fn same_seed_and_plan_give_identical_reports() {
        let plan = FaultPlan::from_seed(11, 40, 4);
        let run_once = || {
            let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
            run_sim(
                &mut sys,
                transfer_scripts(6),
                &plan,
                &SimCfg { seed: 5, ..Default::default() },
                &spec(),
                None,
            )
            .unwrap()
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "SimReport must be byte-identical across runs");
        assert_eq!(a.history_fingerprint, b.history_fingerprint);
    }

    #[test]
    fn weakened_relation_under_uip_is_caught() {
        // UIP paired with (symmetrised) FC instead of RBC: FC does not
        // relate withdraw-ok to a pending deposit, so a withdrawal can read
        // through an uncommitted deposit under update-in-place; a fault
        // aborting the depositor leaves a committed withdrawal whose
        // response is serially impossible. The oracle must notice.
        let conflict = SymmetricClosure(bank_nfc());
        type Weak = DurableSystem<
            BankAccount,
            UipEngine<BankAccount>,
            SymmetricClosure<FnConflict<BankAccount>>,
        >;
        let mut caught = None;
        'seeds: for seed in 0..64u64 {
            for f in 1..12u64 {
                let plan =
                    FaultPlan::new(vec![FaultSpec { at_event: f, kind: FaultKind::ForceAbort }]);
                let scripts: Vec<Box<dyn Script<BankAccount>>> = vec![
                    Box::new(OpsScript::on(X, vec![BankInv::Deposit(3)])),
                    Box::new(OpsScript::on(X, vec![BankInv::Withdraw(3)])),
                ];
                let mut sys: Weak = DurableSystem::new(BankAccount::default(), 1, conflict.clone());
                let cfg = SimCfg { seed, ..Default::default() };
                if let Err(e) = run_sim(&mut sys, scripts, &plan, &cfg, &spec(), None) {
                    caught = Some(e);
                    break 'seeds;
                }
            }
        }
        let failure = caught.expect("the weakened relation must be refuted within the sweep");
        assert!(
            matches!(
                failure.failure,
                OracleFailure::NotDynamicAtomic(_)
                    | OracleFailure::ShadowRefused { .. }
                    | OracleFailure::StateDiverged { .. }
                    | OracleFailure::RecoveryViewDiverged { .. }
                    | OracleFailure::Redo(_)
            ),
            "unexpected failure mode: {failure}"
        );
    }

    #[test]
    fn torn_writes_surface_as_redo_errors_never_silent_mismatch() {
        for at in 3..20u64 {
            let plan = FaultPlan::new(vec![FaultSpec {
                at_event: at,
                kind: FaultKind::TornCrash { drop_ops: 1 },
            }]);
            let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
            let result =
                run_sim(&mut sys, transfer_scripts(5), &plan, &SimCfg::default(), &spec(), None);
            // A correct pairing recovers from every torn write: strict
            // recovery reports TornRecord internally, DiscardTail then
            // succeeds and the oracle holds. Any failure here would be a
            // torn write slipping through as silent state divergence.
            let report = result.unwrap_or_else(|e| panic!("torn crash at {at}: {e}"));
            if report.stats.torn_crashes > 0 {
                // The discarded commit is visible as journal < committed.
                assert!(sys.journal().len() as u64 <= report.stats.committed);
            }
        }
    }

    /// Scripts on six *distinct* objects: no lock contention, so commits
    /// (and hence tearable commit flushes) land at predictable events.
    fn disjoint_scripts() -> Vec<Box<dyn Script<BankAccount>>> {
        (0..6)
            .map(|i| {
                Box::new(OpsScript::on(
                    ObjectId(i),
                    vec![BankInv::Deposit(2), BankInv::Withdraw(1)],
                )) as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    /// Run one storage fault through a disk-backed system under both
    /// pairings, returning the UIP run's stats. With six disjoint drivers,
    /// round 3 (events 13–18) is all commits, so a fault at event 16 always
    /// finds a fresh, tearable commit flush.
    fn one_storage_fault(kind: FaultKind) -> SystemStats {
        let plan = FaultPlan::new(vec![FaultSpec { at_event: 16, kind }]);
        let mut uip: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let r1 = run_sim(&mut uip, disjoint_scripts(), &plan, &SimCfg::default(), &spec_n(6), None)
            .unwrap();
        assert_eq!(r1.faults_injected, 1);
        assert_eq!(r1.committed, 6, "every script recommits after the fault");

        let mut du: DiskDu = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nfc(),
            WalBackend::new(WalConfig::default()),
        );
        let r2 = run_sim(&mut du, disjoint_scripts(), &plan, &SimCfg::default(), &spec_n(6), None)
            .unwrap();
        assert_eq!(r2.faults_injected, 1);
        r1.stats
    }

    #[test]
    fn sector_tears_pass_the_oracle_on_the_disk_backend() {
        let stats = one_storage_fault(FaultKind::SectorTorn { sectors: 1 });
        assert_eq!(stats.sector_tears, 1, "the tear must not degrade: {stats:?}");
        assert_eq!(stats.torn_crashes, 0, "sector tears report via their own counter");
    }

    #[test]
    fn reordered_flushes_pass_the_oracle_on_the_disk_backend() {
        let stats = one_storage_fault(FaultKind::ReorderFlush);
        assert_eq!(stats.reordered_flushes, 1, "the reorder must not degrade: {stats:?}");
    }

    #[test]
    fn bitflips_are_always_detected_on_the_disk_backend() {
        // Zero-silent-corruption criterion: whatever durable bit the flip
        // lands on, the CRC scan must detect it (the oracle inside run_sim
        // would report SilentCorruption otherwise).
        for bit in [3, 997, 4093, 65_537] {
            let stats = one_storage_fault(FaultKind::BitFlip { bit });
            assert!(stats.bitflips_detected >= 1, "flip at {bit} undetected: {stats:?}");
        }
    }

    #[test]
    fn storage_faults_on_the_mem_backend_degrade_to_crashes() {
        // The mem backend has no sector image: reorder and flip degrade to
        // plain crashes, and the run still passes the oracle.
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 16, kind: FaultKind::ReorderFlush },
            FaultSpec { at_event: 24, kind: FaultKind::BitFlip { bit: 997 } },
        ]);
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report =
            run_sim(&mut sys, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
                .unwrap();
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.stats.crashes, 2, "both faults degrade to crashes: {:?}", report.stats);
        assert_eq!(report.stats.bitflips_detected, 0);
        assert_eq!(report.stats.reordered_flushes, 0);
    }

    #[test]
    fn group_commit_batches_a_round_of_commits() {
        // Six disjoint drivers all reach their commit step in the same
        // scheduler round: group commit must stage them and flush the whole
        // batch with one group flush of size six.
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg { group_commit: true, ..Default::default() };
        let report =
            run_sim(&mut sys, disjoint_scripts(), &FaultPlan::none(), &cfg, &spec_n(6), None)
                .unwrap();
        assert_eq!(report.committed, 6);
        let batches: Vec<u64> = sys
            .system()
            .obs()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                ccr_obs::EventKind::GroupFlush { batch, .. } => Some(batch),
                _ => None,
            })
            .collect();
        assert_eq!(batches, vec![6], "one flush for the whole round's commits");
    }

    #[test]
    fn group_commit_agrees_with_per_commit_on_final_state() {
        // Same contended workload, same seed, both commit disciplines: the
        // batching must change only durability mechanics, never outcomes.
        let run = |group_commit: bool| {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg { seed: 9, group_commit, ..Default::default() };
            let report =
                run_sim(&mut sys, transfer_scripts(6), &FaultPlan::none(), &cfg, &spec(), None)
                    .unwrap();
            (report.committed, sys.committed_state(X))
        };
        assert_eq!(run(false), run(true), "group commit must not change outcomes");
        assert_eq!(run(true), (6, 6));
    }

    /// Three short and three long disjoint scripts: the short wave's commits
    /// form a three-record batch flushed at the end of round 3, and round 4
    /// still ticks events, so a storage fault there always finds that
    /// multi-record batch as the most recent flush.
    fn staggered_scripts() -> Vec<Box<dyn Script<BankAccount>>> {
        (0..6)
            .map(|i| {
                let ops = if i < 3 {
                    vec![BankInv::Deposit(2), BankInv::Withdraw(1)]
                } else {
                    vec![BankInv::Deposit(2), BankInv::Deposit(2), BankInv::Withdraw(1)]
                };
                Box::new(OpsScript::on(ObjectId(i), ops)) as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    #[test]
    fn torn_group_flush_passes_the_oracle_with_group_commit() {
        // Tear the tail off a durable three-record batch flush: strict
        // recovery must refuse the torn batch, DiscardTail must keep exactly
        // a prefix, and the oracle (shadow fold, UIP-vs-DU agreement) must
        // hold over the surviving journal — the torn-batch leg of the tear
        // oracle.
        let plan = FaultPlan::new(vec![FaultSpec {
            at_event: 20,
            kind: FaultKind::SectorTorn { sectors: 1 },
        }]);
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg { group_commit: true, ..Default::default() };
        let report = run_sim(&mut sys, staggered_scripts(), &plan, &cfg, &spec_n(6), None).unwrap();
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.stats.sector_tears, 1, "the tear must not degrade: {:?}", report.stats);
        assert_eq!(report.committed, 6, "every script recommits after the fault");
        // One batch member was legitimately discarded with the torn tail.
        assert!((sys.journal().len() as u64) < report.stats.committed);
    }

    #[test]
    fn group_commit_disk_runs_are_deterministic_under_faults() {
        let plan = FaultPlan::from_seed(23, 60, 5);
        let run_once = || {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg {
                seed: 7,
                checkpoint_every: Some(2),
                group_commit: true,
                ..Default::default()
            };
            run_sim(&mut sys, transfer_scripts(6), &plan, &cfg, &spec(), None).unwrap()
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "SimReport must be byte-identical across runs");
    }

    #[test]
    fn disk_backend_runs_are_deterministic_with_checkpoints() {
        let plan = FaultPlan::from_seed(23, 60, 5);
        let run_once = || {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg { seed: 7, checkpoint_every: Some(2), ..Default::default() };
            run_sim(&mut sys, transfer_scripts(6), &plan, &cfg, &spec(), None).unwrap()
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "SimReport must be byte-identical across runs");
        assert!(a.stats.checkpoints >= 1, "checkpoint cadence never fired: {:?}", a.stats);
    }

    #[test]
    fn checkpointed_and_uncheckpointed_runs_agree_on_final_state() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 6, kind: FaultKind::Crash },
            FaultSpec { at_event: 13, kind: FaultKind::Crash },
        ]);
        let run = |every: Option<u64>| {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg { seed: 3, checkpoint_every: every, ..Default::default() };
            let report =
                run_sim(&mut sys, transfer_scripts(6), &plan, &cfg, &spec(), None).unwrap();
            (report.committed, sys.committed_state(X))
        };
        assert_eq!(run(None), run(Some(1)), "checkpointing must not change outcomes");
    }

    #[test]
    fn transient_io_faults_are_absorbed_by_retries_in_the_sim() {
        let stats = one_storage_fault(FaultKind::TransientIo { errors: 3 });
        assert_eq!(stats.transient_io_faults, 1, "the fault must not degrade: {stats:?}");
        assert!(stats.io_retries >= 1, "the armed budget must be visibly retried: {stats:?}");
        assert_eq!(stats.degraded_entries, 0, "absorbed retries never degrade: {stats:?}");
    }

    #[test]
    fn disk_full_degrades_then_heals_and_every_script_commits() {
        let stats = one_storage_fault(FaultKind::DiskFull);
        assert_eq!(stats.disk_full_faults, 1, "the fault must not degrade to a crash: {stats:?}");
        assert_eq!(stats.degraded_entries, 1, "the full device must degrade the system: {stats:?}");
        assert_eq!(stats.degraded_exits, 1, "the heal flow must exit degraded mode: {stats:?}");
    }

    #[test]
    fn device_faults_on_the_mem_backend_degrade_to_crashes() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 16, kind: FaultKind::TransientIo { errors: 2 } },
            FaultSpec { at_event: 24, kind: FaultKind::DiskFull },
        ]);
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report =
            run_sim(&mut sys, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
                .unwrap();
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.stats.crashes, 2, "both faults degrade to crashes: {:?}", report.stats);
        assert_eq!(report.stats.transient_io_faults, 0);
        assert_eq!(report.stats.disk_full_faults, 0);
    }

    #[test]
    fn recovery_convergence_leg_passes_on_the_disk_backend() {
        let plan = FaultPlan::from_seed(31, 60, 4);
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg { seed: 5, fault_during_recovery: true, ..Default::default() };
        let report = run_sim(&mut sys, disjoint_scripts(), &plan, &cfg, &spec_n(6), None).unwrap();
        assert_eq!(
            report.stats.convergence_checks, 1,
            "the sixth leg must run and pass: {:?}",
            report.stats
        );
    }

    #[test]
    fn convergence_runs_are_deterministic() {
        let plan = FaultPlan::from_seed(31, 60, 4);
        let run_once = || {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg {
                seed: 7,
                checkpoint_every: Some(2),
                fault_during_recovery: true,
                ..Default::default()
            };
            run_sim(&mut sys, transfer_scripts(6), &plan, &cfg, &spec(), None).unwrap()
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "SimReport must be byte-identical across runs");
    }

    #[test]
    fn gray_faults_pass_the_oracle_on_the_disk_backend() {
        let stats = one_storage_fault(FaultKind::SlowDisk { ops: 4 });
        assert_eq!(stats.slow_device_faults, 1, "the fault must not degrade: {stats:?}");
        assert!(stats.stall_ticks > 0, "slow ops must surface as stall ticks: {stats:?}");
        let stats = one_storage_fault(FaultKind::FsyncStall { stalls: 2 });
        assert_eq!(stats.fsync_stall_faults, 1, "the fault must not degrade: {stats:?}");
        assert!(stats.stall_ticks > 0, "stalled flushes must surface as stall ticks: {stats:?}");
    }

    #[test]
    fn gray_faults_on_the_mem_backend_degrade_to_crashes() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 16, kind: FaultKind::SlowDisk { ops: 4 } },
            FaultSpec { at_event: 24, kind: FaultKind::FsyncStall { stalls: 2 } },
        ]);
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report =
            run_sim(&mut sys, transfer_scripts(6), &plan, &SimCfg::default(), &spec(), None)
                .unwrap();
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.stats.crashes, 2, "both faults degrade to crashes: {:?}", report.stats);
        assert_eq!(report.stats.slow_device_faults, 0);
        assert_eq!(report.stats.fsync_stall_faults, 0);
    }

    #[test]
    fn sustained_gray_faults_trip_the_detector_and_the_run_survives() {
        // Many stalled flushes with the detector armed: the system must
        // degrade on sustained latency, the heal flow must bring it back,
        // and every script must still commit under the oracle.
        let plan = FaultPlan::new(vec![FaultSpec {
            at_event: 4,
            kind: FaultKind::FsyncStall { stalls: 8 },
        }]);
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg { stall_threshold: 16, ..Default::default() };
        let report = run_sim(&mut sys, disjoint_scripts(), &plan, &cfg, &spec_n(6), None).unwrap();
        assert_eq!(report.committed, 6, "every script recommits after the gray episode");
        assert!(
            report.stats.mode_flips >= 2,
            "degrade and heal must both happen: {:?}",
            report.stats
        );
        assert!(report.stats.stall_ticks > 0);
    }

    #[test]
    fn admission_bound_sheds_under_group_commit_and_everyone_commits() {
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg { group_commit: true, max_staged: 2, ..Default::default() };
        let report =
            run_sim(&mut sys, disjoint_scripts(), &FaultPlan::none(), &cfg, &spec_n(6), None)
                .unwrap();
        assert_eq!(report.committed, 6, "shed transactions retry and commit");
        assert!(report.stats.sheds > 0, "six same-round commits over a bound of 2 must shed");
        assert!(report.retries >= report.stats.sheds, "every shed is a restart");
    }

    #[test]
    fn deadlines_and_mpl_type_aborts_and_everything_still_commits() {
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let cfg = SimCfg { seed: 3, deadline: 4, mpl: 2, ..Default::default() };
        let report =
            run_sim(&mut sys, transfer_scripts(8), &FaultPlan::none(), &cfg, &spec(), None)
                .unwrap();
        assert_eq!(report.committed, 8);
        assert_eq!(sys.committed_state(X), 8);
    }

    #[test]
    fn overload_protected_runs_are_deterministic() {
        let plan = FaultPlan::from_seed_gray(23, 60, 5);
        let run_once = || {
            let mut sys: DiskUip = DurableSystem::with_backend(
                BankAccount::default(),
                1,
                bank_nrbc(),
                WalBackend::new(WalConfig::default()),
            );
            let cfg = SimCfg {
                seed: 7,
                group_commit: true,
                max_staged: 2,
                deadline: 20,
                mpl: 3,
                stall_threshold: 16,
                ..Default::default()
            };
            run_sim(&mut sys, transfer_scripts(6), &plan, &cfg, &spec(), None).unwrap()
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "SimReport must be byte-identical across runs");
    }

    #[test]
    fn swallowed_shed_ack_is_caught_by_the_bounded_outcome_leg() {
        // The negative control: the admission gate sheds, but the mutated
        // flush path drops the acknowledgement on the floor instead of
        // restarting the driver. The seventh leg must flag the unaccounted
        // driver — if this test fails, the liveness oracle has gone blind.
        let mut sys: DiskUip = DurableSystem::with_backend(
            BankAccount::default(),
            6,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        );
        let cfg = SimCfg {
            group_commit: true,
            max_staged: 2,
            mutate_swallow_shed: true,
            ..Default::default()
        };
        let err = run_sim(&mut sys, disjoint_scripts(), &FaultPlan::none(), &cfg, &spec_n(6), None)
            .unwrap_err();
        assert!(
            matches!(err.failure, OracleFailure::UnboundedOutcome { .. }),
            "expected the bounded-outcome leg to fire, got: {err}"
        );
    }

    #[test]
    fn invariant_violations_are_reported() {
        let mut sys: UipDurable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let inv = |_: &BTreeMap<ObjectId, u64>| Err("always wrong".to_string());
        let err = run_sim(
            &mut sys,
            transfer_scripts(2),
            &FaultPlan::none(),
            &SimCfg::default(),
            &spec(),
            Some(&inv),
        )
        .unwrap_err();
        assert!(matches!(err.failure, OracleFailure::InvariantViolated { .. }));
    }
}
