//! The escrow method (O'Neil \[16\]) as a runtime extension.
//!
//! The paper's §8 singles out O'Neil's escrow transactional method as an
//! algorithm whose conflict test *depends on the current state of the
//! object* and therefore does **not** fit the `I(X, Spec, View, Conflict)`
//! framework (where the conflict test is state-independent). This module
//! implements the method for bounded numeric accounts so the experiments
//! can quantify what the framework's restriction costs.
//!
//! Mechanics: the object tracks, besides the committed balance `v`, the sums
//! of uncommitted credits `C` and debits `D` of active transactions. Every
//! possible serialization leaves the balance in `[v − D, v + C]`:
//!
//! * `debit(n)` succeeds iff `v − D ≥ n` (guaranteed in every outcome),
//!   definitely fails iff `v + C < n`, and **blocks** otherwise (the answer
//!   depends on which concurrent transactions commit);
//! * `credit(n)` symmetrically against the capacity bound.
//!
//! Aborts simply release the transaction's reservations; commits fold them
//! into `v`. Compare the conflict-relation runtimes: under UIP+NRBC a debit
//! must wait for any uncommitted *credit* (`(debit_ok, credit_ok) ∈ NRBC`),
//! while escrow lets it proceed whenever the guaranteed lower bound
//! suffices — strictly more concurrency, bought by inspecting state.

use std::collections::BTreeMap;

use ccr_core::ids::TxnId;

use crate::error::TxnError;

/// A single escrow-managed account.
pub struct EscrowObject {
    cap: u64,
    /// Committed balance.
    committed: u64,
    /// Per-transaction pending deltas (credit positive, debit negative).
    pending: BTreeMap<TxnId, Vec<i64>>,
}

/// Result of an escrow operation request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EscrowOutcome {
    /// Granted: the operation succeeds in every serialization.
    Ok,
    /// Refused: the operation fails in every serialization.
    No,
}

impl EscrowObject {
    /// Create with capacity `cap` and initial balance `initial`.
    pub fn new(cap: u64, initial: u64) -> Self {
        assert!(initial <= cap);
        EscrowObject { cap, committed: initial, pending: BTreeMap::new() }
    }

    fn uncommitted_credits(&self) -> u64 {
        self.pending.values().flatten().filter(|d| **d > 0).map(|d| *d as u64).sum()
    }

    fn uncommitted_debits(&self) -> u64 {
        self.pending.values().flatten().filter(|d| **d < 0).map(|d| (-*d) as u64).sum()
    }

    /// The guaranteed balance interval over all serializations.
    pub fn bounds(&self) -> (u64, u64) {
        (self.committed - self.uncommitted_debits(), self.committed + self.uncommitted_credits())
    }

    /// Request `debit(n)` for `txn`. `Ok(Ok)` reserves the amount; `Ok(No)`
    /// is a definite refusal; `Err(Blocked)` means the outcome depends on
    /// concurrent transactions.
    pub fn debit(&mut self, txn: TxnId, n: u64) -> Result<EscrowOutcome, TxnError> {
        let (low, high) = self.bounds();
        if low >= n {
            self.pending.entry(txn).or_default().push(-(n as i64));
            Ok(EscrowOutcome::Ok)
        } else if high < n {
            Ok(EscrowOutcome::No)
        } else {
            Err(TxnError::Blocked { on: self.holders(txn) })
        }
    }

    /// Request `credit(n)` for `txn` (symmetric against the capacity).
    pub fn credit(&mut self, txn: TxnId, n: u64) -> Result<EscrowOutcome, TxnError> {
        let (low, high) = self.bounds();
        if high + n <= self.cap {
            self.pending.entry(txn).or_default().push(n as i64);
            Ok(EscrowOutcome::Ok)
        } else if low + n > self.cap {
            Ok(EscrowOutcome::No)
        } else {
            Err(TxnError::Blocked { on: self.holders(txn) })
        }
    }

    fn holders(&self, requester: TxnId) -> Vec<TxnId> {
        self.pending.keys().copied().filter(|t| *t != requester).collect()
    }

    /// Commit `txn`: fold its reservations into the committed balance.
    pub fn commit(&mut self, txn: TxnId) {
        if let Some(deltas) = self.pending.remove(&txn) {
            for d in deltas {
                if d >= 0 {
                    self.committed += d as u64;
                } else {
                    self.committed -= (-d) as u64;
                }
            }
        }
        debug_assert!(self.committed <= self.cap);
    }

    /// Abort `txn`: release its reservations.
    pub fn abort(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// The committed balance.
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u32) -> TxnId = TxnId;

    #[test]
    fn guaranteed_debits_proceed_concurrently_with_credits() {
        // Under UIP+NRBC, a debit blocks on any uncommitted credit. Escrow
        // grants it as long as the committed balance suffices.
        let mut e = EscrowObject::new(100, 50);
        assert_eq!(e.credit(T(0), 30), Ok(EscrowOutcome::Ok)); // active
        assert_eq!(e.debit(T(1), 40), Ok(EscrowOutcome::Ok)); // concurrent!
        e.commit(T(0));
        e.commit(T(1));
        assert_eq!(e.committed(), 40);
    }

    #[test]
    fn uncertain_outcomes_block() {
        let mut e = EscrowObject::new(100, 50);
        assert_eq!(e.debit(T(0), 30), Ok(EscrowOutcome::Ok));
        // low = 20, high = 50: a debit of 30 is uncertain.
        assert!(matches!(e.debit(T(1), 30), Err(TxnError::Blocked { .. })));
        // After T0 aborts, the debit is guaranteed again.
        e.abort(T(0));
        assert_eq!(e.debit(T(1), 30), Ok(EscrowOutcome::Ok));
    }

    #[test]
    fn definite_refusals_do_not_block() {
        let mut e = EscrowObject::new(100, 10);
        assert_eq!(e.credit(T(0), 5), Ok(EscrowOutcome::Ok));
        // high = 15 < 40: refused in every serialization.
        assert_eq!(e.debit(T(1), 40), Ok(EscrowOutcome::No));
    }

    #[test]
    fn capacity_side_is_symmetric() {
        let mut e = EscrowObject::new(20, 10);
        assert_eq!(e.debit(T(0), 5), Ok(EscrowOutcome::Ok)); // low 5, high 10
        assert_eq!(e.credit(T(1), 10), Ok(EscrowOutcome::Ok)); // high 20 ≤ cap
        assert!(matches!(e.credit(T(2), 5), Err(TxnError::Blocked { .. })));
        assert_eq!(e.credit(T(3), 20), Ok(EscrowOutcome::No)); // low+20 > cap
        e.commit(T(0));
        e.commit(T(1));
        assert_eq!(e.committed(), 15);
    }

    #[test]
    fn bounds_track_reservations() {
        let mut e = EscrowObject::new(100, 50);
        e.debit(T(0), 10).unwrap();
        e.credit(T(1), 20).unwrap();
        assert_eq!(e.bounds(), (40, 70));
        e.commit(T(0));
        assert_eq!(e.bounds(), (40, 60));
        e.abort(T(1));
        assert_eq!(e.bounds(), (40, 40));
    }
}
