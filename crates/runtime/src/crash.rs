//! Crash recovery (simulated) — the paper's deferred future work (§1).
//!
//! The paper analyses *abort* recovery and explicitly leaves crash recovery
//! for later, noting that crash mechanisms are usually similar but must cope
//! with losing volatile state. This module provides that simulation: a redo
//! journal on stable storage behind the [`LogBackend`] trait, a
//! [`DurableSystem`] wrapper that journals each transaction's operations at
//! commit, and a `crash()` that discards all volatile state (active
//! transactions, lock table, engine caches) and rebuilds from whatever the
//! backend's recovery scan reconstructs.
//!
//! Two backends exist: [`MemBackend`] (the fast default — the struct itself
//! is stable memory, torn writes at operation granularity) and
//! `ccr-store`'s `WalBackend` (a segmented CRC'd write-ahead log on a
//! simulated sector device, with torn/reordered/bit-flipped flush injection).
//! Both feed the same replay pipeline here.
//!
//! Soundness note: the journal holds each committed transaction's operations
//! grouped by transaction, **in commit order**, each operation stamped with
//! its global execution sequence. Dynamic atomicity guarantees the committed
//! transactions are serializable in *every* order consistent with
//! `precedes`, and the commit order is such an order, so redo-replay is
//! legal whenever the underlying pairing is correct (Theorems 9/10) — the
//! recovery verifier checks each replayed response against the journal and
//! surfaces any divergence.
//!
//! Honesty of the restart model: the transaction-id floor, the execution
//! sequence and the durable storage counters are all read back *from the
//! recovered log* (last record's floor, else the checkpoint's, else cold
//! start) — never carried across the crash in process memory. The tracer is
//! the one deliberate exception: it models a monitoring store outside the
//! crashed process.

use std::collections::{BTreeMap, BTreeSet};

use ccr_core::adt::{Adt, Op};
use ccr_core::conflict::Conflict;
use ccr_core::ids::{ObjectId, TxnId};
use ccr_obs::{CorruptionKind, Phase, Tracer};
use ccr_store::{
    CheckpointImage, CommitRecord, Detection, DiskError, LogBackend, MemBackend, RetryPolicy,
    ScanReport, StoreFailureKind, StoreStats, TailPolicy,
};

use crate::engine::RecoveryEngine;
use crate::error::TxnError;
use crate::system::TxnSystem;

/// The volatile mirror of stable storage: what a successful recovery of the
/// backend would reconstruct right now. The simulator's shadow-fold oracle
/// reads this (it needs the *intended* contents to compare against), while
/// the backend holds the possibly-damaged physical truth.
#[derive(Clone)]
pub struct Journal<A: Adt> {
    /// Commit records folded into the checkpoint base (monotone; never reset
    /// by truncation).
    base_records: u64,
    /// Checkpointed committed state per object, if a checkpoint was taken.
    base: Option<Vec<(ObjectId, A::State)>>,
    /// Commit records after the checkpoint, in commit order.
    records: Vec<CommitRecord<A>>,
}

impl<A: Adt> Default for Journal<A> {
    fn default() -> Self {
        Journal { base_records: 0, base: None, records: Vec::new() }
    }
}

impl<A: Adt> Journal<A> {
    /// Number of committed transactions journaled over the log's whole life
    /// (checkpointed-away records included).
    pub fn len(&self) -> usize {
        self.base_records as usize + self.records.len()
    }

    /// Whether nothing has ever been journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records folded into the checkpoint base.
    pub fn base_records(&self) -> u64 {
        self.base_records
    }

    /// The checkpointed committed states, if a checkpoint was taken.
    pub fn base_states(&self) -> Option<&[(ObjectId, A::State)]> {
        self.base.as_deref()
    }

    /// The post-checkpoint commit records, in commit order.
    pub fn records(&self) -> &[CommitRecord<A>] {
        &self.records
    }

    /// The operations of each post-checkpoint record, in commit order — the
    /// input to the simulator's shadow-replay oracle.
    pub fn record_ops(&self) -> impl Iterator<Item = &[(u64, ObjectId, Op<A>)]> {
        self.records.iter().map(|r| r.ops.as_slice())
    }
}

/// Why recovery failed (a diagnostic, not an expected runtime condition —
/// under a Theorem-9/10-correct pairing and an intact journal redo always
/// succeeds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedoError {
    /// A journaled operation produced a different response on replay.
    ResponseDiverged {
        /// Journal record index.
        record: usize,
        /// Operation index within the record.
        op: usize,
    },
    /// A journaled operation was refused by the rebuilt system.
    ReplayRefused {
        /// Journal record index.
        record: usize,
    },
    /// The log tail is incomplete: the crash tore the final flush. Surfaced
    /// under [`TornPolicy::Strict`]. Units follow the backend's tear
    /// granularity: operations for the mem backend, sectors for the WAL.
    TornRecord {
        /// Journal record (mem) or frame (disk) index.
        record: usize,
        /// Units the header promised.
        expected: usize,
        /// Units actually present.
        found: usize,
    },
    /// The recovery scan found damage no tail policy may discard: a CRC
    /// mismatch, interior corruption behind intact frames, or a missing
    /// checkpoint after truncation. Recovery refuses loudly rather than
    /// replaying a log it cannot vouch for.
    CorruptRecord {
        /// First affected sector.
        sector: u64,
    },
    /// The device itself failed during recovery: the transient-retry budget
    /// was exhausted or the device is out of space. (A tripped crash-at-op
    /// trigger — [`DiskError::Crashed`] — never surfaces here: recovery
    /// acknowledges the power loss and recovers again internally.)
    Device {
        /// The underlying device error.
        error: DiskError,
    },
}

/// Whether the durable system accepts commits, or has fallen back to
/// read-only after the device misbehaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SystemMode {
    /// Commits journal through the backend as usual.
    #[default]
    Normal,
    /// The device exhausted its transient-I/O retries or reported itself
    /// full: commits are refused with [`TxnError::ReadOnly`] (the volatile
    /// mirror was rolled back to stable truth, so reads keep serving exactly
    /// the durable committed state). A successful [`DurableSystem::checkpoint`]
    /// on a [healed](DurableSystem::heal_device) device — or a successful
    /// recovery — returns to [`SystemMode::Normal`].
    Degraded,
}

/// How recovery treats a damaged log tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TornPolicy {
    /// Refuse to recover: surface [`RedoError::TornRecord`]. The default —
    /// a torn record must never be replayed as if complete.
    #[default]
    Strict,
    /// Discard the torn record and everything after it (the transaction's
    /// commit never fully reached stable storage, so dropping it is
    /// equivalent to the transaction having aborted), then recover. Interior
    /// corruption is still refused.
    DiscardTail,
}

impl TornPolicy {
    fn tail(self) -> TailPolicy {
        match self {
            TornPolicy::Strict => TailPolicy::Strict,
            TornPolicy::DiscardTail => TailPolicy::DiscardTail,
        }
    }
}

/// A [`TxnSystem`] with write-ahead redo journaling through a pluggable
/// [`LogBackend`] and crash simulation.
pub struct DurableSystem<A, E, C, B = MemBackend<A>>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    sys: TxnSystem<A, E, C>,
    backend: B,
    journal: Journal<A>,
    make: Box<dyn Fn() -> TxnSystem<A, E, C> + Send>,
    /// Global execution-sequence allocator (stamps every executed op, so UIP
    /// replay can restore execution order across transactions). Restored
    /// from the log on recovery.
    op_seq: u64,
    /// Executed-but-uncommitted operations per live transaction, with their
    /// execution stamps — the write-ahead buffer that `commit` journals.
    pending_ops: BTreeMap<TxnId, Vec<(u64, ObjectId, Op<A>)>>,
    /// In-doubt 2PC participants by global transaction id: durably PREPAREd
    /// (the yes-vote reached stable storage) but with no durable decision
    /// yet. The transaction stays *active* in the volatile system — holding
    /// every lock — until [`resolve`](Self::resolve) journals the decision.
    /// Rebuilt from the recovery scan's `in_doubt` set after a crash, with
    /// fresh ghost transactions re-holding the locks.
    prepared: BTreeMap<u64, (TxnId, CommitRecord<A>)>,
    /// Normal, or read-only degraded after a device failure the backend's
    /// retry budget could not hide.
    mode: SystemMode,
    /// Group-commit admission bound: batch members beyond this many staged
    /// records are shed before the volatile commit. 0 = unbounded.
    max_staged: usize,
    /// Stall-detector threshold: a commit attempt whose device-stall delta
    /// reaches this many ticks counts as one strike. 0 = detector off.
    stall_threshold: u64,
    /// Strikes (consecutive over-threshold samples) before the detector
    /// degrades the system. The hysteresis: one slow flush never flips the
    /// mode; sustained latency does.
    stall_strikes: u32,
    /// Consecutive over-threshold samples seen so far.
    stall_streak: u32,
    /// The backend's cumulative stall-tick figure at the last sample, so
    /// each observation charges only the delta.
    seen_stall_ticks: u64,
}

impl<A, E, C> DurableSystem<A, E, C, MemBackend<A>>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
{
    /// Create over a fresh system with `n` objects of `adt`, journaling to
    /// the fast in-memory backend.
    pub fn new(adt: A, n_objects: u32, conflict: C) -> Self {
        Self::with_backend(adt, n_objects, conflict, MemBackend::new())
    }
}

impl<A, E, C, B> DurableSystem<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    /// Create over a fresh system with `n` objects of `adt`, journaling to
    /// an explicit backend (e.g. `ccr-store`'s `WalBackend`).
    pub fn with_backend(adt: A, n_objects: u32, conflict: C, backend: B) -> Self {
        let make = {
            let adt = adt.clone();
            let conflict = conflict.clone();
            Box::new(move || TxnSystem::<A, E, C>::new(adt.clone(), n_objects, conflict.clone()))
        };
        let mut sys = DurableSystem {
            sys: make(),
            backend,
            journal: Journal::default(),
            make,
            op_seq: 0,
            pending_ops: BTreeMap::new(),
            prepared: BTreeMap::new(),
            mode: SystemMode::Normal,
            max_staged: 0,
            stall_threshold: 0,
            stall_strikes: 2,
            stall_streak: 0,
            seen_stall_ticks: 0,
        };
        sys.sys.obs_mut().set_label("backend", sys.backend.name());
        sys
    }

    /// Begin a transaction (volatile until commit).
    pub fn begin(&mut self) -> TxnId {
        self.sys.begin()
    }

    /// Execute an operation (volatile until commit; buffered for the
    /// write-ahead journal with its global execution stamp).
    pub fn invoke(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        inv: A::Invocation,
    ) -> Result<A::Response, TxnError> {
        let resp = self.sys.invoke(txn, obj, inv.clone())?;
        let seq = self.op_seq;
        self.op_seq += 1;
        self.pending_ops.entry(txn).or_default().push((seq, obj, Op::new(inv, resp.clone())));
        Ok(resp)
    }

    /// Commit: journal the transaction's operations (force to stable
    /// storage, in commit order), then commit in the volatile system.
    ///
    /// In [`SystemMode::Degraded`] the commit is refused with
    /// [`TxnError::ReadOnly`] and the transaction aborted (its effects were
    /// volatile). A device failure during the append either degrades the
    /// system (retries exhausted, device full — the backend rolled the
    /// append back, so nothing of the record is durable) or, for a tripped
    /// crash-at-op trigger, power-cycles and recovers on the spot: the
    /// transaction then surfaces as [`TxnError::NotActive`], exactly as if
    /// the process had crashed before acknowledging.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), TxnError> {
        if self.mode == SystemMode::Degraded {
            self.pending_ops.remove(&txn);
            let _ = self.sys.abort(txn);
            return Err(TxnError::ReadOnly);
        }
        // Span accounting: the volatile commit (lock release + validate +
        // apply) runs inside the total, as does the journal append with its
        // retry events; both spans close before the append result is judged
        // so a crash-path recovery's events are not charged to this commit.
        let total = self.sys.obs_mut().span_begin(Phase::CommitTotal);
        if let Err(e) = self.sys.commit(txn) {
            self.sys.obs_mut().span_end(total);
            return Err(e);
        }
        let ops = self.pending_ops.remove(&txn).unwrap_or_default();
        // The floor is read back from the log on recovery: journal it.
        let rec = CommitRecord { floor: self.sys.next_txn_id(), ops };
        let journal_span = self.sys.obs_mut().span_begin(Phase::JournalAppend);
        let append = self.backend.append_commit(&rec);
        self.drain_retry_events();
        self.sys.obs_mut().span_end(journal_span);
        self.sys.obs_mut().span_end(total);
        match append {
            Ok(()) => {
                self.journal.records.push(rec);
                self.observe_stalls();
            }
            Err(fail) => {
                return Err(match fail.kind {
                    StoreFailureKind::Device(DiskError::Crashed) => {
                        // The device lost power mid-append: durability of the
                        // record is undecided. Acknowledge the power loss and
                        // recover; the unacknowledged tail is discardable.
                        self.backend.crash();
                        match self.recover_with(TornPolicy::DiscardTail) {
                            Ok(()) => TxnError::NotActive(txn),
                            Err(e) => {
                                self.enter_degraded(format!(
                                    "device crashed mid-commit and recovery failed: {e:?}"
                                ));
                                TxnError::ReadOnly
                            }
                        }
                    }
                    kind => {
                        self.enter_degraded(format!("commit append failed: {kind:?}"));
                        TxnError::ReadOnly
                    }
                });
            }
        }
        // Transactions aborted behind our back (wound-wait victims, wound
        // storms) never reach `abort` here; prune their buffers lazily.
        let active: BTreeSet<TxnId> = self.sys.active().collect();
        self.pending_ops.retain(|t, _| active.contains(t));
        Ok(())
    }

    /// Group commit: commit each transaction in the volatile system, then
    /// journal every survivor's record with **one** flush
    /// ([`LogBackend::append_commits`]) instead of one fsync per commit.
    /// Results come back in input order; a transaction the volatile system
    /// refuses (already aborted, wounded behind our back) contributes no
    /// record and its `Err` is returned in its slot. The durability contract
    /// is all-or-prefix: a crash during the flush may lose a suffix of the
    /// batch, but once this returns the whole group is durable.
    pub fn commit_group(&mut self, txns: &[TxnId]) -> Vec<Result<(), TxnError>> {
        if self.mode == SystemMode::Degraded {
            return txns
                .iter()
                .map(|&t| {
                    self.pending_ops.remove(&t);
                    let _ = self.sys.abort(t);
                    Err(TxnError::ReadOnly)
                })
                .collect();
        }
        // One CommitTotal span covers the whole group: every member's
        // volatile commit (with its own Validate span) plus the single
        // batched journal append.
        let total = self.sys.obs_mut().span_begin(Phase::CommitTotal);
        let mut results = Vec::with_capacity(txns.len());
        let mut recs: Vec<CommitRecord<A>> = Vec::new();
        for &txn in txns {
            // Admission gate: once the staged batch reaches the bound, the
            // remaining members are shed *before* their volatile commit —
            // the journal never sees any of their operations, so the shed is
            // atomicity-preserving by construction (equivalent to a clean
            // abort). Callers retry shed transactions with backoff.
            if self.max_staged > 0 && recs.len() >= self.max_staged {
                self.pending_ops.remove(&txn);
                self.sys.obs_mut().on_shed(txn);
                let _ = self.sys.abort(txn);
                results.push(Err(TxnError::Shed));
                continue;
            }
            match self.sys.commit(txn) {
                Ok(()) => {
                    let ops = self.pending_ops.remove(&txn).unwrap_or_default();
                    recs.push(CommitRecord { floor: self.sys.next_txn_id(), ops });
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        if recs.is_empty() {
            self.sys.obs_mut().span_end(total);
        } else {
            let journal_span = self.sys.obs_mut().span_begin(Phase::JournalAppend);
            let append = self.backend.append_commits(&recs);
            self.drain_retry_events();
            self.sys.obs_mut().span_end(journal_span);
            self.sys.obs_mut().span_end(total);
            match append {
                Ok(()) => {
                    self.sys.obs_mut().on_group_flush(recs.len() as u64, 0);
                    self.journal.records.extend(recs);
                    self.observe_stalls();
                }
                Err(fail) => {
                    // The whole batch's durability failed together; rewrite
                    // every volatile acknowledgement. `None` marks the
                    // power-cycle path, where each transaction evaporated
                    // with the crash (NotActive per slot).
                    let err = match fail.kind {
                        StoreFailureKind::Device(DiskError::Crashed) => {
                            self.backend.crash();
                            match self.recover_with(TornPolicy::DiscardTail) {
                                Ok(()) => None,
                                Err(e) => {
                                    self.enter_degraded(format!(
                                        "device crashed mid-batch-flush and recovery failed: {e:?}"
                                    ));
                                    Some(TxnError::ReadOnly)
                                }
                            }
                        }
                        kind => {
                            self.enter_degraded(format!("batch flush failed: {kind:?}"));
                            Some(TxnError::ReadOnly)
                        }
                    };
                    for (slot, &t) in results.iter_mut().zip(txns) {
                        if slot.is_ok() {
                            *slot = Err(err.clone().unwrap_or(TxnError::NotActive(t)));
                        }
                    }
                    return results;
                }
            }
        }
        let active: BTreeSet<TxnId> = self.sys.active().collect();
        self.pending_ops.retain(|t, _| active.contains(t));
        results
    }

    /// Abort (nothing reaches the journal).
    pub fn abort(&mut self, txn: TxnId) -> Result<(), TxnError> {
        self.pending_ops.remove(&txn);
        self.sys.abort(txn)
    }

    /// 2PC phase one, participant side: durably journal a PREPARE record for
    /// `txn` under the coordinator's global id `gtid` — the yes-vote. The
    /// transaction does **not** commit: it stays active in the volatile
    /// system, holding every lock, until [`resolve`](Self::resolve) journals
    /// the coordinator's decision. `Ok` means the vote is durable: this
    /// participant will commit or abort on command, across any number of
    /// crashes (recovery restores the in-doubt transaction as a ghost).
    ///
    /// Any error is a no-vote — per presumed abort the coordinator needs no
    /// durable record to conclude abort. A tripped crash-at-op trigger
    /// power-cycles and recovers on the spot ([`TxnError::NotActive`]); the
    /// prepare may still have reached stable storage, in which case the gtid
    /// resurfaces [in doubt](Self::in_doubt) and the coordinator's abort
    /// decision (or presumption) resolves it.
    pub fn prepare(&mut self, txn: TxnId, gtid: u64) -> Result<(), TxnError> {
        if self.mode == SystemMode::Degraded {
            self.pending_ops.remove(&txn);
            let _ = self.sys.abort(txn);
            return Err(TxnError::ReadOnly);
        }
        if !self.sys.active().any(|t| t == txn) {
            return Err(TxnError::NotActive(txn));
        }
        assert!(
            !self.prepared.contains_key(&gtid),
            "coordinator bug: gtid {gtid} prepared twice on one participant"
        );
        let ops = self.pending_ops.remove(&txn).unwrap_or_default();
        let rec = CommitRecord { floor: self.sys.next_txn_id(), ops };
        let journal_span = self.sys.obs_mut().span_begin(Phase::JournalAppend);
        let append = self.backend.append_prepare(gtid, &rec);
        self.drain_retry_events();
        self.sys.obs_mut().span_end(journal_span);
        match append {
            Ok(()) => {
                self.sys.obs_mut().on_prepare(txn, gtid);
                self.prepared.insert(gtid, (txn, rec));
                self.observe_stalls();
                Ok(())
            }
            Err(fail) => Err(match fail.kind {
                StoreFailureKind::Device(DiskError::Crashed) => {
                    self.backend.crash();
                    match self.recover_with(TornPolicy::DiscardTail) {
                        Ok(()) => TxnError::NotActive(txn),
                        Err(e) => {
                            self.enter_degraded(format!(
                                "device crashed mid-prepare and recovery failed: {e:?}"
                            ));
                            TxnError::ReadOnly
                        }
                    }
                }
                kind => {
                    self.enter_degraded(format!("prepare append failed: {kind:?}"));
                    TxnError::ReadOnly
                }
            }),
        }
    }

    /// 2PC phase two, participant side: durably journal the coordinator's
    /// decision for an in-doubt `gtid`, then apply it — commit the held
    /// transaction (its record enters the journal mirror at decision order)
    /// or abort it, releasing the locks either way. Idempotent: a gtid this
    /// participant no longer holds in doubt (already resolved, or the
    /// prepare never survived) acknowledges with `Ok` and journals nothing,
    /// so coordinators may retransmit decisions freely.
    ///
    /// A tripped crash-at-op trigger power-cycles and recovers
    /// ([`TxnError::NotActive`]): the decision may or may not have reached
    /// stable storage — the caller re-checks [`in_doubt`](Self::in_doubt)
    /// and retransmits if the gtid still surfaces.
    pub fn resolve(&mut self, gtid: u64, commit: bool) -> Result<(), TxnError> {
        if self.mode == SystemMode::Degraded {
            return Err(TxnError::ReadOnly);
        }
        let Some(txn) = self.prepared.get(&gtid).map(|(t, _)| *t) else {
            return Ok(());
        };
        let journal_span = self.sys.obs_mut().span_begin(Phase::JournalAppend);
        let append = self.backend.append_decision(gtid, commit);
        self.drain_retry_events();
        self.sys.obs_mut().span_end(journal_span);
        match append {
            Ok(()) => {
                let (txn, rec) = self.prepared.remove(&gtid).expect("checked above");
                self.sys.obs_mut().on_decide(gtid, commit);
                self.observe_stalls();
                if commit {
                    match self.sys.commit(txn) {
                        Ok(()) => self.journal.records.push(rec),
                        Err(_) => {
                            // The durable decision is the commit point; the
                            // volatile refusal (a theorem-impossible wound of
                            // a lock-holding preparee) cannot unwind it.
                            // Record durable truth and re-sync the mirror.
                            self.journal.records.push(rec);
                            let _ = self.rebuild_from_journal();
                        }
                    }
                } else {
                    self.pending_ops.remove(&txn);
                    let _ = self.sys.abort(txn);
                }
                let active: BTreeSet<TxnId> = self.sys.active().collect();
                self.pending_ops.retain(|t, _| active.contains(t));
                Ok(())
            }
            Err(fail) => Err(match fail.kind {
                StoreFailureKind::Device(DiskError::Crashed) => {
                    self.backend.crash();
                    match self.recover_with(TornPolicy::DiscardTail) {
                        Ok(()) => TxnError::NotActive(txn),
                        Err(e) => {
                            self.enter_degraded(format!(
                                "device crashed mid-decide and recovery failed: {e:?}"
                            ));
                            TxnError::ReadOnly
                        }
                    }
                }
                kind => {
                    self.enter_degraded(format!("decision append failed: {kind:?}"));
                    TxnError::ReadOnly
                }
            }),
        }
    }

    /// [`resolve`](Self::resolve) for a decision reached *after* recovery —
    /// by querying the coordinator's durable log or by presuming abort.
    /// Additionally emits the `Resolved` observability event (the in-doubt
    /// window spanned a power cycle, so no prepare-to-decide latency sample
    /// is recorded).
    pub fn resolve_in_doubt(&mut self, gtid: u64, commit: bool) -> Result<(), TxnError> {
        let known = self.prepared.contains_key(&gtid);
        self.resolve(gtid, commit)?;
        if known {
            self.sys.obs_mut().on_resolved(gtid, commit);
        }
        Ok(())
    }

    /// Global ids of in-doubt transactions: durably prepared, no durable
    /// decision. Ascending order.
    pub fn in_doubt(&self) -> Vec<u64> {
        self.prepared.keys().copied().collect()
    }

    /// The durably prepared record held in doubt under `gtid`, if any.
    pub fn in_doubt_record(&self, gtid: u64) -> Option<&CommitRecord<A>> {
        self.prepared.get(&gtid).map(|(_, r)| r)
    }

    /// Write a checkpoint: fold every object's committed state into a
    /// durable image, after which the backend may truncate the covered log
    /// prefix. Returns the number of whole segments truncated. No-op
    /// returning 0 when nothing was committed since the last checkpoint.
    ///
    /// This is also the exit from [`SystemMode::Degraded`]: a checkpoint
    /// that reaches stable storage is durable proof the
    /// [healed](Self::heal_device) device accepts writes again, so the
    /// system returns to [`SystemMode::Normal`]. A checkpoint the device
    /// refuses (returning 0) enters — or stays in — degraded mode.
    pub fn checkpoint(&mut self) -> u64 {
        // A checkpoint image captures only *committed* state; truncating the
        // log while prepares are in doubt would orphan their PREPARE frames.
        // Refuse until every 2PC decision lands.
        if !self.prepared.is_empty() {
            return 0;
        }
        let records = self.journal.records.len() as u64;
        if records == 0 && self.journal.base.is_some() && self.mode == SystemMode::Normal {
            return 0;
        }
        let states: Vec<(ObjectId, A::State)> = self
            .sys
            .object_ids()
            .into_iter()
            .map(|obj| {
                let state = self.sys.committed_state(obj);
                (obj, state)
            })
            .collect();
        let img = CheckpointImage {
            base_records: self.journal.base_records + records,
            txn_floor: self.sys.next_txn_id(),
            next_exec_seq: self.op_seq,
            states: states.clone(),
        };
        let write = self.backend.write_checkpoint(&img);
        self.drain_retry_events();
        match write {
            Ok(truncated) => {
                self.journal.base_records = img.base_records;
                self.journal.base = Some(states);
                self.journal.records.clear();
                self.sys.obs_mut().on_checkpoint(records, truncated);
                if self.mode == SystemMode::Degraded {
                    self.mode = SystemMode::Normal;
                    self.sys.obs_mut().on_degraded(false, String::new);
                }
                truncated
            }
            Err(fail) => {
                match fail.kind {
                    StoreFailureKind::Device(DiskError::Crashed) => {
                        // Power loss mid-checkpoint: recover from whichever
                        // image — old XOR new — reached stable storage
                        // (both fold to the same committed state).
                        self.backend.crash();
                        if let Err(e) = self.recover_with(TornPolicy::DiscardTail) {
                            self.enter_degraded(format!(
                                "device crashed mid-checkpoint and recovery failed: {e:?}"
                            ));
                        }
                    }
                    kind => {
                        // The journal mirror keeps the old base: whichever
                        // image is durably complete wins at the next
                        // recovery.
                        self.enter_degraded(format!("checkpoint write failed: {kind:?}"));
                    }
                }
                0
            }
        }
    }

    /// Simulate a crash: every piece of volatile state is lost — active
    /// transactions, their effects, the lock table, the backend's write
    /// cache — then rebuild from the backend's recovery scan. Each replayed
    /// response is verified against the journal. Equivalent to
    /// [`crash_and_recover_with`](Self::crash_and_recover_with) under
    /// [`TornPolicy::Strict`].
    pub fn crash_and_recover(&mut self) -> Result<(), RedoError> {
        self.crash_and_recover_with(TornPolicy::Strict)
    }

    /// Crash and recover under an explicit [`TornPolicy`]. On `Err` the
    /// pre-crash volatile system is left in place (recovery is
    /// all-or-nothing), with the failed scan's evidence recorded on its
    /// tracer — callers can inspect both; the fault simulator relies on
    /// this to diagnose oracle failures.
    pub fn crash_and_recover_with(&mut self, policy: TornPolicy) -> Result<(), RedoError> {
        self.backend.crash();
        self.recover_with(policy)
    }

    /// Re-run recovery against the *current* durable image, without crashing
    /// again. This is the retry path after a failed scan whose cause was
    /// repaired in place (e.g. [`repair_flips`](Self::repair_flips)): a
    /// fresh crash would wipe the backend's volatile detection counters, so
    /// the repair flow must not take one.
    pub fn recover_with(&mut self, policy: TornPolicy) -> Result<(), RedoError> {
        // Phase accounting: the scan/classify/repair stage splits come from
        // the backend's ScanReport (their op counts tile the successful
        // attempt's device-op delta exactly); rebuild and replay are timed
        // here. Units for the recovery total are the attempt's device ops.
        let wall = std::time::Instant::now();
        let mut attempt_ops;
        let recovered = loop {
            let ops0 = self.backend.device_op_count();
            let attempt = self.backend.recover(policy.tail());
            self.drain_retry_events();
            attempt_ops = self.backend.device_op_count() - ops0;
            match attempt {
                Ok(r) => break r,
                Err(fail) => {
                    match fail.kind {
                        // A crash-at-op trigger tripped *during recovery*:
                        // acknowledge the nested power loss and recover from
                        // whatever the interrupted attempt left durable. The
                        // trigger is one-shot (tripping consumes it), so
                        // this converges.
                        StoreFailureKind::Device(DiskError::Crashed) => {
                            self.backend.crash();
                            continue;
                        }
                        // A transient-error burst outlasted one op's retry
                        // budget mid-scan. The burst is finite and every
                        // failed attempt consumes part of it, so re-running
                        // the scan converges — recovery is the one path that
                        // must not give up on a retryable error, since
                        // nothing downstream can serve until it completes.
                        StoreFailureKind::Device(DiskError::Transient) => continue,
                        kind => {
                            // Surface the scan evidence on the surviving
                            // tracer even though the rebuild is refused.
                            emit_scan(self.sys.obs_mut(), &fail.report);
                            self.sys.obs_mut().on_phase(
                                Phase::RecoveryTotal,
                                attempt_ops,
                                wall.elapsed().as_nanos() as u64,
                            );
                            return Err(match kind {
                                StoreFailureKind::Torn { record, expected, found } => {
                                    RedoError::TornRecord { record, expected, found }
                                }
                                StoreFailureKind::Corrupt { sector } => {
                                    RedoError::CorruptRecord { sector }
                                }
                                StoreFailureKind::Device(error) => RedoError::Device { error },
                            });
                        }
                    }
                }
            }
        };
        // The tracer models durable monitoring state: carry it across the
        // rebuild so counters/histograms survive. The replay below runs
        // against the fresh system's own throwaway tracer (recovery must not
        // double-count the replayed commits), which is discarded on success.
        let rebuild_clock = std::time::Instant::now();
        let mut fresh = (self.make)();
        fresh.set_record_trace(true);
        fresh.obs_mut().set_record_events(false);
        let mut restored = 0u64;
        if let Some(cp) = &recovered.checkpoint {
            for (obj, state) in &cp.states {
                fresh.restore_committed(*obj, state.clone());
                restored += 1;
            }
        }
        let rebuild_ns = rebuild_clock.elapsed().as_nanos() as u64;
        let replay_clock = std::time::Instant::now();
        let replayed = recovered.records.len();
        for (ri, rec) in recovered.records.iter().enumerate() {
            let t = fresh.begin();
            for (oi, (_seq, obj, op)) in rec.ops.iter().enumerate() {
                match fresh.invoke(t, *obj, op.inv.clone()) {
                    Ok(resp) if resp == op.resp => {}
                    Ok(_) => return Err(RedoError::ResponseDiverged { record: ri, op: oi }),
                    Err(_) => return Err(RedoError::ReplayRefused { record: ri }),
                }
            }
            fresh.commit(t).map_err(|_| RedoError::ReplayRefused { record: ri })?;
        }
        // Floors come from the log, not from pre-crash process memory — and
        // they already cover the in-doubt prepares, so the ghosts begun
        // below get fresh post-crash ids.
        fresh.reserve_txn_ids(recovered.txn_floor);
        // Restore each in-doubt prepare as a *ghost*: a fresh active
        // transaction that re-executes the prepared operations (responses
        // verified — two-phase locking kept conflicting committed work out,
        // so replaying committed-then-in-doubt must reproduce them) and is
        // left uncommitted, re-holding every lock until the coordinator's
        // decision resolves it. The original record (original execution
        // stamps) stays in the in-doubt map; the ghost's re-execution is
        // reconstruction, not new workload.
        let mut prepared: BTreeMap<u64, (TxnId, CommitRecord<A>)> = BTreeMap::new();
        for (gi, (gtid, rec)) in recovered.in_doubt.iter().enumerate() {
            let t = fresh.begin();
            for (oi, (_seq, obj, op)) in rec.ops.iter().enumerate() {
                match fresh.invoke(t, *obj, op.inv.clone()) {
                    Ok(resp) if resp == op.resp => {}
                    Ok(_) => {
                        return Err(RedoError::ResponseDiverged { record: replayed + gi, op: oi })
                    }
                    Err(_) => return Err(RedoError::ReplayRefused { record: replayed + gi }),
                }
            }
            prepared.insert(*gtid, (t, rec.clone()));
        }
        // Replay succeeded: move the surviving tracer over, record the scan
        // evidence and the recovery on it (on `Err` above the pre-crash
        // system is left in place, preserving all-or-nothing recovery).
        let replay_ns = replay_clock.elapsed().as_nanos() as u64;
        let mut obs = self.sys.take_obs();
        emit_scan(&mut obs, &recovered.scan);
        obs.on_phase(Phase::Rebuild, restored, rebuild_ns);
        obs.on_phase(Phase::Replay, replayed as u64, replay_ns);
        obs.on_recovery(replayed);
        if !prepared.is_empty() {
            obs.on_in_doubt(prepared.len() as u64);
        }
        obs.on_phase(Phase::RecoveryTotal, attempt_ops, wall.elapsed().as_nanos() as u64);
        fresh.set_obs(obs);
        self.op_seq = recovered.next_exec_seq;
        self.pending_ops.clear();
        self.prepared = prepared;
        self.journal = Journal {
            base_records: recovered.checkpoint.as_ref().map_or(0, |c| c.base_records),
            base: recovered.checkpoint.map(|c| c.states),
            records: recovered.records,
        };
        self.sys = fresh;
        // A successful recovery proved the device writable (the epoch bump
        // reached stable storage): leave degraded mode. The stall sampler
        // re-anchors on the recovered device — recovery's own ticks are not
        // charged to the next commit.
        self.seen_stall_ticks = self.backend.stall_ticks();
        self.stall_streak = 0;
        if self.mode == SystemMode::Degraded {
            self.mode = SystemMode::Normal;
            self.sys.obs_mut().on_degraded(false, String::new);
        }
        Ok(())
    }

    /// Inject a torn write: drop the last `drop_ops` units of the final
    /// journal append, leaving its header intact — as if the crash
    /// interrupted the record's flush to stable storage. Returns `false`
    /// when the backend's stable image cannot be torn that way.
    pub fn tear_last_record(&mut self, drop_ops: usize) -> bool {
        if !self.backend.tear_last_flush(drop_ops) {
            return false;
        }
        let record = self.journal.len().saturating_sub(1);
        self.sys.obs_mut().on_torn(record);
        true
    }

    /// Tear the last commit flush at the backend's physical granularity
    /// (sectors for the WAL, operations for the mem backend) *without*
    /// counting it as a torn-record fault — the simulator's sector-tear
    /// fault reports itself through its own counter. Returns `false` when
    /// the stable image cannot be torn that way.
    pub fn tear_last_flush(&mut self, sectors: usize) -> bool {
        self.backend.tear_last_flush(sectors)
    }

    /// Lose the first sector of the last multi-sector commit flush, as if
    /// the device reordered persistence across the un-fsynced write. Returns
    /// `false` when the backend's image cannot express that fault.
    pub fn reorder_last_flush(&mut self) -> bool {
        self.backend.reorder_last_flush()
    }

    /// Flip one durable bit (index reduced modulo the stable image size).
    /// Returns `false` for backends with no byte image.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        self.backend.flip_bit(bit)
    }

    /// Undo all injected bit flips (the medium is repaired; the log bytes
    /// return to what was written). Returns the number of repairs.
    pub fn repair_flips(&mut self) -> usize {
        self.backend.repair_flips()
    }

    /// Forward the backend's retry telemetry to the tracer (one `IoRetry`
    /// event per checked device op that needed retries).
    fn drain_retry_events(&mut self) {
        for r in self.backend.drain_retries() {
            self.sys.obs_mut().on_io_retry(r.attempts, r.backoff, r.ok);
        }
    }

    /// Bound the group-commit admission queue: [`commit_group`]
    /// (Self::commit_group) sheds batch members beyond `max_staged` staged
    /// records with [`TxnError::Shed`], before their volatile commit. 0
    /// (the default) admits everything.
    pub fn set_admission_bound(&mut self, max_staged: usize) {
        self.max_staged = max_staged;
    }

    /// The current group-commit admission bound (0 = unbounded).
    pub fn admission_bound(&self) -> usize {
        self.max_staged
    }

    /// Arm the gray-failure health detector: a commit attempt whose
    /// device-stall delta reaches `threshold` ticks counts as one strike;
    /// `strikes` *consecutive* over-threshold attempts degrade the system
    /// (read-only until the device is [healed](Self::heal_device) and a
    /// checkpoint or recovery proves it writable). `threshold == 0`
    /// disables the detector; stall deltas are still observed and counted.
    pub fn set_stall_detector(&mut self, threshold: u64, strikes: u32) {
        self.stall_threshold = threshold;
        self.stall_strikes = strikes.max(1);
    }

    /// Sample the backend's cumulative stall-tick counter, emit the delta as
    /// a `Stall` event (feeding the stall-latency histogram), and run the
    /// hysteresis detector. Called after every durable append that
    /// succeeded; a zero delta is a healthy sample and resets the streak.
    fn observe_stalls(&mut self) {
        let now = self.backend.stall_ticks();
        let delta = now.saturating_sub(self.seen_stall_ticks);
        self.seen_stall_ticks = now;
        if delta > 0 {
            self.sys.obs_mut().on_stall(delta);
        }
        if self.stall_threshold == 0 {
            return;
        }
        if delta >= self.stall_threshold {
            self.stall_streak += 1;
            if self.stall_streak >= self.stall_strikes && self.mode == SystemMode::Normal {
                self.stall_streak = 0;
                self.enter_degraded(format!(
                    "sustained device latency: {delta} stall ticks on the last of {} strikes",
                    self.stall_strikes
                ));
            }
        } else {
            self.stall_streak = 0;
        }
    }

    /// Enter read-only degraded mode: emit the event, then roll the volatile
    /// mirror back to stable truth by replaying the journal into a fresh
    /// system. Active transactions evaporate (their effects were volatile);
    /// reads keep serving the durable committed state. Idempotent.
    fn enter_degraded(&mut self, reason: String) {
        if self.mode == SystemMode::Degraded {
            return;
        }
        self.mode = SystemMode::Degraded;
        self.sys.obs_mut().on_degraded(true, || reason);
        // On the (theorem-impossible) replay failure the stale volatile
        // system stays in place; the simulator's oracle surfaces the
        // divergence.
        let _ = self.rebuild_from_journal();
    }

    /// Rebuild the volatile system from the journal *mirror* (no device I/O
    /// — the device just refused writes). Unlike a real recovery, the id
    /// floor and execution sequence carry over from process memory: the
    /// process did not crash, so monotonicity is preserved without re-reading
    /// the log.
    fn rebuild_from_journal(&mut self) -> Result<(), RedoError> {
        let mut fresh = (self.make)();
        fresh.set_record_trace(true);
        fresh.obs_mut().set_record_events(false);
        if let Some(base) = self.journal.base.as_deref() {
            for (obj, state) in base {
                fresh.restore_committed(*obj, state.clone());
            }
        }
        for (ri, rec) in self.journal.records.iter().enumerate() {
            let t = fresh.begin();
            for (oi, (_seq, obj, op)) in rec.ops.iter().enumerate() {
                match fresh.invoke(t, *obj, op.inv.clone()) {
                    Ok(resp) if resp == op.resp => {}
                    Ok(_) => return Err(RedoError::ResponseDiverged { record: ri, op: oi }),
                    Err(_) => return Err(RedoError::ReplayRefused { record: ri }),
                }
            }
            fresh.commit(t).map_err(|_| RedoError::ReplayRefused { record: ri })?;
        }
        let floor = self.sys.next_txn_id();
        fresh.reserve_txn_ids(floor);
        // Re-install the in-doubt ghosts: the process did not crash, but the
        // volatile mirror is being rebuilt, so each durably prepared
        // transaction gets a fresh ghost re-holding its locks (responses
        // verified, original records kept).
        let base = self.journal.records.len();
        let mut ghosts: BTreeMap<u64, (TxnId, CommitRecord<A>)> = BTreeMap::new();
        for (gi, (gtid, (_old, rec))) in self.prepared.iter().enumerate() {
            let t = fresh.begin();
            for (oi, (_seq, obj, op)) in rec.ops.iter().enumerate() {
                match fresh.invoke(t, *obj, op.inv.clone()) {
                    Ok(resp) if resp == op.resp => {}
                    Ok(_) => return Err(RedoError::ResponseDiverged { record: base + gi, op: oi }),
                    Err(_) => return Err(RedoError::ReplayRefused { record: base + gi }),
                }
            }
            ghosts.insert(*gtid, (t, rec.clone()));
        }
        let obs = self.sys.take_obs();
        fresh.set_obs(obs);
        self.pending_ops.clear();
        self.prepared = ghosts;
        self.sys = fresh;
        Ok(())
    }

    /// Current [`SystemMode`].
    pub fn mode(&self) -> SystemMode {
        self.mode
    }

    /// Whether the system is refusing commits ([`SystemMode::Degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.mode == SystemMode::Degraded
    }

    /// Heal the device: clear the full condition and any un-consumed
    /// transient-error budget (the operator freed space / replaced the
    /// cable). Returns `false` for backends with no device. Healing alone
    /// does not exit degraded mode — a successful [`checkpoint`]
    /// (Self::checkpoint) or recovery must first prove the device writable.
    pub fn heal_device(&mut self) -> bool {
        self.backend.heal_device()
    }

    /// Replace the backend's transient-I/O retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.backend.set_retry_policy(policy);
    }

    /// The global execution-sequence counter (the next stamp to allocate).
    /// Part of the model checker's canonical state: two states that differ
    /// only here still journal different records from now on.
    pub fn exec_seq(&self) -> u64 {
        self.op_seq
    }

    /// The committed state of `obj`.
    pub fn committed_state(&mut self, obj: ObjectId) -> A::State {
        self.sys.committed_state(obj)
    }

    /// The volatile mirror of stable storage (what an undamaged recovery
    /// would reconstruct).
    pub fn journal(&self) -> &Journal<A> {
        &self.journal
    }

    /// The storage backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (tests and fault injection reach the disk
    /// through this).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The backend's durable counters (persisted in segment headers for the
    /// WAL; the struct itself for the mem backend).
    pub fn store_stats(&self) -> StoreStats {
        self.backend.stats()
    }

    /// Access the volatile system (e.g. for trace inspection).
    pub fn system(&self) -> &TxnSystem<A, E, C> {
        &self.sys
    }

    /// Mutable access to the volatile system (scheduler loops and fault
    /// injection need `abort_with`, `find_deadlock` etc.).
    pub fn system_mut(&mut self) -> &mut TxnSystem<A, E, C> {
        &mut self.sys
    }

    /// Execution counters (carried across crashes).
    pub fn stats(&self) -> &crate::system::SystemStats {
        self.sys.stats()
    }
}

/// A full snapshot of a [`DurableSystem`] at one instant: the volatile
/// system (lock table, engines, tracer), the stable backend (durable image
/// plus write cache and armed faults), the journal mirror and the counters.
/// The model checker's DFS explorer forks execution by taking a snapshot at
/// each decision point, trying one action, and [`DurableSystem::restore`]-ing
/// before trying the next.
///
/// The one piece *not* captured is the `make` closure — it is immutable
/// configuration (ADT, object count, conflict relation), so restoring into
/// the same `DurableSystem` is exact.
pub struct SystemSnapshot<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
    B: LogBackend<A>,
{
    sys: TxnSystem<A, E, C>,
    backend: B,
    journal: Journal<A>,
    op_seq: u64,
    pending_ops: BTreeMap<TxnId, Vec<(u64, ObjectId, Op<A>)>>,
    prepared: BTreeMap<u64, (TxnId, CommitRecord<A>)>,
    mode: SystemMode,
}

impl<A, E, C, B> Clone for SystemSnapshot<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A> + Clone,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    fn clone(&self) -> Self {
        SystemSnapshot {
            sys: self.sys.clone(),
            backend: self.backend.clone(),
            journal: self.journal.clone(),
            op_seq: self.op_seq,
            pending_ops: self.pending_ops.clone(),
            prepared: self.prepared.clone(),
            mode: self.mode,
        }
    }
}

impl<A, E, C, B> DurableSystem<A, E, C, B>
where
    A: Adt,
    E: RecoveryEngine<A> + Clone,
    C: Conflict<A> + Clone,
    B: LogBackend<A>,
{
    /// Capture the complete state — volatile and stable — for later
    /// [`restore`](Self::restore). See [`SystemSnapshot`].
    pub fn snapshot(&self) -> SystemSnapshot<A, E, C, B> {
        SystemSnapshot {
            sys: self.sys.clone(),
            backend: self.backend.clone(),
            journal: self.journal.clone(),
            op_seq: self.op_seq,
            pending_ops: self.pending_ops.clone(),
            prepared: self.prepared.clone(),
            mode: self.mode,
        }
    }

    /// Rewind to a snapshot taken from this (or an identically configured)
    /// system. Non-consuming: the explorer restores the same snapshot once
    /// per branch of the decision point.
    pub fn restore(&mut self, snap: &SystemSnapshot<A, E, C, B>) {
        self.sys = snap.sys.clone();
        self.backend = snap.backend.clone();
        self.journal = snap.journal.clone();
        self.op_seq = snap.op_seq;
        self.pending_ops = snap.pending_ops.clone();
        self.prepared = snap.prepared.clone();
        self.mode = snap.mode;
        // Re-anchor the stall sampler on the restored backend so the next
        // observation charges only post-restore deltas; the strike streak
        // does not survive a rewind.
        self.seen_stall_ticks = self.backend.stall_ticks();
        self.stall_streak = 0;
    }

    /// Checked device operations performed so far (0 for backends with no
    /// device). Monotone except across [`restore`](Self::restore).
    pub fn device_op_count(&self) -> u64 {
        self.backend.device_op_count()
    }

    /// Count the checked device operations a clean crash-recovery would
    /// perform from the current state, without perturbing it: snapshot,
    /// crash + recover, measure, restore. Returns `None` when the backend
    /// has no checked-op notion (mem) or the probe recovery fails — in
    /// either case there are no crash points to enumerate.
    pub fn probe_recovery_ops(&mut self, policy: TornPolicy) -> Option<u64> {
        if self.backend.device_op_count() == 0 && self.backend.name() == "mem" {
            return None;
        }
        let snap = self.snapshot();
        self.backend.crash();
        let start = self.backend.device_op_count();
        let ok = self.recover_with(policy).is_ok();
        let ops = self.backend.device_op_count().saturating_sub(start);
        self.restore(&snap);
        if ok && ops > 0 {
            Some(ops)
        } else {
            None
        }
    }

    /// Crash, then arm the device to lose power again after `at_op` checked
    /// operations *of the recovery itself*, then recover. The nested power
    /// loss is absorbed by [`recover_with`](Self::recover_with)'s internal
    /// loop (the trigger is one-shot), so on `Ok` the system has fully
    /// recovered — possibly through an interrupted first attempt. Returns
    /// whether the backend could arm the trigger at all.
    pub fn crash_recover_interrupted(
        &mut self,
        policy: TornPolicy,
        at_op: u64,
    ) -> Result<bool, RedoError> {
        self.backend.crash();
        // Arm *after* the crash: crashing clears armed triggers (power-on
        // resets the device), so the order matters.
        let armed = self.backend.arm_crash_at_op(at_op);
        self.recover_with(policy).map(|()| armed)
    }
}

/// Record a recovery scan's physical evidence on the tracer: one corruption
/// event per damage site, then the scan summary (which also feeds the
/// scan-latency histogram).
fn emit_scan(obs: &mut Tracer, scan: &ScanReport) {
    for d in &scan.detections {
        let kind = match d {
            Detection::CrcMismatch { .. } => CorruptionKind::BitFlip,
            Detection::TornFrame { .. } | Detection::MissingData { .. } => CorruptionKind::TornTail,
            Detection::InteriorFrame { .. } => CorruptionKind::Interior,
        };
        obs.on_corruption(kind, d.sector());
    }
    // The per-stage splits from the scan: units are checked device ops
    // (zero for the mem backend, which has no device), wall time rides
    // along when the wall clock is enabled.
    obs.on_phase(Phase::Scan, scan.scan_ops, scan.scan_ns);
    obs.on_phase(Phase::Classify, scan.classify_ops, scan.classify_ns);
    obs.on_phase(Phase::Repair, scan.repair_ops, scan.repair_ns);
    obs.on_segment_scan(scan.segments, scan.frames, scan.sectors, || scan.damage.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::UipEngine;
    use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv};
    use ccr_store::{WalBackend, WalConfig};

    const X: ObjectId = ObjectId::SOLE;

    type Durable = DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        ccr_core::conflict::FnConflict<BankAccount>,
    >;

    type DiskDurable = DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        ccr_core::conflict::FnConflict<BankAccount>,
        WalBackend<BankAccount>,
    >;

    fn disk_sys(n_objects: u32) -> DiskDurable {
        DurableSystem::with_backend(
            BankAccount::default(),
            n_objects,
            bank_nrbc(),
            WalBackend::new(WalConfig::default()),
        )
    }

    #[test]
    fn committed_state_survives_a_crash() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.invoke(t, y, BankInv::Deposit(5)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(4)).unwrap();
        sys.commit(u).unwrap();

        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 6);
        assert_eq!(sys.committed_state(y), 5);
        assert_eq!(sys.journal().len(), 2);
    }

    #[test]
    fn active_transactions_vanish_in_a_crash() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.commit(t).unwrap();
        // An active (uncommitted) withdrawal...
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(9)).unwrap();
        // ...is lost by the crash: only the committed deposit survives.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 10);
        // The old handle is dead in the rebuilt system.
        assert!(matches!(sys.invoke(u, X, BankInv::Balance), Err(TxnError::NotActive(_))));
    }

    #[test]
    fn system_is_usable_after_recovery() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(3)).unwrap();
        sys.commit(t).unwrap();
        sys.crash_and_recover().unwrap();
        let u = sys.begin();
        assert_eq!(sys.invoke(u, X, BankInv::Balance).unwrap(), ccr_adt::bank::BankResp::Val(3));
        sys.commit(u).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 3);
        assert_eq!(sys.journal().len(), 2);
    }

    #[test]
    fn torn_record_detected_strictly_then_discardable() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(1)).unwrap();
        sys.invoke(u, X, BankInv::Withdraw(2)).unwrap();
        sys.commit(u).unwrap();

        assert!(sys.tear_last_record(1));
        // Strict recovery refuses the torn record — never silent corruption.
        assert_eq!(
            sys.crash_and_recover(),
            Err(RedoError::TornRecord { record: 1, expected: 2, found: 1 })
        );
        // DiscardTail drops the torn commit entirely, as if `u` aborted.
        sys.crash_and_recover_with(TornPolicy::DiscardTail).unwrap();
        assert_eq!(sys.committed_state(X), 10);
        assert_eq!(sys.journal().len(), 1);
        assert_eq!(sys.stats().torn_crashes, 1);
    }

    #[test]
    fn counters_and_txn_ids_survive_crashes() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(3)).unwrap();
        sys.commit(t).unwrap();
        let pre_next = sys.system().next_txn_id();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.stats().crashes, 1);
        assert_eq!(sys.stats().committed, 1, "replay must not double-count");
        // Post-recovery ids never collide with pre-crash ones.
        assert!(sys.system().next_txn_id() >= pre_next);
        let u = sys.begin();
        assert!(u.0 >= pre_next);
        sys.abort(u).unwrap();
    }

    #[test]
    fn repeated_crashes_are_idempotent() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        for i in 1..=4u64 {
            let t = sys.begin();
            sys.invoke(t, X, BankInv::Deposit(i)).unwrap();
            sys.commit(t).unwrap();
            sys.crash_and_recover().unwrap();
            sys.crash_and_recover().unwrap();
            assert_eq!(sys.committed_state(X), (1..=i).sum::<u64>());
        }
    }

    #[test]
    fn checkpoint_truncates_and_recovery_replays_from_it() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        for i in 1..=3u64 {
            let t = sys.begin();
            sys.invoke(t, X, BankInv::Deposit(i)).unwrap();
            sys.commit(t).unwrap();
        }
        sys.checkpoint();
        assert_eq!(sys.journal().base_records(), 3);
        assert_eq!(sys.journal().records().len(), 0);
        assert_eq!(sys.journal().len(), 3, "checkpointed records still count");
        // A post-checkpoint commit, then crash: recovery seeds from the
        // checkpoint image and replays only the suffix.
        let t = sys.begin();
        sys.invoke(t, y, BankInv::Deposit(7)).unwrap();
        sys.commit(t).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 6);
        assert_eq!(sys.committed_state(y), 7);
        assert_eq!(sys.journal().base_records(), 3);
        assert_eq!(sys.journal().records().len(), 1);
        assert_eq!(sys.stats().checkpoints, 1);
        // Checkpointing again folds the replayed suffix...
        sys.checkpoint();
        assert_eq!(sys.store_stats().checkpoints, 2);
        // ...and an *empty* checkpoint (nothing committed since) is a no-op.
        assert_eq!(sys.checkpoint(), 0);
        assert_eq!(sys.store_stats().checkpoints, 2);
    }

    #[test]
    fn disk_backend_round_trips_through_real_recovery() {
        let mut sys = disk_sys(2);
        let y = ObjectId(1);
        for i in 1..=4u64 {
            let t = sys.begin();
            sys.invoke(t, X, BankInv::Deposit(i)).unwrap();
            sys.invoke(t, y, BankInv::Deposit(i * 10)).unwrap();
            sys.commit(t).unwrap();
        }
        let pre_next = sys.system().next_txn_id();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 10);
        assert_eq!(sys.committed_state(y), 100);
        assert_eq!(sys.journal().len(), 4);
        assert!(sys.system().next_txn_id() >= pre_next, "floor read back from the log");
        assert_eq!(sys.store_stats().recoveries, 1);
        // Checkpoint, keep going, crash again: the suffix replays over the
        // checkpoint image.
        sys.checkpoint();
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Withdraw(9)).unwrap();
        sys.commit(t).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 1);
        assert_eq!(sys.committed_state(y), 100);
    }

    #[test]
    fn disk_bitflip_is_detected_then_recoverable_after_repair() {
        let mut sys = disk_sys(1);
        for i in 1..=2u64 {
            let t = sys.begin();
            sys.invoke(t, X, BankInv::Deposit(i)).unwrap();
            sys.commit(t).unwrap();
        }
        assert!(sys.flip_bit(700));
        let err = sys.crash_and_recover().unwrap_err();
        assert!(
            matches!(err, RedoError::CorruptRecord { .. } | RedoError::TornRecord { .. }),
            "a flipped bit must fail loudly, got {err:?}"
        );
        // The medium is repaired; the retry must NOT crash again (that would
        // wipe the backend's volatile detection counters before they are
        // persisted by the successful recovery).
        assert_eq!(sys.repair_flips(), 1);
        sys.recover_with(TornPolicy::Strict).unwrap();
        assert_eq!(sys.committed_state(X), 3);
        let stats = sys.store_stats();
        assert!(
            stats.bitflips_detected + stats.sector_tears + stats.reordered_flushes >= 1,
            "the failed scan's detection must be persisted: {stats:?}"
        );
    }

    #[test]
    fn group_commit_round_trips_through_disk_recovery() {
        let mut sys = disk_sys(1);
        let txns: Vec<TxnId> = (0..3)
            .map(|i| {
                let t = sys.begin();
                sys.invoke(t, X, BankInv::Deposit(i + 1)).unwrap();
                t
            })
            .collect();
        let results = sys.commit_group(&txns);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(sys.journal().len(), 3);
        assert_eq!(sys.stats().committed, 3);
        // The flush was observed once, for the whole batch.
        use ccr_obs::EventKind;
        let flushes: Vec<u64> = sys
            .system()
            .obs()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::GroupFlush { batch, .. } => Some(batch),
                _ => None,
            })
            .collect();
        assert_eq!(flushes, vec![3]);
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 6);
        assert_eq!(sys.journal().len(), 3);
    }

    #[test]
    fn torn_group_flush_recovers_a_batch_prefix() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(100)).unwrap();
        sys.commit(t).unwrap();
        let txns: Vec<TxnId> = (0..3)
            .map(|i| {
                let u = sys.begin();
                sys.invoke(u, X, BankInv::Deposit(10u64.pow(i))).unwrap();
                u
            })
            .collect();
        assert!(sys.commit_group(&txns).iter().all(|r| r.is_ok()));
        // Tear one sector off the batch flush: the final record is torn
        // mid-frame; the first two survive as an unacknowledged prefix.
        assert!(sys.tear_last_flush(1));
        assert!(matches!(sys.crash_and_recover(), Err(RedoError::TornRecord { .. })));
        sys.crash_and_recover_with(TornPolicy::DiscardTail).unwrap();
        assert_eq!(sys.committed_state(X), 100 + 1 + 10);
        assert_eq!(sys.journal().len(), 3);
        // The repaired log is clean from now on.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 111);
    }

    #[test]
    fn disk_full_degrades_to_read_only_then_heals() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.commit(t).unwrap();

        assert!(sys.backend_mut().set_device_full(true));
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(5)).unwrap();
        assert_eq!(sys.commit(u), Err(TxnError::ReadOnly));
        assert!(sys.is_degraded());
        assert_eq!(sys.mode(), SystemMode::Degraded);
        // The failed commit's volatile effects were rolled back: reads serve
        // exactly the durable committed state.
        assert_eq!(sys.committed_state(X), 10);
        let r = sys.begin();
        assert_eq!(sys.invoke(r, X, BankInv::Balance).unwrap(), ccr_adt::bank::BankResp::Val(10));
        // Further commits keep being refused while degraded...
        assert_eq!(sys.commit(r), Err(TxnError::ReadOnly));
        // ...and healing alone is not enough: the checkpoint must prove the
        // device writable again.
        assert!(sys.heal_device());
        assert!(sys.is_degraded());
        sys.checkpoint();
        assert!(!sys.is_degraded());
        let v = sys.begin();
        sys.invoke(v, X, BankInv::Deposit(7)).unwrap();
        sys.commit(v).unwrap();
        assert_eq!(sys.committed_state(X), 17);
        // The healed log round-trips through real recovery.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 17);
        assert_eq!(sys.stats().degraded_entries, 1);
        assert_eq!(sys.stats().degraded_exits, 1);
    }

    #[test]
    fn transient_io_errors_are_absorbed_by_retries() {
        let mut sys = disk_sys(1);
        assert!(sys.backend_mut().arm_transient_io(2));
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(3)).unwrap();
        sys.commit(t).unwrap();
        assert!(!sys.is_degraded(), "retries must hide a transient budget below the attempt cap");
        assert!(sys.stats().io_retries >= 1, "the retries must be observable");
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 3);
    }

    #[test]
    fn exhausted_retries_degrade_and_recovery_restores_writes() {
        let mut sys = disk_sys(1);
        sys.set_retry_policy(RetryPolicy { attempts: 2, ..RetryPolicy::default() });
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(4)).unwrap();
        sys.commit(t).unwrap();
        // A transient budget at the attempt cap exhausts the retries.
        assert!(sys.backend_mut().arm_transient_io(64));
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(1)).unwrap();
        assert_eq!(sys.commit(u), Err(TxnError::ReadOnly));
        assert!(sys.is_degraded());
        assert_eq!(sys.committed_state(X), 4, "the rolled-back append left nothing durable");
        // Recovery on the healed device is the other exit from degraded mode.
        assert!(sys.heal_device());
        sys.crash_and_recover().unwrap();
        assert!(!sys.is_degraded());
        let v = sys.begin();
        sys.invoke(v, X, BankInv::Deposit(2)).unwrap();
        sys.commit(v).unwrap();
        assert_eq!(sys.committed_state(X), 6);
    }

    #[test]
    fn crash_trigger_mid_commit_power_cycles_and_recovers() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(9)).unwrap();
        sys.commit(t).unwrap();
        // Arm the device to lose power on its very next checked op: the
        // commit's append dies mid-flight and the system power-cycles.
        sys.backend_mut().disk_mut().arm_crash_at_op(0);
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(2)).unwrap();
        match sys.commit(u) {
            Err(TxnError::NotActive(id)) => assert_eq!(id, u),
            other => panic!("expected NotActive after a mid-commit power loss, got {other:?}"),
        }
        assert!(!sys.is_degraded(), "a power loss is survivable, not degrading");
        assert_eq!(sys.committed_state(X), 9);
        // The system is fully usable after the in-place recovery.
        let v = sys.begin();
        sys.invoke(v, X, BankInv::Withdraw(4)).unwrap();
        sys.commit(v).unwrap();
        assert_eq!(sys.committed_state(X), 5);
    }

    #[test]
    fn degraded_group_commit_refuses_the_whole_batch() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(8)).unwrap();
        sys.commit(t).unwrap();
        assert!(sys.backend_mut().set_device_full(true));
        let txns: Vec<TxnId> = (0..3)
            .map(|i| {
                let u = sys.begin();
                sys.invoke(u, X, BankInv::Deposit(i + 1)).unwrap();
                u
            })
            .collect();
        let results = sys.commit_group(&txns);
        assert!(results.iter().all(|r| r == &Err(TxnError::ReadOnly)));
        assert!(sys.is_degraded());
        assert_eq!(sys.committed_state(X), 8, "the scrubbed batch left nothing durable");
        assert_eq!(sys.journal().len(), 1);
    }

    #[test]
    fn admission_bound_sheds_the_batch_tail_atomically() {
        let mut sys = disk_sys(1);
        sys.set_admission_bound(2);
        let txns: Vec<TxnId> = (0..4)
            .map(|i| {
                let t = sys.begin();
                sys.invoke(t, X, BankInv::Deposit(i + 1)).unwrap();
                t
            })
            .collect();
        let results = sys.commit_group(&txns);
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[1], Ok(()));
        assert_eq!(results[2], Err(TxnError::Shed));
        assert_eq!(results[3], Err(TxnError::Shed));
        // The shed transactions left nothing anywhere: neither in the
        // committed state nor in the journal.
        assert_eq!(sys.committed_state(X), 1 + 2);
        assert_eq!(sys.journal().len(), 2);
        assert_eq!(sys.stats().sheds, 2);
        assert_eq!(sys.stats().committed, 2);
        // A shed is equieffective with a clean abort: recovery reconstructs
        // exactly the admitted prefix.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 3);
        assert_eq!(sys.journal().len(), 2);
    }

    #[test]
    fn sustained_stalls_degrade_then_heal_via_checkpoint() {
        let mut sys = disk_sys(1);
        sys.set_stall_detector(1, 2);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(5)).unwrap();
        sys.commit(t).unwrap();
        assert!(!sys.is_degraded(), "a healthy commit must not strike");
        // A gray device: every flush from now on stalls. The first stalled
        // commit is one strike (still acknowledged and durable); the second
        // consecutive strike trips the detector *after* acknowledging.
        assert!(sys.backend_mut().arm_fsync_stall(100, 8));
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(1)).unwrap();
        sys.commit(u).unwrap();
        assert!(!sys.is_degraded(), "hysteresis: one slow flush never flips the mode");
        let v = sys.begin();
        sys.invoke(v, X, BankInv::Deposit(2)).unwrap();
        sys.commit(v).unwrap();
        assert!(sys.is_degraded(), "two consecutive strikes must degrade");
        // Both stalled commits were acknowledged before the flip: they are
        // durable and visible.
        assert_eq!(sys.committed_state(X), 8);
        let w = sys.begin();
        assert_eq!(sys.commit(w), Err(TxnError::ReadOnly));
        // Healing clears the armed stall channel; the checkpoint proves the
        // device writable again and exits degraded mode.
        assert!(sys.heal_device());
        sys.checkpoint();
        assert!(!sys.is_degraded());
        let x2 = sys.begin();
        sys.invoke(x2, X, BankInv::Deposit(4)).unwrap();
        sys.commit(x2).unwrap();
        assert_eq!(sys.committed_state(X), 12);
        assert!(sys.stats().stall_ticks > 0, "the stall deltas must be observed");
        assert_eq!(sys.stats().mode_flips, 2);
        // The whole episode round-trips through real recovery.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 12);
    }

    #[test]
    fn disk_torn_flush_respects_the_tail_policy() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(5)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(1)).unwrap();
        sys.invoke(u, X, BankInv::Withdraw(2)).unwrap();
        sys.commit(u).unwrap();
        assert!(sys.tear_last_record(1), "multi-sector commit frame is tearable");
        assert!(matches!(sys.crash_and_recover(), Err(RedoError::TornRecord { .. })));
        sys.crash_and_recover_with(TornPolicy::DiscardTail).unwrap();
        assert_eq!(sys.committed_state(X), 5);
        assert_eq!(sys.journal().len(), 1);
    }

    #[test]
    fn prepare_holds_locks_and_resolve_commits() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.prepare(t, 7).unwrap();
        assert_eq!(sys.in_doubt(), vec![7]);
        // The preparee is still active and still holds its locks: a
        // conflicting withdrawal blocks on it.
        let u = sys.begin();
        assert!(matches!(sys.invoke(u, X, BankInv::Withdraw(1)), Err(TxnError::Blocked { .. })));
        sys.abort(u).unwrap();
        // Checkpoints refuse while a prepare is in doubt.
        assert_eq!(sys.checkpoint(), 0);
        sys.resolve(7, true).unwrap();
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.committed_state(X), 10);
        assert_eq!(sys.journal().len(), 1);
        assert_eq!(sys.stats().prepares, 1);
        assert_eq!(sys.stats().decides, 1);
        // Resolving an unknown gtid is an idempotent ack.
        sys.resolve(7, true).unwrap();
        assert_eq!(sys.journal().len(), 1);
    }

    #[test]
    fn resolve_abort_releases_locks_and_journals_nothing_visible() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.prepare(t, 3).unwrap();
        sys.resolve(3, false).unwrap();
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.committed_state(X), 0);
        assert_eq!(sys.journal().len(), 0, "aborted prepare never becomes a commit record");
        // The system moves on: a fresh transaction takes the lock and
        // commits normally.
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(4)).unwrap();
        sys.commit(u).unwrap();
        assert_eq!(sys.committed_state(X), 4);
    }

    #[test]
    fn in_doubt_prepare_survives_crash_as_a_lock_holding_ghost() {
        let mut sys = disk_sys(2);
        let y = ObjectId(1);
        let a = sys.begin();
        sys.invoke(a, y, BankInv::Deposit(100)).unwrap();
        sys.commit(a).unwrap();
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.prepare(t, 42).unwrap();
        // Crash: the prepare is durable, the decision never was.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.in_doubt(), vec![42], "prepare must survive the crash in doubt");
        assert_eq!(sys.in_doubt_record(42).unwrap().ops.len(), 1);
        // The ghost re-holds the lock; the prepared deposit is not visible.
        assert_eq!(sys.committed_state(X), 0);
        let u = sys.begin();
        assert!(matches!(sys.invoke(u, X, BankInv::Withdraw(1)), Err(TxnError::Blocked { .. })));
        sys.abort(u).unwrap();
        assert_eq!(sys.stats().in_doubt, 1);
        // A second crash keeps it in doubt — doubt is stable.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.in_doubt(), vec![42]);
        // The coordinator's durable decision arrives: commit.
        sys.resolve_in_doubt(42, true).unwrap();
        assert_eq!(sys.committed_state(X), 10);
        assert_eq!(sys.committed_state(y), 100);
        assert_eq!(sys.stats().resolved, 1);
        // And the outcome is itself durable.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 10);
        assert!(sys.in_doubt().is_empty());
    }

    #[test]
    fn in_doubt_presumed_abort_after_crash() {
        let mut sys = disk_sys(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.prepare(t, 9).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.in_doubt(), vec![9]);
        // No durable coordinator decision → presume abort.
        sys.resolve_in_doubt(9, false).unwrap();
        assert_eq!(sys.committed_state(X), 0);
        assert!(sys.in_doubt().is_empty());
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 0, "the abort outcome is durable");
        // The log stays live for ordinary work afterwards.
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(6)).unwrap();
        sys.commit(u).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 6);
    }

    #[test]
    fn snapshot_restore_round_trips_in_doubt_state() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(5)).unwrap();
        sys.prepare(t, 1).unwrap();
        let snap = sys.snapshot();
        sys.resolve(1, true).unwrap();
        assert_eq!(sys.committed_state(X), 5);
        sys.restore(&snap);
        assert_eq!(sys.in_doubt(), vec![1], "restore rewinds to the in-doubt window");
        assert_eq!(sys.committed_state(X), 0);
        sys.resolve(1, false).unwrap();
        assert_eq!(sys.committed_state(X), 0);
    }

    #[test]
    fn crash_trigger_mid_prepare_is_a_no_vote() {
        let mut sys = disk_sys(1);
        let a = sys.begin();
        sys.invoke(a, X, BankInv::Deposit(3)).unwrap();
        sys.commit(a).unwrap();
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        assert!(sys.backend_mut().arm_crash_at_op(0));
        // The device loses power on the prepare's first checked op: the
        // participant recovers on the spot and reports no-vote.
        assert!(matches!(sys.prepare(t, 5), Err(TxnError::NotActive(_))));
        assert_eq!(sys.committed_state(X), 3);
        // Whether or not the prepare reached stable storage, a coordinator
        // abort (presumed or explicit) leaves the participant clean.
        for g in sys.in_doubt() {
            sys.resolve_in_doubt(g, false).unwrap();
        }
        assert!(sys.in_doubt().is_empty());
        assert_eq!(sys.committed_state(X), 3);
    }
}
