//! Crash recovery (simulated) — the paper's deferred future work (§1).
//!
//! The paper analyses *abort* recovery and explicitly leaves crash recovery
//! for later, noting that crash mechanisms are usually similar but must cope
//! with losing volatile state. This module provides that simulation so the
//! claim can be exercised: a redo journal on simulated stable storage, a
//! [`DurableSystem`] wrapper that journals each transaction's operations at
//! commit, and a `crash()` that discards all volatile state (active
//! transactions, lock table, engine caches) and rebuilds from the journal.
//!
//! Soundness note: the journal holds each committed transaction's operations
//! grouped by transaction, **in commit order**. Dynamic atomicity guarantees
//! the committed transactions are serializable in *every* order consistent
//! with `precedes`, and the commit order is such an order, so redo-replay is
//! legal whenever the underlying pairing is correct (Theorems 9/10) — the
//! recovery verifier checks each replayed response against the journal and
//! surfaces any divergence.

use ccr_core::adt::{Adt, Op};
use ccr_core::conflict::Conflict;
use ccr_core::ids::{ObjectId, TxnId};

use crate::engine::RecoveryEngine;
use crate::error::TxnError;
use crate::system::TxnSystem;

/// Simulated stable storage: the redo journal survives crashes.
pub struct Journal<A: Adt> {
    /// One record per committed transaction, in commit order.
    records: Vec<JournalRecord<A>>,
}

struct JournalRecord<A: Adt> {
    /// Record header written atomically at commit: the number of operations
    /// the record is supposed to carry. A *torn write* (crash mid-flush)
    /// leaves `ops.len() < op_count`, which recovery detects ARIES-style by
    /// comparing the body against the header.
    op_count: usize,
    ops: Vec<(ObjectId, Op<A>)>,
}

impl<A: Adt> Default for Journal<A> {
    fn default() -> Self {
        Journal { records: Vec::new() }
    }
}

impl<A: Adt> Journal<A> {
    /// Number of committed transactions journaled.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The operations of each record, in commit order — the input to the
    /// simulator's shadow-replay oracle.
    pub fn record_ops(&self) -> impl Iterator<Item = &[(ObjectId, Op<A>)]> {
        self.records.iter().map(|r| r.ops.as_slice())
    }

    /// The index of the first torn record (body shorter than its header), if
    /// any.
    pub fn torn_record(&self) -> Option<usize> {
        self.records.iter().position(|r| r.ops.len() != r.op_count)
    }
}

/// Why recovery failed (a diagnostic, not an expected runtime condition —
/// under a Theorem-9/10-correct pairing and an intact journal redo always
/// succeeds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedoError {
    /// A journaled operation produced a different response on replay.
    ResponseDiverged {
        /// Journal record index.
        record: usize,
        /// Operation index within the record.
        op: usize,
    },
    /// A journaled operation was refused by the rebuilt system.
    ReplayRefused {
        /// Journal record index.
        record: usize,
    },
    /// A record's body is shorter than its header promised: the crash tore
    /// the final journal flush. Surfaced under [`TornPolicy::Strict`].
    TornRecord {
        /// Journal record index.
        record: usize,
        /// Operations the header promised.
        expected: usize,
        /// Operations actually present.
        found: usize,
    },
}

/// How recovery treats a torn final journal record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TornPolicy {
    /// Refuse to recover: surface [`RedoError::TornRecord`]. The default —
    /// a torn record must never be replayed as if complete.
    #[default]
    Strict,
    /// Discard the torn record and everything after it (the transaction's
    /// commit never fully reached stable storage, so dropping it is
    /// equivalent to the transaction having aborted), then recover.
    DiscardTail,
}

/// A [`TxnSystem`] with write-ahead-style redo journaling and crash
/// simulation.
pub struct DurableSystem<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> {
    sys: TxnSystem<A, E, C>,
    journal: Journal<A>,
    make: Box<dyn Fn() -> TxnSystem<A, E, C> + Send>,
}

impl<A, E, C> DurableSystem<A, E, C>
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A> + Clone,
{
    /// Create over a fresh system with `n` objects of `adt`.
    pub fn new(adt: A, n_objects: u32, conflict: C) -> Self {
        let make = {
            let adt = adt.clone();
            let conflict = conflict.clone();
            Box::new(move || TxnSystem::<A, E, C>::new(adt.clone(), n_objects, conflict.clone()))
        };
        DurableSystem { sys: make(), journal: Journal::default(), make }
    }

    /// Begin a transaction (volatile until commit).
    pub fn begin(&mut self) -> TxnId {
        self.sys.begin()
    }

    /// Execute an operation (volatile until commit).
    pub fn invoke(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        inv: A::Invocation,
    ) -> Result<A::Response, TxnError> {
        self.sys.invoke(txn, obj, inv)
    }

    /// Commit: journal the transaction's operations (force to stable
    /// storage, in commit order), then commit in the volatile system.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), TxnError> {
        let ops = self.sys.trace().project_txn(txn).opseq();
        self.sys.commit(txn)?;
        self.journal.records.push(JournalRecord { op_count: ops.len(), ops });
        Ok(())
    }

    /// Abort (nothing reaches the journal).
    pub fn abort(&mut self, txn: TxnId) -> Result<(), TxnError> {
        self.sys.abort(txn)
    }

    /// Simulate a crash: every piece of volatile state is lost — active
    /// transactions, their effects, the lock table — then rebuild by redoing
    /// the journal. Each replayed response is verified against the journal.
    /// Equivalent to [`crash_and_recover_with`](Self::crash_and_recover_with)
    /// under [`TornPolicy::Strict`].
    pub fn crash_and_recover(&mut self) -> Result<(), RedoError> {
        self.crash_and_recover_with(TornPolicy::Strict)
    }

    /// Crash and recover under an explicit [`TornPolicy`]. On `Err` the
    /// pre-crash volatile system is left in place untouched (recovery is
    /// all-or-nothing), so callers can inspect it — the fault simulator
    /// relies on this to diagnose oracle failures.
    pub fn crash_and_recover_with(&mut self, policy: TornPolicy) -> Result<(), RedoError> {
        if let Some(ri) = self.journal.torn_record() {
            match policy {
                TornPolicy::Strict => {
                    let r = &self.journal.records[ri];
                    return Err(RedoError::TornRecord {
                        record: ri,
                        expected: r.op_count,
                        found: r.ops.len(),
                    });
                }
                TornPolicy::DiscardTail => self.journal.records.truncate(ri),
            }
        }
        // The tracer and the transaction-id allocator model durable
        // monitoring state: carry them across the rebuild so post-recovery
        // ids never collide with pre-crash ones and counters/histograms
        // survive. The replay below runs against the fresh system's own
        // throwaway tracer (recovery must not double-count the replayed
        // commits), which is discarded on success.
        let pre_next = self.sys.next_txn_id();
        let replayed = self.journal.records.len();
        let mut fresh = (self.make)();
        fresh.set_record_trace(true);
        fresh.obs_mut().set_record_events(false);
        for (ri, rec) in self.journal.records.iter().enumerate() {
            let t = fresh.begin();
            for (oi, (obj, op)) in rec.ops.iter().enumerate() {
                match fresh.invoke(t, *obj, op.inv.clone()) {
                    Ok(resp) if resp == op.resp => {}
                    Ok(_) => return Err(RedoError::ResponseDiverged { record: ri, op: oi }),
                    Err(_) => return Err(RedoError::ReplayRefused { record: ri }),
                }
            }
            fresh.commit(t).map_err(|_| RedoError::ReplayRefused { record: ri })?;
        }
        // Replay succeeded: move the surviving tracer over and record the
        // recovery on it (on `Err` above the pre-crash system — tracer
        // included — is left untouched, preserving all-or-nothing recovery).
        let mut obs = self.sys.take_obs();
        obs.on_recovery(replayed);
        fresh.set_obs(obs);
        fresh.reserve_txn_ids(pre_next);
        self.sys = fresh;
        Ok(())
    }

    /// Inject a torn write: drop the last `drop_ops` operations from the
    /// final journal record's body, leaving its header intact — as if the
    /// crash interrupted the record's flush to stable storage. Returns
    /// `false` when there is no record with enough operations to tear (the
    /// header must still promise more than the body delivers).
    pub fn tear_last_record(&mut self, drop_ops: usize) -> bool {
        let Some(rec) = self.journal.records.last_mut() else {
            return false;
        };
        if drop_ops == 0 || rec.ops.is_empty() {
            return false;
        }
        let keep = rec.ops.len().saturating_sub(drop_ops);
        rec.ops.truncate(keep);
        let record = self.journal.records.len() - 1;
        self.sys.obs_mut().on_torn(record);
        true
    }

    /// The committed state of `obj`.
    pub fn committed_state(&mut self, obj: ObjectId) -> A::State {
        self.sys.committed_state(obj)
    }

    /// The journal (stable storage).
    pub fn journal(&self) -> &Journal<A> {
        &self.journal
    }

    /// Access the volatile system (e.g. for trace inspection).
    pub fn system(&self) -> &TxnSystem<A, E, C> {
        &self.sys
    }

    /// Mutable access to the volatile system (scheduler loops and fault
    /// injection need `abort_with`, `find_deadlock` etc.).
    pub fn system_mut(&mut self) -> &mut TxnSystem<A, E, C> {
        &mut self.sys
    }

    /// Execution counters (carried across crashes).
    pub fn stats(&self) -> &crate::system::SystemStats {
        self.sys.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::UipEngine;
    use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv};

    const X: ObjectId = ObjectId::SOLE;

    type Durable = DurableSystem<
        BankAccount,
        UipEngine<BankAccount>,
        ccr_core::conflict::FnConflict<BankAccount>,
    >;

    #[test]
    fn committed_state_survives_a_crash() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.invoke(t, y, BankInv::Deposit(5)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(4)).unwrap();
        sys.commit(u).unwrap();

        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 6);
        assert_eq!(sys.committed_state(y), 5);
        assert_eq!(sys.journal().len(), 2);
    }

    #[test]
    fn active_transactions_vanish_in_a_crash() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.commit(t).unwrap();
        // An active (uncommitted) withdrawal...
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(9)).unwrap();
        // ...is lost by the crash: only the committed deposit survives.
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 10);
        // The old handle is dead in the rebuilt system.
        assert!(matches!(sys.invoke(u, X, BankInv::Balance), Err(TxnError::NotActive(_))));
    }

    #[test]
    fn system_is_usable_after_recovery() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(3)).unwrap();
        sys.commit(t).unwrap();
        sys.crash_and_recover().unwrap();
        let u = sys.begin();
        assert_eq!(sys.invoke(u, X, BankInv::Balance).unwrap(), ccr_adt::bank::BankResp::Val(3));
        sys.commit(u).unwrap();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.committed_state(X), 3);
        assert_eq!(sys.journal().len(), 2);
    }

    #[test]
    fn torn_record_detected_strictly_then_discardable() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(10)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Deposit(1)).unwrap();
        sys.invoke(u, X, BankInv::Withdraw(2)).unwrap();
        sys.commit(u).unwrap();

        assert!(sys.tear_last_record(1));
        // Strict recovery refuses the torn record — never silent corruption.
        assert_eq!(
            sys.crash_and_recover(),
            Err(RedoError::TornRecord { record: 1, expected: 2, found: 1 })
        );
        // DiscardTail drops the torn commit entirely, as if `u` aborted.
        sys.crash_and_recover_with(TornPolicy::DiscardTail).unwrap();
        assert_eq!(sys.committed_state(X), 10);
        assert_eq!(sys.journal().len(), 1);
        assert_eq!(sys.stats().torn_crashes, 1);
    }

    #[test]
    fn counters_and_txn_ids_survive_crashes() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(3)).unwrap();
        sys.commit(t).unwrap();
        let pre_next = sys.system().next_txn_id();
        sys.crash_and_recover().unwrap();
        assert_eq!(sys.stats().crashes, 1);
        assert_eq!(sys.stats().committed, 1, "replay must not double-count");
        // Post-recovery ids never collide with pre-crash ones.
        assert!(sys.system().next_txn_id() >= pre_next);
        let u = sys.begin();
        assert!(u.0 >= pre_next);
        sys.abort(u).unwrap();
    }

    #[test]
    fn repeated_crashes_are_idempotent() {
        let mut sys: Durable = DurableSystem::new(BankAccount::default(), 1, bank_nrbc());
        for i in 1..=4u64 {
            let t = sys.begin();
            sys.invoke(t, X, BankInv::Deposit(i)).unwrap();
            sys.commit(t).unwrap();
            sys.crash_and_recover().unwrap();
            sys.crash_and_recover().unwrap();
            assert_eq!(sys.committed_state(X), (1..=i).sum::<u64>());
        }
    }
}
