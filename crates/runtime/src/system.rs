//! The transactional object system: conflict-based locking over pluggable
//! recovery engines.
//!
//! `TxnSystem` is the executable counterpart of the paper's
//! `I(X, Spec, View, Conflict)` automaton (§4), generalised to many objects
//! with atomic commitment across them:
//!
//! * **locks are implicit**: the operations a transaction has executed at an
//!   object are its locks; they are released when it commits or aborts;
//! * an invocation executes only if its operation (invocation *plus* chosen
//!   response) conflicts with no operation held by another active
//!   transaction — otherwise the caller gets [`TxnError::Blocked`] with the
//!   blockers listed (wait-for edges for deadlock detection live here);
//! * responses are chosen against the recovery engine's view, so the same
//!   system runs update-in-place or deferred-update by swapping the engine.
//!
//! Every event is recorded in a [`History`], so entire executions can be
//! checked dynamic atomic by `ccr-core` — the strongest end-to-end invariant
//! in the test suite.

use std::collections::{BTreeMap, BTreeSet};

use ccr_core::adt::{Adt, Op};
use ccr_core::conflict::Conflict;
use ccr_core::history::{Event, History};
use ccr_core::ids::{ObjectId, TxnId};
use ccr_obs::{AbortCause, Phase, Tracer, WaitGraph};

use crate::engine::RecoveryEngine;
use crate::error::{AbortReason, RecoveryError, TxnError};

pub use ccr_obs::SystemStats;

/// What to do when a requested operation conflicts with held operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// Return [`TxnError::Blocked`]; the caller waits for a holder to
    /// complete (deadlocks are possible and handled by detection).
    #[default]
    Block,
    /// Wound-wait (Rosenkrantz et al.): an **older** requester wounds
    /// (aborts) younger conflicting holders and proceeds; a younger
    /// requester waits. Waits only ever point from younger to older
    /// transactions, so the wait-for graph is acyclic — deadlock-free by
    /// construction (asserted in tests).
    WoundWait,
    /// No-wait: a conflicting requester is aborted immediately (it never
    /// waits). Trivially deadlock-free; trades waiting for retry work.
    NoWait,
}

impl ConflictPolicy {
    /// Short lowercase label (tracer/exporter metadata).
    pub fn label(self) -> &'static str {
        match self {
            ConflictPolicy::Block => "block",
            ConflictPolicy::WoundWait => "wound-wait",
            ConflictPolicy::NoWait => "no-wait",
        }
    }
}

/// Render an operation's kind for the observed-conflict matrix: invocation
/// constructor `->` response constructor — the granularity of the paper's
/// per-kind conflict tables (e.g. `Withdraw->Ok` and `Withdraw->No` are
/// distinct operations, distinguished by their response).
fn op_kind_label<A: Adt>(op: &Op<A>) -> String {
    fn ctor(s: &str) -> &str {
        s.split(['(', ' ', '{']).next().unwrap_or(s)
    }
    let inv = format!("{:?}", op.inv);
    let resp = format!("{:?}", op.resp);
    format!("{}->{}", ctor(&inv), ctor(&resp))
}

/// A transactional system over objects of a single ADT type `A`, one engine
/// `E` per object, and a shared conflict relation `C`.
///
/// # Examples
///
/// ```
/// use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv, BankResp};
/// use ccr_core::ids::ObjectId;
/// use ccr_runtime::{TxnSystem, UipEngine};
///
/// let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
///     TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
/// let a = sys.begin();
/// let b = sys.begin();
/// sys.invoke(a, ObjectId::SOLE, BankInv::Deposit(5)).unwrap();
/// // Deposits commute: b proceeds while a's deposit is uncommitted.
/// assert_eq!(sys.invoke(b, ObjectId::SOLE, BankInv::Deposit(3)).unwrap(), BankResp::Ok);
/// sys.commit(a).unwrap();
/// sys.commit(b).unwrap();
/// assert_eq!(sys.committed_state(ObjectId::SOLE), 8);
/// ```
pub struct TxnSystem<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> {
    conflict: C,
    objects: BTreeMap<ObjectId, ObjectRt<A, E>>,
    active: BTreeSet<TxnId>,
    next_txn: u32,
    /// (waiter, holder) wait-for edges from the last `Blocked` results.
    waits: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// Transactions aborted by the wound-wait policy whose owners have not
    /// yet observed the abort.
    wounded: BTreeSet<TxnId>,
    policy: ConflictPolicy,
    trace: History<A>,
    /// Structured tracer; the stats counters are a projection of its events.
    obs: Tracer,
    record_trace: bool,
}

struct ObjectRt<A: Adt, E> {
    engine: E,
    /// Implicit locks: operations executed by each active transaction.
    held: BTreeMap<TxnId, Vec<Op<A>>>,
    adt: A,
}

impl<A: Adt, E: Clone> Clone for ObjectRt<A, E> {
    fn clone(&self) -> Self {
        ObjectRt { engine: self.engine.clone(), held: self.held.clone(), adt: self.adt.clone() }
    }
}

// Snapshot hook for the model checker: cloning a `TxnSystem` duplicates
// every object's engine, the lock table, the wait graph and the tracer, so
// an explorer can fork execution at any decision point. A manual impl
// (rather than `derive`) keeps the bounds honest: `derive` would demand
// `A: Clone` on the *derived* impl twice over and, more importantly, hide
// that `E` and `C` must themselves be snapshot-able.
impl<A: Adt, E: RecoveryEngine<A> + Clone, C: Conflict<A> + Clone> Clone for TxnSystem<A, E, C> {
    fn clone(&self) -> Self {
        TxnSystem {
            conflict: self.conflict.clone(),
            objects: self.objects.clone(),
            active: self.active.clone(),
            next_txn: self.next_txn,
            waits: self.waits.clone(),
            wounded: self.wounded.clone(),
            policy: self.policy,
            trace: self.trace.clone(),
            obs: self.obs.clone(),
            record_trace: self.record_trace,
        }
    }
}

impl<A: Adt, E: RecoveryEngine<A>, C: Conflict<A>> TxnSystem<A, E, C> {
    /// Create a system with objects `0..n`, all with specification `adt`.
    pub fn new(adt: A, n_objects: u32, conflict: C) -> Self {
        let mut objects = BTreeMap::new();
        for i in 0..n_objects {
            let obj = ObjectId(i);
            objects.insert(
                obj,
                ObjectRt {
                    engine: E::new(adt.clone(), obj),
                    held: BTreeMap::new(),
                    adt: adt.clone(),
                },
            );
        }
        TxnSystem {
            obs: Self::init_obs(&conflict),
            conflict,
            objects,
            active: BTreeSet::new(),
            next_txn: 0,
            waits: BTreeMap::new(),
            wounded: BTreeSet::new(),
            policy: ConflictPolicy::Block,
            trace: History::new(),
            record_trace: true,
        }
    }

    /// Create a system with explicitly configured objects — use when
    /// objects carry different specifications (e.g. different sides of a
    /// [`SumAdt`](https://docs.rs/ccr-adt) sum, or different capacities).
    pub fn new_with(objects: Vec<(ObjectId, A)>, conflict: C) -> Self {
        let objects = objects
            .into_iter()
            .map(|(obj, adt)| {
                (obj, ObjectRt { engine: E::new(adt.clone(), obj), held: BTreeMap::new(), adt })
            })
            .collect();
        TxnSystem {
            obs: Self::init_obs(&conflict),
            conflict,
            objects,
            active: BTreeSet::new(),
            next_txn: 0,
            waits: BTreeMap::new(),
            wounded: BTreeSet::new(),
            policy: ConflictPolicy::Block,
            trace: History::new(),
            record_trace: true,
        }
    }

    fn init_obs(conflict: &C) -> Tracer {
        let mut obs = Tracer::new();
        obs.set_label("conflict", conflict.name());
        obs.set_label("policy", ConflictPolicy::Block.label());
        obs
    }

    /// Select the conflict policy (default: [`ConflictPolicy::Block`]).
    pub fn with_policy(mut self, policy: ConflictPolicy) -> Self {
        self.set_policy(policy);
        self
    }

    /// Set the conflict policy in place (for systems behind wrappers that
    /// obstruct the builder form, e.g. [`crate::crash::DurableSystem`]).
    pub fn set_policy(&mut self, policy: ConflictPolicy) {
        self.policy = policy;
        self.obs.set_label("policy", policy.label());
    }

    /// Disable history recording (for long benchmark runs). Structured
    /// tracer events are controlled separately via
    /// [`obs_mut`](Self::obs_mut) — the atomicity oracle needs the history
    /// even when nobody wants a rendered trace, and vice versa.
    pub fn set_record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Begin a new transaction.
    pub fn begin(&mut self) -> TxnId {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        self.active.insert(t);
        self.obs.on_begin(t);
        t
    }

    /// Execute one operation of `txn` at `obj`.
    ///
    /// Chooses a legal response from the engine's view; if several are legal
    /// (non-deterministic specifications) it prefers one that does not
    /// conflict with held operations. Returns `Blocked` (with wait-for edges
    /// registered) when every legal response conflicts.
    pub fn invoke(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        inv: A::Invocation,
    ) -> Result<A::Response, TxnError> {
        if self.take_wound(txn)? {
            return Err(TxnError::Aborted(AbortReason::ConflictAbort));
        }
        if !self.active.contains(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        let conflict = &self.conflict;
        let o = self.objects.get_mut(&obj).ok_or(TxnError::NoSuchObject(obj))?;
        if o.engine.is_doomed(txn) {
            self.abort_inner(txn, AbortCause::Validation);
            return Err(TxnError::Aborted(AbortReason::Validation));
        }
        let view = o.engine.view_state(txn);
        let candidates = o.adt.step(&view, &inv);
        if candidates.is_empty() {
            return Err(TxnError::NoLegalResponse);
        }
        // The whole conflict check + execute is the lock-acquire phase: an
        // operation's implicit lock is granted exactly when a response
        // executes conflict-free (blocked attempts are failed acquisitions).
        let recording = self.obs.record_events();
        let lock_span = self.obs.span_begin(Phase::LockAcquire);
        let mut blockers: BTreeSet<TxnId> = BTreeSet::new();
        // (requested, held) op-kind pairs in conflict, rendered only while
        // events are recorded, attributed to the conflict matrix when every
        // candidate response conflicts.
        let mut pairs: Vec<(String, String)> = Vec::new();
        for (resp, post) in candidates {
            let op = Op::new(inv.clone(), resp.clone());
            let mut conflicting = Vec::new();
            for (&holder, ops) in &o.held {
                if holder == txn {
                    continue;
                }
                let mut hit = false;
                for held in ops {
                    if conflict.conflicts(&op, held) {
                        hit = true;
                        if !recording {
                            break;
                        }
                        pairs.push((op_kind_label::<A>(&op), op_kind_label::<A>(held)));
                    }
                }
                if hit {
                    conflicting.push(holder);
                }
            }
            if conflicting.is_empty() {
                // Execute.
                let rendered = self
                    .obs
                    .record_events()
                    .then(|| (format!("{:?}", op.inv), format!("{resp:?}")));
                o.engine.record(txn, op.clone(), post);
                o.held.entry(txn).or_default().push(op.clone());
                self.waits.remove(&txn);
                self.obs.span_end(lock_span);
                self.obs.on_op(txn, obj, || rendered.expect("rendered when recording"));
                if self.record_trace {
                    self.trace
                        .push(Event::Invoke { txn, obj, inv: op.inv })
                        .expect("well-formed invoke");
                    self.trace
                        .push(Event::Respond { txn, obj, resp: resp.clone() })
                        .expect("well-formed respond");
                }
                return Ok(resp);
            }
            blockers.extend(conflicting);
        }
        // Every legal response conflicted: attribute the exercised pairs
        // before the policy decides who pays for them.
        let rendered_pairs = recording.then_some(pairs);
        self.obs.on_conflict(txn, || rendered_pairs.expect("rendered when recording"));
        self.obs.span_end(lock_span);
        if self.policy == ConflictPolicy::NoWait {
            self.abort_inner(txn, AbortCause::NoWaitConflict);
            return Err(TxnError::Aborted(AbortReason::ConflictAbort));
        }
        if self.policy == ConflictPolicy::WoundWait && blockers.iter().all(|b| *b > txn) {
            // Older requester: wound every younger conflicting holder, then
            // retry the invocation against the cleaned lock table.
            self.obs.on_conflict_wound(txn);
            let victims: Vec<TxnId> = blockers.into_iter().collect();
            for v in victims {
                let graph = self.obs.record_events().then(|| self.graph_snapshot());
                self.obs.on_wound(v, txn, || graph.unwrap_or_default());
                self.abort_inner(v, AbortCause::Wounded);
                self.wounded.insert(v);
            }
            return self.invoke(txn, obj, inv);
        }
        self.waits.insert(txn, blockers.clone());
        let snap = self.obs.record_events().then(|| {
            (format!("{inv:?}"), blockers.iter().copied().collect(), self.graph_snapshot())
        });
        self.obs.on_block(txn, obj, || snap.expect("rendered when recording"));
        Err(TxnError::Blocked { on: blockers.into_iter().collect() })
    }

    /// Snapshot the wait-for graph (for block/wound events).
    fn graph_snapshot(&self) -> WaitGraph {
        self.waits.iter().map(|(w, hs)| (*w, hs.iter().copied().collect())).collect()
    }

    /// If `txn` was wounded, consume the marker. Returns `Ok(true)` when the
    /// caller should observe the abort.
    fn take_wound(&mut self, txn: TxnId) -> Result<bool, TxnError> {
        Ok(self.wounded.remove(&txn))
    }

    /// Commit `txn` at all objects it touched (atomic commitment: validate
    /// everywhere, then apply everywhere). On validation failure the
    /// transaction is aborted instead and `Aborted(Validation)` is returned.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), TxnError> {
        if self.take_wound(txn)? {
            return Err(TxnError::Aborted(AbortReason::ConflictAbort));
        }
        if !self.active.contains(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        let touched: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, o)| o.held.contains_key(&txn))
            .map(|(&obj, _)| obj)
            .collect();
        // Phase 1: validate.
        let validate_span = self.obs.span_begin(Phase::Validate);
        for &obj in &touched {
            let o = self.objects.get_mut(&obj).expect("touched object exists");
            if o.engine.prepare_commit(txn).is_err() {
                self.obs.span_end(validate_span);
                self.abort_inner(txn, AbortCause::Validation);
                return Err(TxnError::Aborted(AbortReason::Validation));
            }
        }
        // Phase 2: apply. The span closes after the commit event so the
        // validate+apply window and the journal window tile the commit
        // total exactly (the profiler's tick-coverage check leans on this).
        for &obj in &touched {
            let o = self.objects.get_mut(&obj).expect("touched object exists");
            o.engine.commit(txn);
            o.held.remove(&txn);
            if self.record_trace {
                self.trace.push(Event::Commit { txn, obj }).expect("well-formed commit");
            }
        }
        self.active.remove(&txn);
        self.waits.remove(&txn);
        self.obs.on_commit(txn);
        self.obs.span_end(validate_span);
        Ok(())
    }

    /// Abort `txn` (application-requested).
    pub fn abort(&mut self, txn: TxnId) -> Result<(), TxnError> {
        if self.take_wound(txn)? {
            return Ok(()); // already aborted by the policy
        }
        if !self.active.contains(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        self.abort_inner(txn, AbortCause::Requested);
        Ok(())
    }

    /// Abort with an explicit reason (used by schedulers for deadlock
    /// victims and by fault injection).
    pub fn abort_with(&mut self, txn: TxnId, reason: AbortReason) -> Result<(), TxnError> {
        if !self.active.contains(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        // `ConflictAbort` through this external entry point is a driver or
        // fault-injector decision, not the no-wait policy path — the tracer
        // distinguishes the two so the `conflict_aborts` counter keeps its
        // historical meaning (requesters aborted *by the policy*).
        let cause = match reason {
            AbortReason::Deadlock => AbortCause::Deadlock,
            AbortReason::Validation => AbortCause::Validation,
            AbortReason::Requested => AbortCause::Requested,
            AbortReason::ConflictAbort => AbortCause::External,
            AbortReason::Deadline => AbortCause::Deadline,
        };
        self.abort_inner(txn, cause);
        Ok(())
    }

    fn abort_inner(&mut self, txn: TxnId, cause: AbortCause) {
        let touched: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, o)| o.held.contains_key(&txn))
            .map(|(&obj, _)| obj)
            .collect();
        for &obj in &touched {
            let o = self.objects.get_mut(&obj).expect("touched object exists");
            if let Err(RecoveryError::ReplayFailed { .. }) = o.engine.abort(txn) {
                self.obs.on_replay_failure(txn, obj);
            }
            o.held.remove(&txn);
            if self.record_trace {
                self.trace.push(Event::Abort { txn, obj }).expect("well-formed abort");
            }
        }
        self.active.remove(&txn);
        self.waits.remove(&txn);
        self.obs.on_abort(txn, cause);
    }

    /// Detect a deadlock reachable from `start` in the wait-for graph.
    /// Returns the cycle's transactions if one exists.
    pub fn find_deadlock(&self, start: TxnId) -> Option<Vec<TxnId>> {
        // DFS from `start`; a path returning to a node on the stack is a
        // cycle. Waits only exist for blocked transactions, so graphs are
        // tiny.
        fn dfs(
            waits: &BTreeMap<TxnId, BTreeSet<TxnId>>,
            node: TxnId,
            stack: &mut Vec<TxnId>,
            visited: &mut BTreeSet<TxnId>,
        ) -> Option<Vec<TxnId>> {
            if let Some(pos) = stack.iter().position(|t| *t == node) {
                return Some(stack[pos..].to_vec());
            }
            if !visited.insert(node) {
                return None;
            }
            stack.push(node);
            if let Some(next) = waits.get(&node) {
                for &n in next {
                    if let Some(c) = dfs(waits, n, stack, visited) {
                        return Some(c);
                    }
                }
            }
            stack.pop();
            None
        }
        let mut stack = Vec::new();
        let mut visited = BTreeSet::new();
        dfs(&self.waits, start, &mut stack, &mut visited)
    }

    /// Clear `txn`'s wait-for edges (caller stopped waiting).
    pub fn clear_wait(&mut self, txn: TxnId) {
        self.waits.remove(&txn);
    }

    /// The serial state `txn` currently observes at `obj` (the engine's
    /// realisation of the paper's `View` function) — for inspection and the
    /// cross-crate view-equivalence tests.
    pub fn view_state(&mut self, txn: TxnId, obj: ObjectId) -> Option<A::State> {
        Some(self.objects.get_mut(&obj)?.engine.view_state(txn))
    }

    /// The committed state of `obj`.
    pub fn committed_state(&mut self, obj: ObjectId) -> A::State {
        self.objects
            .get_mut(&obj)
            .unwrap_or_else(|| panic!("no such object {obj}"))
            .engine
            .committed_state()
    }

    /// Reset `obj`'s engine so `state` is its committed base — crash
    /// recovery seeds freshly built systems from a checkpoint image this way
    /// before replaying the log suffix. Only valid on a system with no
    /// in-flight transactions at `obj`.
    pub fn restore_committed(&mut self, obj: ObjectId, state: A::State) {
        self.objects
            .get_mut(&obj)
            .unwrap_or_else(|| panic!("no such object {obj}"))
            .engine
            .restore(state);
    }

    /// Currently active transactions.
    pub fn active(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.active.iter().copied()
    }

    /// The recorded event history.
    pub fn trace(&self) -> &History<A> {
        &self.trace
    }

    /// Execution counters (a projection of the tracer's event stream).
    pub fn stats(&self) -> &SystemStats {
        self.obs.stats()
    }

    /// The structured tracer: events, histograms, labels and counters.
    pub fn obs(&self) -> &Tracer {
        &self.obs
    }

    /// Mutable tracer access (fault injection emits events through this; the
    /// trace subcommand toggles event recording and wall stamping).
    pub fn obs_mut(&mut self) -> &mut Tracer {
        &mut self.obs
    }

    /// Take the tracer out, leaving a fresh one — used by crash recovery to
    /// carry the observability state across the rebuild (the tracer models a
    /// monitoring store that survives the crash, unlike volatile transaction
    /// state).
    pub fn take_obs(&mut self) -> Tracer {
        std::mem::take(&mut self.obs)
    }

    /// Install a tracer wholesale (the other half of
    /// [`take_obs`](Self::take_obs)).
    pub fn set_obs(&mut self, obs: Tracer) {
        self.obs = obs;
    }

    /// The id the next [`begin`](Self::begin) will allocate.
    pub fn next_txn_id(&self) -> u32 {
        self.next_txn
    }

    /// Raise the transaction-id allocator to at least `floor`, so ids stay
    /// globally unique across a crash/rebuild (replayed journal records must
    /// not collide with pre-crash ids recorded in histories).
    pub fn reserve_txn_ids(&mut self, floor: u32) {
        self.next_txn = self.next_txn.max(floor);
    }

    /// The ids of all objects in the system.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// The serial specification configured at `obj`.
    pub fn adt_of(&self, obj: ObjectId) -> Option<&A> {
        self.objects.get(&obj).map(|o| &o.adt)
    }

    /// The conflict relation's display name.
    pub fn conflict_name(&self) -> String {
        self.conflict.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DuEngine, UipEngine};
    use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv, BankResp};
    use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};
    use ccr_core::conflict::FnConflict;

    type UipSys = TxnSystem<BankAccount, UipEngine<BankAccount>, FnConflict<BankAccount>>;
    type DuSys = TxnSystem<BankAccount, DuEngine<BankAccount>, FnConflict<BankAccount>>;

    const X: ObjectId = ObjectId::SOLE;

    #[test]
    fn basic_commit_flow() {
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        assert_eq!(sys.invoke(t, X, BankInv::Deposit(5)).unwrap(), BankResp::Ok);
        assert_eq!(sys.invoke(t, X, BankInv::Balance).unwrap(), BankResp::Val(5));
        sys.commit(t).unwrap();
        assert_eq!(sys.committed_state(X), 5);
        assert_eq!(sys.stats().committed, 1);
    }

    #[test]
    fn uip_nrbc_allows_concurrent_withdrawals() {
        // (withdraw_ok, withdraw_ok) ∉ NRBC: two withdrawals proceed
        // concurrently under update-in-place.
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let setup = sys.begin();
        sys.invoke(setup, X, BankInv::Deposit(10)).unwrap();
        sys.commit(setup).unwrap();

        let a = sys.begin();
        let b = sys.begin();
        assert_eq!(sys.invoke(a, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        assert_eq!(sys.invoke(b, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        sys.commit(a).unwrap();
        sys.commit(b).unwrap();
        assert_eq!(sys.committed_state(X), 2);
    }

    #[test]
    fn du_nfc_blocks_concurrent_withdrawals() {
        // (withdraw_ok, withdraw_ok) ∈ NFC: the second withdrawal blocks
        // under deferred update.
        let mut sys: DuSys = TxnSystem::new(BankAccount::default(), 1, bank_nfc());
        let setup = sys.begin();
        sys.invoke(setup, X, BankInv::Deposit(10)).unwrap();
        sys.commit(setup).unwrap();

        let a = sys.begin();
        let b = sys.begin();
        assert_eq!(sys.invoke(a, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        match sys.invoke(b, X, BankInv::Withdraw(4)) {
            Err(TxnError::Blocked { on }) => assert_eq!(on, vec![a]),
            other => panic!("expected block, got {other:?}"),
        }
        sys.commit(a).unwrap();
        // After a's commit the lock is released and b can proceed.
        assert_eq!(sys.invoke(b, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        sys.commit(b).unwrap();
        assert_eq!(sys.committed_state(X), 2);
    }

    #[test]
    fn du_nrbc_yields_incorrect_but_detected_executions() {
        // Using UIP's relation under DU is exactly what Theorem 10 forbids:
        // concurrent withdrawals both see the full balance; validation
        // catches the second at commit.
        let mut sys: DuSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let setup = sys.begin();
        sys.invoke(setup, X, BankInv::Deposit(5)).unwrap();
        sys.commit(setup).unwrap();

        let a = sys.begin();
        let b = sys.begin();
        assert_eq!(sys.invoke(a, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        assert_eq!(sys.invoke(b, X, BankInv::Withdraw(4)).unwrap(), BankResp::Ok);
        sys.commit(a).unwrap();
        assert_eq!(sys.commit(b), Err(TxnError::Aborted(AbortReason::Validation)));
        assert_eq!(sys.committed_state(X), 1);
        // The committed trace is still atomic thanks to the forced abort.
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn uip_abort_restores_state_for_others() {
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let a = sys.begin();
        let b = sys.begin();
        sys.invoke(a, X, BankInv::Deposit(5)).unwrap();
        sys.invoke(b, X, BankInv::Deposit(3)).unwrap();
        sys.abort(a).unwrap();
        assert_eq!(sys.invoke(b, X, BankInv::Balance).unwrap(), BankResp::Val(3));
        sys.commit(b).unwrap();
        assert_eq!(sys.committed_state(X), 3);
    }

    #[test]
    fn deadlock_detection_finds_cycles() {
        // Two balance readers block two depositors crosswise over two
        // objects.
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 2, bank_nrbc());
        let y = ObjectId(1);
        let a = sys.begin();
        let b = sys.begin();
        sys.invoke(a, X, BankInv::Balance).unwrap();
        sys.invoke(b, y, BankInv::Balance).unwrap();
        // (deposit, balance) ∈ NRBC: each deposit blocks on the other's read.
        assert!(matches!(sys.invoke(a, y, BankInv::Deposit(1)), Err(TxnError::Blocked { .. })));
        assert!(matches!(sys.invoke(b, X, BankInv::Deposit(1)), Err(TxnError::Blocked { .. })));
        let cycle = sys.find_deadlock(b).expect("deadlock");
        assert!(cycle.contains(&a) && cycle.contains(&b));
        sys.abort_with(b, AbortReason::Deadlock).unwrap();
        assert_eq!(sys.invoke(a, y, BankInv::Deposit(1)).unwrap(), BankResp::Ok);
        sys.commit(a).unwrap();
    }

    #[test]
    fn undefined_invocations_surface_as_no_legal_response() {
        // deposit(0) has no transition (the paper requires i > 0).
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        assert_eq!(sys.invoke(t, X, BankInv::Deposit(0)), Err(TxnError::NoLegalResponse));
        // The transaction survives and can continue.
        assert_eq!(sys.invoke(t, X, BankInv::Deposit(1)).unwrap(), BankResp::Ok);
        sys.commit(t).unwrap();
    }

    #[test]
    fn wound_wait_aborts_younger_holders() {
        use super::ConflictPolicy;
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc())
            .with_policy(ConflictPolicy::WoundWait);
        let setup = sys.begin();
        sys.invoke(setup, X, BankInv::Deposit(10)).unwrap();
        sys.commit(setup).unwrap();

        let older = sys.begin();
        let younger = sys.begin();
        // The younger transaction takes a balance read (held op).
        sys.invoke(younger, X, BankInv::Balance).unwrap();
        // The older transaction's deposit conflicts with the held read:
        // under wound-wait it wounds the younger holder and proceeds.
        assert_eq!(sys.invoke(older, X, BankInv::Deposit(1)).unwrap(), BankResp::Ok);
        assert_eq!(sys.stats().wounds, 1);
        // The younger transaction observes its abort on its next call.
        assert_eq!(
            sys.invoke(younger, X, BankInv::Balance),
            Err(TxnError::Aborted(AbortReason::ConflictAbort))
        );
        sys.commit(older).unwrap();
        assert_eq!(sys.committed_state(X), 11);
    }

    #[test]
    fn no_wait_aborts_the_requester_immediately() {
        use super::ConflictPolicy;
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc())
            .with_policy(ConflictPolicy::NoWait);
        let a = sys.begin();
        let b = sys.begin();
        sys.invoke(a, X, BankInv::Balance).unwrap();
        assert_eq!(
            sys.invoke(b, X, BankInv::Deposit(1)),
            Err(TxnError::Aborted(AbortReason::ConflictAbort))
        );
        assert_eq!(sys.stats().conflict_aborts, 1);
        // The holder is untouched.
        sys.commit(a).unwrap();
    }

    #[test]
    fn wound_wait_younger_requesters_still_wait() {
        use super::ConflictPolicy;
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc())
            .with_policy(ConflictPolicy::WoundWait);
        let older = sys.begin();
        let younger = sys.begin();
        sys.invoke(older, X, BankInv::Balance).unwrap();
        // Younger requester vs older holder: must block, not wound.
        assert!(matches!(
            sys.invoke(younger, X, BankInv::Deposit(1)),
            Err(TxnError::Blocked { .. })
        ));
        assert_eq!(sys.stats().wounds, 0);
    }

    #[test]
    fn trace_records_full_history() {
        let mut sys: UipSys = TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let t = sys.begin();
        sys.invoke(t, X, BankInv::Deposit(5)).unwrap();
        sys.commit(t).unwrap();
        let u = sys.begin();
        sys.invoke(u, X, BankInv::Withdraw(9)).unwrap(); // refused: No
        sys.abort(u).unwrap();
        assert_eq!(sys.trace().len(), 6);
        assert_eq!(sys.trace().committed().len(), 1);
        assert_eq!(sys.trace().aborted().len(), 1);
    }
}
