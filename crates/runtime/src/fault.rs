//! Fault plans: deterministic schedules of injected failures.
//!
//! A [`FaultPlan`] is a sorted list of (event index, fault kind) pairs. The
//! simulator ([`crate::sim`]) counts scheduler events and injects each fault
//! exactly when the global event counter reaches its index — so the same
//! `(seed, plan)` pair always injects the same faults at the same points of
//! the same interleaving. Plans render to and parse from a compact text form
//! (`"12:crash,30:torn2,45:abort,60:delay5,80:wound"`) so a failing run can
//! be re-executed from a command line.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the durable system (volatile state lost, redo from journal).
    Crash,
    /// Crash with a torn final journal record: the last `drop_ops`
    /// operations of the most recent record are lost mid-flush.
    TornCrash {
        /// Operations torn off the final record's body.
        drop_ops: usize,
    },
    /// Force-abort the youngest active transaction.
    ForceAbort,
    /// Delay the next commit attempt by `rounds` scheduler turns.
    DelayCommit {
        /// Turns the committing driver is forced to sleep.
        rounds: u32,
    },
    /// Abort *every* active transaction at once (a wound storm).
    WoundStorm,
    /// Crash with the last commit flush torn at *sector* granularity: its
    /// trailing `sectors` sectors never reach the platter (power loss
    /// mid-fsync). Degrades to [`FaultKind::Crash`] on backends without a
    /// sector image or when the tear would remove the whole flush.
    SectorTorn {
        /// Trailing sectors torn off the final flush.
        sectors: usize,
    },
    /// Crash with the last commit flush reordered: the device persisted its
    /// later sectors but not the first (write reordering across an
    /// un-fsynced multi-sector write). Degrades to [`FaultKind::Crash`]
    /// when inexpressible.
    ReorderFlush,
    /// Flip one durable bit (index reduced modulo the stable image size),
    /// then crash. The CRC layer must detect the flip during the recovery
    /// scan — an undetected flip that changes state is the
    /// silent-corruption verdict. Degrades to [`FaultKind::Crash`] on
    /// backends without a byte image.
    BitFlip {
        /// The bit index to flip.
        bit: u64,
    },
    /// Arm a budget of `errors` transient I/O failures: the device's next
    /// `errors` checked ops each fail once before succeeding. The backend's
    /// bounded retries with backoff normally absorb the whole budget
    /// invisibly (except in the retry telemetry). Degrades to
    /// [`FaultKind::Crash`] on backends without a device.
    TransientIo {
        /// Checked device ops that will fail once each.
        errors: u32,
    },
    /// The device reports itself permanently out of space: every durable
    /// append fails until healed, driving the system into read-only
    /// degraded mode at the next commit. Degrades to [`FaultKind::Crash`]
    /// on backends without a device.
    DiskFull,
    /// Gray failure: the device's next `ops` checked operations each serve
    /// *slowly* (extra latency ticks charged, no error reported) — the
    /// stalling-not-failing hardware that health checks miss. Degrades to
    /// [`FaultKind::Crash`] on backends without a device.
    SlowDisk {
        /// Checked device ops that will serve slowly.
        ops: u32,
    },
    /// Gray failure: the device's next `stalls` non-empty flushes each hang
    /// for extra latency ticks before completing (fsync stalls — the
    /// classic gray symptom under a filling write cache). Degrades to
    /// [`FaultKind::Crash`] on backends without a device.
    FsyncStall {
        /// Non-empty flushes that will stall.
        stalls: u32,
    },
    /// Sharded runs only: crash the shard subset named by `mask` (bit `i`
    /// set ⇒ shard `i` loses power and recovers; bits beyond the shard
    /// count are reduced modulo the fleet). Single-system runs degrade this
    /// to [`FaultKind::Crash`].
    CrashShards {
        /// Bitmask of shards to crash together.
        mask: u32,
    },
    /// Sharded runs only: arm a crash at 2PC step `step` of the *next*
    /// cross-shard commit. Steps cycle through the protocol's decision
    /// points — 0: coordinator dies after the prepares (participants left
    /// in doubt), 1: the first participant dies in doubt, 2: coordinator
    /// *and* first participant die after the decision reached only part of
    /// the fleet, 3: a participant dies again while recovering (nested
    /// crash during participant recovery). Single-system runs degrade to
    /// [`FaultKind::Crash`].
    TwoPcCrash {
        /// Protocol decision point (reduced modulo the step table).
        step: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::TornCrash { drop_ops } => write!(f, "torn{drop_ops}"),
            FaultKind::ForceAbort => write!(f, "abort"),
            FaultKind::DelayCommit { rounds } => write!(f, "delay{rounds}"),
            FaultKind::WoundStorm => write!(f, "wound"),
            FaultKind::SectorTorn { sectors } => write!(f, "sect{sectors}"),
            FaultKind::ReorderFlush => write!(f, "reorder"),
            FaultKind::BitFlip { bit } => write!(f, "flip{bit}"),
            FaultKind::TransientIo { errors } => write!(f, "io{errors}"),
            FaultKind::DiskFull => write!(f, "full"),
            FaultKind::SlowDisk { ops } => write!(f, "slow{ops}"),
            FaultKind::FsyncStall { stalls } => write!(f, "stall{stalls}"),
            FaultKind::CrashShards { mask } => write!(f, "shards{mask}"),
            FaultKind::TwoPcCrash { step } => write!(f, "twopc{step}"),
        }
    }
}

/// A fault scheduled at a global event index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The simulator's global event counter value at which to inject.
    pub at_event: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.at_event, self.kind)
    }
}

/// A deterministic schedule of faults, sorted by event index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Build a plan from faults (sorted by event index; ties keep their
    /// given order).
    pub fn new(mut faults: Vec<FaultSpec>) -> Self {
        faults.sort_by_key(|f| f.at_event);
        FaultPlan { faults }
    }

    /// The empty plan (fault-free run).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derive `count` faults over event indices `1..horizon` from `seed`.
    /// Deterministic: the same arguments always yield the same plan.
    pub fn from_seed(seed: u64, horizon: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let horizon = horizon.max(2);
        let faults = (0..count)
            .map(|_| {
                let at_event = rng.gen_range(1..horizon);
                let kind = match rng.gen_range(0u32..14) {
                    0 | 1 => FaultKind::Crash,
                    2 => FaultKind::TornCrash { drop_ops: rng.gen_range(1usize..3) },
                    3 | 4 => FaultKind::ForceAbort,
                    5 => FaultKind::DelayCommit { rounds: rng.gen_range(1u32..6) },
                    6 => FaultKind::WoundStorm,
                    7 | 8 => FaultKind::SectorTorn { sectors: rng.gen_range(1usize..3) },
                    9 => FaultKind::ReorderFlush,
                    10 => FaultKind::BitFlip { bit: rng.gen_range(0u64..1_000_000) },
                    // A budget below the default retry attempt cap: transient
                    // errors are expected to be absorbed, not to degrade.
                    11 | 12 => FaultKind::TransientIo { errors: rng.gen_range(1u32..4) },
                    _ => FaultKind::DiskFull,
                };
                FaultSpec { at_event, kind }
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// Derive `count` faults over event indices `1..horizon` from `seed`,
    /// with the gray-failure arms (`slow{n}`, `stall{n}`) in the kind
    /// table. A *separate* generator — not a flag on
    /// [`from_seed`](Self::from_seed) — so existing replay command lines
    /// keep producing byte-identical plans.
    pub fn from_seed_gray(seed: u64, horizon: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6BA7_6BA7_6BA7_6BA7);
        let horizon = horizon.max(2);
        let faults = (0..count)
            .map(|_| {
                let at_event = rng.gen_range(1..horizon);
                let kind = match rng.gen_range(0u32..18) {
                    0 | 1 => FaultKind::Crash,
                    2 => FaultKind::TornCrash { drop_ops: rng.gen_range(1usize..3) },
                    3 | 4 => FaultKind::ForceAbort,
                    5 => FaultKind::DelayCommit { rounds: rng.gen_range(1u32..6) },
                    6 => FaultKind::WoundStorm,
                    7 | 8 => FaultKind::SectorTorn { sectors: rng.gen_range(1usize..3) },
                    9 => FaultKind::ReorderFlush,
                    10 => FaultKind::BitFlip { bit: rng.gen_range(0u64..1_000_000) },
                    11 | 12 => FaultKind::TransientIo { errors: rng.gen_range(1u32..4) },
                    13 => FaultKind::DiskFull,
                    14 | 15 => FaultKind::SlowDisk { ops: rng.gen_range(2u32..8) },
                    _ => FaultKind::FsyncStall { stalls: rng.gen_range(1u32..4) },
                };
                FaultSpec { at_event, kind }
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// Derive `count` faults over event indices `1..horizon` from `seed`,
    /// with the sharded arms (`shards{mask}`, `twopc{step}`) in the kind
    /// table — crash-of-any-shard-subset and crash-at-every-2PC-step.
    /// `nshards` bounds the subset masks to the actual fleet (every
    /// non-empty subset is reachable). A *separate* generator — not a flag
    /// on [`from_seed`](Self::from_seed) or
    /// [`from_seed_gray`](Self::from_seed_gray) — so existing replay
    /// command lines keep producing byte-identical plans.
    pub fn from_seed_sharded(seed: u64, horizon: u64, count: usize, nshards: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_5AAD_5AAD_5AAD);
        let horizon = horizon.max(2);
        let subsets = (1u32 << nshards.clamp(1, 5)) - 1;
        let faults = (0..count)
            .map(|_| {
                let at_event = rng.gen_range(1..horizon);
                let kind = match rng.gen_range(0u32..16) {
                    0 => FaultKind::Crash,
                    1 => FaultKind::TornCrash { drop_ops: rng.gen_range(1usize..3) },
                    2 | 3 => FaultKind::ForceAbort,
                    4 => FaultKind::DelayCommit { rounds: rng.gen_range(1u32..6) },
                    5 => FaultKind::WoundStorm,
                    6 => FaultKind::SectorTorn { sectors: rng.gen_range(1usize..3) },
                    7 => FaultKind::ReorderFlush,
                    8 => FaultKind::TransientIo { errors: rng.gen_range(1u32..4) },
                    // The sharded arms get the remaining weight: any
                    // non-empty shard subset, and every 2PC decision point.
                    9..=12 => FaultKind::CrashShards { mask: rng.gen_range(1..=subsets) },
                    _ => FaultKind::TwoPcCrash { step: rng.gen_range(0u32..4) },
                };
                FaultSpec { at_event, kind }
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// The scheduled faults, sorted by event index.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plan without the fault at `index` (for delta-debugging).
    pub fn without_index(&self, index: usize) -> Self {
        let mut faults = self.faults.clone();
        faults.remove(index);
        FaultPlan { faults }
    }

    /// The plan restricted to the given fault indices (for delta-debugging).
    pub fn subset(&self, indices: &[usize]) -> Self {
        FaultPlan::new(indices.iter().filter_map(|&i| self.faults.get(i).copied()).collect())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "none");
        }
        for (i, fs) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fs}")?;
        }
        Ok(())
    }
}

/// Why a fault-plan string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError(pub String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl FromStr for FaultKind {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || FaultParseError(s.to_string());
        if s == "crash" {
            Ok(FaultKind::Crash)
        } else if s == "abort" {
            Ok(FaultKind::ForceAbort)
        } else if s == "wound" {
            Ok(FaultKind::WoundStorm)
        } else if s == "reorder" {
            Ok(FaultKind::ReorderFlush)
        } else if let Some(n) = s.strip_prefix("sect") {
            Ok(FaultKind::SectorTorn { sectors: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("flip") {
            Ok(FaultKind::BitFlip { bit: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("torn") {
            Ok(FaultKind::TornCrash { drop_ops: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("delay") {
            Ok(FaultKind::DelayCommit { rounds: n.parse().map_err(|_| err())? })
        } else if s == "full" {
            Ok(FaultKind::DiskFull)
        } else if let Some(n) = s.strip_prefix("io") {
            Ok(FaultKind::TransientIo { errors: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("slow") {
            Ok(FaultKind::SlowDisk { ops: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("stall") {
            Ok(FaultKind::FsyncStall { stalls: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("shards") {
            Ok(FaultKind::CrashShards { mask: n.parse().map_err(|_| err())? })
        } else if let Some(n) = s.strip_prefix("twopc") {
            Ok(FaultKind::TwoPcCrash { step: n.parse().map_err(|_| err())? })
        } else {
            Err(err())
        }
    }
}

impl FromStr for FaultPlan {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FaultPlan::none());
        }
        let mut faults = Vec::new();
        for part in s.split(',') {
            let (at, kind) =
                part.split_once(':').ok_or_else(|| FaultParseError(part.to_string()))?;
            faults.push(FaultSpec {
                at_event: at.trim().parse().map_err(|_| FaultParseError(part.to_string()))?,
                kind: kind.trim().parse()?,
            });
        }
        Ok(FaultPlan::new(faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 45, kind: FaultKind::ForceAbort },
            FaultSpec { at_event: 12, kind: FaultKind::Crash },
            FaultSpec { at_event: 30, kind: FaultKind::TornCrash { drop_ops: 2 } },
            FaultSpec { at_event: 60, kind: FaultKind::DelayCommit { rounds: 5 } },
            FaultSpec { at_event: 80, kind: FaultKind::WoundStorm },
        ]);
        let s = plan.to_string();
        assert_eq!(s, "12:crash,30:torn2,45:abort,60:delay5,80:wound");
        assert_eq!(s.parse::<FaultPlan>().unwrap(), plan);
        let storage = FaultPlan::new(vec![
            FaultSpec { at_event: 5, kind: FaultKind::SectorTorn { sectors: 2 } },
            FaultSpec { at_event: 9, kind: FaultKind::ReorderFlush },
            FaultSpec { at_event: 14, kind: FaultKind::BitFlip { bit: 4093 } },
            FaultSpec { at_event: 17, kind: FaultKind::TransientIo { errors: 3 } },
            FaultSpec { at_event: 21, kind: FaultKind::DiskFull },
        ]);
        let s = storage.to_string();
        assert_eq!(s, "5:sect2,9:reorder,14:flip4093,17:io3,21:full");
        assert_eq!(s.parse::<FaultPlan>().unwrap(), storage);
        let gray = FaultPlan::new(vec![
            FaultSpec { at_event: 3, kind: FaultKind::SlowDisk { ops: 4 } },
            FaultSpec { at_event: 8, kind: FaultKind::FsyncStall { stalls: 2 } },
        ]);
        let s = gray.to_string();
        assert_eq!(s, "3:slow4,8:stall2");
        assert_eq!(s.parse::<FaultPlan>().unwrap(), gray);
        assert_eq!("none".parse::<FaultPlan>().unwrap(), FaultPlan::none());
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::none());
        assert!("7:meteor".parse::<FaultPlan>().is_err());
        assert!("crash".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn from_seed_is_deterministic_and_sorted() {
        let a = FaultPlan::from_seed(9, 100, 6);
        let b = FaultPlan::from_seed(9, 100, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.faults().windows(2).all(|w| w[0].at_event <= w[1].at_event));
        assert!(a.faults().iter().all(|f| (1..100).contains(&f.at_event)));
        assert_ne!(a, FaultPlan::from_seed(10, 100, 6));
    }

    #[test]
    fn gray_generator_is_deterministic_and_distinct() {
        let a = FaultPlan::from_seed_gray(9, 100, 8);
        assert_eq!(a, FaultPlan::from_seed_gray(9, 100, 8));
        assert_eq!(a.len(), 8);
        assert!(a.faults().windows(2).all(|w| w[0].at_event <= w[1].at_event));
        // The plain generator's byte stream is untouched: same seed, both
        // tables, different plans.
        assert_ne!(a, FaultPlan::from_seed(9, 100, 8));
        // Over enough draws the gray arms actually appear.
        let many = FaultPlan::from_seed_gray(7, 1000, 64);
        assert!(many
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::SlowDisk { .. } | FaultKind::FsyncStall { .. })));
    }

    #[test]
    fn sharded_generator_round_trips_and_keeps_old_plans_identical() {
        let a = FaultPlan::from_seed_sharded(9, 100, 8, 2);
        assert_eq!(a, FaultPlan::from_seed_sharded(9, 100, 8, 2));
        assert!(a.faults().windows(2).all(|w| w[0].at_event <= w[1].at_event));
        // Display/parse round trip for the new arms.
        let plan = FaultPlan::new(vec![
            FaultSpec { at_event: 4, kind: FaultKind::CrashShards { mask: 3 } },
            FaultSpec { at_event: 8, kind: FaultKind::TwoPcCrash { step: 2 } },
        ]);
        let s = plan.to_string();
        assert_eq!(s, "4:shards3,8:twopc2");
        assert_eq!(s.parse::<FaultPlan>().unwrap(), plan);
        // The older generators' byte streams are untouched.
        assert_ne!(a, FaultPlan::from_seed(9, 100, 8));
        assert_ne!(a, FaultPlan::from_seed_gray(9, 100, 8));
        // Masks stay within the 2-shard fleet and both arms appear over
        // enough draws.
        let many = FaultPlan::from_seed_sharded(7, 1000, 64, 2);
        for f in many.faults() {
            if let FaultKind::CrashShards { mask } = f.kind {
                assert!((1..=3).contains(&mask));
            }
        }
        assert!(many.faults().iter().any(|f| matches!(f.kind, FaultKind::CrashShards { .. })));
        assert!(many.faults().iter().any(|f| matches!(f.kind, FaultKind::TwoPcCrash { .. })));
    }

    #[test]
    fn subset_and_without_support_shrinking() {
        let plan = FaultPlan::from_seed(3, 50, 4);
        assert_eq!(plan.without_index(0).len(), 3);
        let sub = plan.subset(&[1, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.faults()[0], plan.faults()[1]);
        assert_eq!(sub.faults()[1], plan.faults()[3]);
    }
}
