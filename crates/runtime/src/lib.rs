//! # ccr-runtime — an executable transactional runtime for abstract data
//! types with commutativity-based locking and pluggable recovery
//!
//! This crate turns the formal model of `ccr-core` into a system you can
//! run:
//!
//! * [`engine`] — recovery engines: update-in-place ([`engine::UipEngine`],
//!   with replay- or inverse-based undo) and deferred update
//!   ([`engine::DuEngine`], intentions lists / private workspaces);
//! * [`system`] — the transaction manager: conflict-relation locking with
//!   implicit locks, atomic commitment across objects, wait-for-graph
//!   deadlock detection, and full event-trace recording (executions can be
//!   checked dynamic atomic post-hoc by `ccr-core`);
//! * [`script`] + [`scheduler`] — deterministic, seeded execution of
//!   transaction scripts with blocking, retries and deadlock-victim
//!   handling (the substrate for the paper experiments);
//! * [`threaded`] — a multi-threaded executor over the same system
//!   (parking_lot-based blocking instead of scheduler polling);
//! * [`optimistic`] — optimistic concurrency control (§3.4's remark):
//!   execute without blocking, validate commutativity at commit;
//! * [`escrow`] — the O'Neil-style state-dependent conflict test the
//!   paper's §8 cites as *outside* the conflict-relation framework,
//!   implemented as an extension for comparison;
//! * [`crash`] — simulated crash recovery (the paper's deferred future
//!   work): a redo journal in commit order with verified replay,
//!   torn-write detection and checkpoint truncation, persisted through a
//!   pluggable `ccr-store` [`LogBackend`](ccr_store::LogBackend) — the
//!   fast in-memory journal or the segmented, checksummed WAL on a
//!   simulated sector device (DESIGN.md §9);
//! * [`fault`] + [`sim`] — deterministic fault injection: seeded fault
//!   plans (crashes, torn writes, forced aborts, delayed commits, wound
//!   storms, sector tears, flush reordering, bit flips) driven through a
//!   [`crash::DurableSystem`] with an atomicity / equieffectivity /
//!   recovery-view oracle after every fault.
//!
//! Every layer reports through the `ccr-obs` tracer embedded in the system
//! ([`system::TxnSystem::obs`]): structured events on a deterministic
//! logical clock, latency histograms, and the [`system::SystemStats`]
//! counters — which are now a *projection* of the event stream rather than
//! ad-hoc bumps (the struct itself lives in `ccr-obs` and is re-exported
//! here unchanged).
//!
//! The correct pairings (Theorems 9 and 10) are `UipEngine` with an
//! `NRBC`-containing conflict relation and `DuEngine` with an
//! `NFC`-containing one. The runtime lets you run the *incorrect* pairings
//! too — deferred-update validation and undo-replay failures then surface
//! exactly where the theory predicts, which the tests exploit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crash;
pub mod engine;
pub mod error;
pub mod escrow;
pub mod fault;
pub mod optimistic;
pub mod scheduler;
pub mod script;
pub mod shard;
pub mod sim;
pub mod system;
pub mod threaded;

pub use crash::{DurableSystem, Journal, RedoError, SystemMode, SystemSnapshot, TornPolicy};
pub use engine::{DuEngine, RecoveryEngine, UipEngine, UipInverseEngine};
pub use error::{AbortReason, RecoveryError, TxnError};
pub use shard::{
    check_uniform_outcome, CoordinatorLog, GlobalAtomicityViolation, ShardedSnapshot,
    ShardedSystem, TwoPcStep,
};
pub use system::{ConflictPolicy, SystemStats, TxnSystem};
