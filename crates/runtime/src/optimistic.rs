//! Optimistic concurrency control (Kung–Robinson style, adapted to
//! commutativity).
//!
//! The paper (§3.4) notes that optimistic protocols achieve dynamic
//! atomicity by letting conflicts *occur* and aborting conflicting
//! transactions at commit. This module implements that scheme over the
//! deferred-update substrate: invocations never block; at commit, the
//! transaction validates its operations against every operation committed
//! since it began, using a (forward-commutativity) conflict relation, and
//! aborts on conflict. With an `NFC`-containing relation the committed
//! executions are exactly those of deferred update, so Theorem 10's
//! guarantee transfers.

use std::collections::BTreeMap;

use ccr_core::adt::{Adt, Op};
use ccr_core::conflict::Conflict;
use ccr_core::history::{Event, History};
use ccr_core::ids::{ObjectId, TxnId};

use crate::error::{AbortReason, TxnError};

/// Aggregate counters for an optimistic execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptimisticStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted at validation.
    pub validation_aborts: u64,
    /// Operations executed.
    pub ops: u64,
}

/// An optimistic transactional system (single ADT type, many objects).
pub struct OptimisticSystem<A: Adt, C: Conflict<A>> {
    adt: A,
    conflict: C,
    objects: BTreeMap<ObjectId, ObjState<A>>,
    txns: BTreeMap<TxnId, TxnState<A>>,
    next_txn: u32,
    /// Global commit counter (validation horizon).
    commit_seq: u64,
    trace: History<A>,
    stats: OptimisticStats,
}

struct ObjState<A: Adt> {
    /// Committed base state.
    base: A::State,
    /// Committed operations with their commit sequence number.
    committed_log: Vec<(u64, Op<A>)>,
}

struct TxnState<A: Adt> {
    start_seq: u64,
    /// Per-object intentions and cached private state.
    workspaces: BTreeMap<ObjectId, (Vec<Op<A>>, A::State)>,
}

impl<A: Adt, C: Conflict<A>> OptimisticSystem<A, C> {
    /// Create with objects `0..n`.
    pub fn new(adt: A, n_objects: u32, conflict: C) -> Self {
        let mut objects = BTreeMap::new();
        for i in 0..n_objects {
            objects
                .insert(ObjectId(i), ObjState { base: adt.initial(), committed_log: Vec::new() });
        }
        OptimisticSystem {
            adt,
            conflict,
            objects,
            txns: BTreeMap::new(),
            next_txn: 0,
            commit_seq: 0,
            trace: History::new(),
            stats: OptimisticStats::default(),
        }
    }

    /// Begin a transaction (records the validation horizon).
    pub fn begin(&mut self) -> TxnId {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(t, TxnState { start_seq: self.commit_seq, workspaces: BTreeMap::new() });
        self.stats.begun += 1;
        t
    }

    /// Execute an operation in the transaction's private workspace. Never
    /// blocks.
    pub fn invoke(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        inv: A::Invocation,
    ) -> Result<A::Response, TxnError> {
        let t = self.txns.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
        let o = self.objects.get(&obj).ok_or(TxnError::NoSuchObject(obj))?;
        let (intentions, state) =
            t.workspaces.entry(obj).or_insert_with(|| (Vec::new(), o.base.clone()));
        let (resp, post) =
            self.adt.step(state, &inv).into_iter().next().ok_or(TxnError::NoLegalResponse)?;
        intentions.push(Op::new(inv.clone(), resp.clone()));
        *state = post;
        self.stats.ops += 1;
        self.trace.push(Event::Invoke { txn, obj, inv }).expect("well-formed invoke");
        self.trace
            .push(Event::Respond { txn, obj, resp: resp.clone() })
            .expect("well-formed respond");
        Ok(resp)
    }

    /// Validate and commit. Backward validation: each of the transaction's
    /// operations must not conflict with any operation committed after the
    /// transaction began; then the intentions must re-apply to the current
    /// base (their responses were chosen against a possibly stale snapshot).
    pub fn commit(&mut self, txn: TxnId) -> Result<(), TxnError> {
        let t = self.txns.get(&txn).ok_or(TxnError::NotActive(txn))?;
        let mut valid = true;
        'outer: for (obj, (intentions, _)) in &t.workspaces {
            let o = &self.objects[obj];
            for op in intentions {
                for (seq, committed_op) in &o.committed_log {
                    if *seq > t.start_seq && self.conflict.conflicts(op, committed_op) {
                        valid = false;
                        break 'outer;
                    }
                }
            }
        }
        if valid {
            // Re-apply intentions to the (possibly advanced) base.
            'apply_check: for (obj, (intentions, _)) in &t.workspaces {
                let mut s = self.objects[obj].base.clone();
                for op in intentions {
                    match self.adt.apply(&s, op).into_iter().next() {
                        Some(s2) => s = s2,
                        None => {
                            valid = false;
                            break 'apply_check;
                        }
                    }
                }
            }
        }
        if !valid {
            self.abort_inner(txn);
            self.stats.validation_aborts += 1;
            return Err(TxnError::Aborted(AbortReason::Validation));
        }
        let t = self.txns.remove(&txn).expect("checked above");
        self.commit_seq += 1;
        let seq = self.commit_seq;
        for (obj, (intentions, _)) in t.workspaces {
            let o = self.objects.get_mut(&obj).expect("object exists");
            for op in intentions {
                let s2 = self.adt.apply(&o.base, &op).into_iter().next().expect("validated above");
                o.base = s2;
                o.committed_log.push((seq, op));
            }
            self.trace.push(Event::Commit { txn, obj }).expect("well-formed commit");
        }
        self.stats.committed += 1;
        Ok(())
    }

    /// Abort (discard workspaces).
    pub fn abort(&mut self, txn: TxnId) -> Result<(), TxnError> {
        if !self.txns.contains_key(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        self.abort_inner(txn);
        Ok(())
    }

    fn abort_inner(&mut self, txn: TxnId) {
        if let Some(t) = self.txns.remove(&txn) {
            for obj in t.workspaces.keys() {
                self.trace.push(Event::Abort { txn, obj: *obj }).expect("well-formed abort");
            }
            // Transactions that touched nothing still need a completion
            // event for trace bookkeeping at some object; skip instead —
            // they appear in no projection.
        }
    }

    /// The committed state of `obj`.
    pub fn committed_state(&self, obj: ObjectId) -> A::State {
        self.objects[&obj].base.clone()
    }

    /// The recorded event history.
    pub fn trace(&self) -> &History<A> {
        &self.trace
    }

    /// Execution counters.
    pub fn stats(&self) -> &OptimisticStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{bank_nfc, BankAccount, BankInv};
    use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};

    const X: ObjectId = ObjectId::SOLE;

    #[test]
    fn non_conflicting_transactions_commit() {
        let mut sys = OptimisticSystem::new(BankAccount::default(), 1, bank_nfc());
        let a = sys.begin();
        let b = sys.begin();
        sys.invoke(a, X, BankInv::Deposit(5)).unwrap();
        sys.invoke(b, X, BankInv::Deposit(3)).unwrap();
        sys.commit(a).unwrap();
        sys.commit(b).unwrap();
        assert_eq!(sys.committed_state(X), 8);
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn conflicting_transaction_aborts_at_commit() {
        let mut sys = OptimisticSystem::new(BankAccount::default(), 1, bank_nfc());
        let setup = sys.begin();
        sys.invoke(setup, X, BankInv::Deposit(5)).unwrap();
        sys.commit(setup).unwrap();

        let a = sys.begin();
        let b = sys.begin();
        // Both read the balance; a then changes it. (deposit, balance) ∈ NFC
        // so b must fail validation.
        sys.invoke(a, X, BankInv::Deposit(2)).unwrap();
        sys.invoke(b, X, BankInv::Balance).unwrap();
        sys.commit(a).unwrap();
        assert_eq!(sys.commit(b), Err(TxnError::Aborted(AbortReason::Validation)));
        assert_eq!(sys.stats().validation_aborts, 1);
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn commuting_operations_survive_interleaved_commits() {
        let mut sys = OptimisticSystem::new(BankAccount::default(), 1, bank_nfc());
        let a = sys.begin();
        let b = sys.begin();
        // deposits commute forward: both commit even though they overlap.
        sys.invoke(a, X, BankInv::Deposit(5)).unwrap();
        sys.invoke(b, X, BankInv::Deposit(7)).unwrap();
        sys.commit(a).unwrap();
        sys.commit(b).unwrap();
        assert_eq!(sys.committed_state(X), 12);
    }

    #[test]
    fn reads_of_stale_snapshots_fail_validation() {
        let mut sys = OptimisticSystem::new(BankAccount::default(), 1, bank_nfc());
        let a = sys.begin();
        let b = sys.begin();
        sys.invoke(b, X, BankInv::Balance).unwrap(); // reads 0
        sys.invoke(a, X, BankInv::Deposit(5)).unwrap();
        sys.commit(a).unwrap();
        assert!(sys.commit(b).is_err());
    }
}
