//! A deterministic, seeded scheduler driving scripts through a
//! [`TxnSystem`].
//!
//! The scheduler interleaves scripts in a seeded random order, retries
//! blocked invocations when a blocker completes, detects deadlocks through
//! the system's wait-for graph (aborting the youngest transaction in the
//! cycle), and restarts scripts whose transactions were aborted by the
//! system. Determinism (same seed ⇒ same execution) makes experiment runs
//! reproducible and lets property tests shrink failures.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ccr_core::adt::Adt;
use ccr_core::conflict::Conflict;
use ccr_core::ids::TxnId;
use ccr_obs::Phase;

use crate::engine::RecoveryEngine;
use crate::error::{AbortReason, TxnError};
use crate::script::{Script, Step};
use crate::system::{SystemStats, TxnSystem};

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerCfg {
    /// RNG seed for the interleaving order.
    pub seed: u64,
    /// Retries per script before giving up (deadlock victims and validation
    /// aborts restart the script).
    pub max_retries: usize,
    /// Safety cap on scheduler iterations.
    pub max_rounds: u64,
    /// Admission control: maximum transactions in flight (0 = unlimited).
    /// Throttling the multiprogramming level is the classical remedy for
    /// lock thrashing on conflict-dense workloads.
    pub mpl: usize,
    /// Per-transaction deadline in scheduler rounds (0 = none): a
    /// transaction still in flight this many rounds after it began is
    /// aborted with [`AbortReason::Deadline`] and its script restarted
    /// against the retry budget. Bounds the time any admitted transaction
    /// can hold locks on a stalling system.
    pub deadline: u64,
    /// Exponential post-restart backoff with seeded jitter: a restarted
    /// script sleeps `2^min(retries,5) + jitter` rounds before its next
    /// attempt, decorrelating the wakeups of a conflict clique. Off by
    /// default — it lengthens logical makespans, so the comparative
    /// experiments keep the bare restart-on-commit discipline unless a run
    /// opts in (the fault simulator's overload path does).
    pub backoff: bool,
}

impl Default for SchedulerCfg {
    fn default() -> Self {
        SchedulerCfg {
            seed: 0,
            max_retries: 64,
            max_rounds: 1_000_000,
            mpl: 0,
            deadline: 0,
            backoff: false,
        }
    }
}

/// Result of a scheduled run.
///
/// **Shared field semantics.** This report is produced by both executors —
/// the seeded scheduler here and `threaded.rs`'s worker pool — and the
/// experiment projections compare them, so every field means the same thing
/// under both (asserted by `tests/obs_projection.rs`):
///
/// - `committed` / `voluntary_aborts` / `gave_up` partition the scripts;
///   `retries` counts script restarts after a system abort (a script's final
///   failed attempt counts as a retry *and* a give-up).
/// - `blocked_ops` counts operations whose **first** attempt hit a conflict;
///   re-attempts of the same blocked operation are waiting, not new blocks,
///   and land in `wait_rounds` instead.
/// - `rounds` is the executor's unit of forward progress: scheduler rounds
///   (a logical makespan) for the seeded scheduler, transaction attempts for
///   the threaded executor (which has no global round clock) — where every
///   attempt ends in a commit, a voluntary abort, or a retry, so
///   `rounds == committed + voluntary_aborts + retries` holds exactly.
/// - `wait_rounds` is the executor's unit of lost concurrency: driver-rounds
///   spent blocked or sleeping (scheduler), condvar wait slices elapsed
///   while blocked (threaded).
/// - `admission_rounds` counts time queued by admission control under an
///   MPL bound: driver-rounds held back (scheduler), admission wait slices
///   elapsed while parked (threaded). Zero when `mpl` is unlimited.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Scripts that ultimately committed.
    pub committed: u64,
    /// Scripts that ended with a voluntary abort.
    pub voluntary_aborts: u64,
    /// Scripts that exhausted their retries.
    pub gave_up: u64,
    /// Deadlock victims (counted per abort, not per script).
    pub deadlock_aborts: u64,
    /// System-initiated validation aborts.
    pub validation_aborts: u64,
    /// Total retries across scripts.
    pub retries: u64,
    /// Time spent queued by admission control under an MPL bound, in the
    /// executor's wait unit (distinct from `wait_rounds`, which counts lock
    /// waits). Zero when `mpl` is unlimited.
    pub admission_rounds: u64,
    /// Operations that hit a conflict on their first attempt (the raw
    /// `stats.blocks` additionally counts every retried attempt).
    pub blocked_ops: u64,
    /// Scheduler rounds until all scripts finished (a makespan in logical
    /// time: more blocking ⇒ more rounds); transaction attempts for the
    /// threaded executor.
    pub rounds: u64,
    /// Driver-rounds spent waiting (blocked or sleeping after an abort) —
    /// the cross-configuration "lost concurrency" measure. Condvar wait
    /// slices for the threaded executor.
    pub wait_rounds: u64,
    /// Final system counters.
    pub stats: SystemStats,
}

struct Driver<A: Adt> {
    script: Box<dyn Script<A>>,
    txn: Option<TxnId>,
    last: Option<A::Response>,
    pending: Option<Step<A>>,
    /// Completion epoch at the time this driver last blocked — retried only
    /// after some transaction completes (releasing locks).
    blocked_epoch: Option<u64>,
    /// Commit count at the time this driver was restarted after a system
    /// abort — it stays asleep until someone commits (backoff that lets a
    /// conflict clique drain one committer at a time).
    sleep_until_commit: Option<u64>,
    /// Exponential-backoff rounds (with seeded jitter) left to sleep after
    /// a restart, ticked down once per scheduler visit.
    backoff_rounds: u64,
    /// Scheduler round at which the current transaction began (deadline
    /// accounting; meaningless while `txn` is `None`).
    began_round: u64,
    retries: usize,
    done: bool,
    committed: bool,
    voluntary_abort: bool,
}

fn epoch(stats: &SystemStats) -> u64 {
    stats.committed + stats.aborted
}

/// Drive `scripts` to completion over `sys`. Each script runs as one
/// transaction (re-begun on retry).
pub fn run<A, E, C>(
    sys: &mut TxnSystem<A, E, C>,
    scripts: Vec<Box<dyn Script<A>>>,
    cfg: &SchedulerCfg,
) -> RunReport
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = RunReport::default();
    let mut drivers: Vec<Driver<A>> = scripts
        .into_iter()
        .map(|mut script| {
            script.reset();
            Driver {
                script,
                txn: None,
                last: None,
                pending: None,
                blocked_epoch: None,
                sleep_until_commit: None,
                backoff_rounds: 0,
                began_round: 0,
                retries: 0,
                done: false,
                committed: false,
                voluntary_abort: false,
            }
        })
        .collect();

    let mut rounds = 0u64;
    loop {
        rounds += 1;
        if rounds > cfg.max_rounds {
            break;
        }
        let mut order: Vec<usize> = (0..drivers.len()).filter(|&i| !drivers[i].done).collect();
        if order.is_empty() {
            break;
        }
        order.shuffle(&mut rng);
        let mut progressed = false;
        for i in order {
            if drivers[i].done {
                continue;
            }
            // Deadline: a transaction in flight past its budget is aborted
            // with a typed reason and its script restarted (against the
            // retry budget) — bounded outcome on a stalling system.
            if cfg.deadline > 0 {
                if let Some(t) = drivers[i].txn {
                    if rounds.saturating_sub(drivers[i].began_round) > cfg.deadline {
                        sys.abort_with(t, AbortReason::Deadline).expect("txn is active");
                        let commits = sys.stats().committed;
                        let jitter = restart_jitter(sys, cfg, t, drivers[i].retries);
                        restart(&mut drivers[i], cfg, &mut report, commits, jitter);
                        progressed = true;
                        continue;
                    }
                }
            }
            // Exponential backoff after a restart: the tick-down is forward
            // progress (the sleep is finite), not a stall.
            if drivers[i].backoff_rounds > 0 {
                drivers[i].backoff_rounds -= 1;
                report.wait_rounds += 1;
                progressed = true;
                continue;
            }
            // A blocked driver is only retried once some transaction has
            // completed since it blocked (locks are released on completion);
            // a restarted victim additionally waits for a commit.
            if let Some(c) = drivers[i].sleep_until_commit {
                if sys.stats().committed == c {
                    report.wait_rounds += 1;
                    continue;
                }
                drivers[i].sleep_until_commit = None;
            }
            if let Some(e) = drivers[i].blocked_epoch {
                if epoch(sys.stats()) == e {
                    report.wait_rounds += 1;
                    continue;
                }
            }
            // Admission control: a driver without a transaction may only
            // begin one while fewer than `mpl` are in flight.
            if cfg.mpl > 0 && drivers[i].txn.is_none() {
                let in_flight = drivers.iter().filter(|d| !d.done && d.txn.is_some()).count();
                if in_flight >= cfg.mpl {
                    report.admission_rounds += 1;
                    continue;
                }
            }
            if step_driver(sys, &mut drivers[i], cfg, &mut report, rounds) {
                progressed = true;
            } else {
                report.wait_rounds += 1;
            }
        }
        if !progressed {
            // Every live driver is blocked: a cycle must exist in the
            // wait-for graph. Abort the youngest transaction on some cycle.
            let blocked: Vec<TxnId> =
                drivers.iter().filter(|d| !d.done).filter_map(|d| d.txn).collect();
            let mut victim = None;
            for &t in &blocked {
                if let Some(cycle) = sys.find_deadlock(t) {
                    victim = cycle.into_iter().max();
                    break;
                }
            }
            let Some(victim) = victim else {
                match blocked.into_iter().max() {
                    // No cycle found: abort the youngest blocked transaction
                    // to guarantee progress.
                    Some(t) => {
                        abort_and_restart(sys, &mut drivers, t, cfg, &mut report);
                        continue;
                    }
                    // No driver holds a transaction: everyone is sleeping
                    // after a restart with no commit in sight — wake one.
                    None => match drivers.iter_mut().find(|d| !d.done) {
                        Some(d) => {
                            d.blocked_epoch = None;
                            d.sleep_until_commit = None;
                            d.backoff_rounds = 0;
                            continue;
                        }
                        None => break,
                    },
                }
            };
            report.deadlock_aborts += 1;
            abort_and_restart(sys, &mut drivers, victim, cfg, &mut report);
        }
    }

    report.rounds = rounds;
    for d in &drivers {
        if d.committed {
            report.committed += 1;
        } else if d.voluntary_abort {
            report.voluntary_aborts += 1;
        } else {
            report.gave_up += 1;
        }
    }
    report.validation_aborts = sys.stats().validation_aborts;
    report.stats = sys.stats().clone();
    report
}

/// Advance one driver by one step. Returns whether it made progress.
fn step_driver<A, E, C>(
    sys: &mut TxnSystem<A, E, C>,
    d: &mut Driver<A>,
    cfg: &SchedulerCfg,
    report: &mut RunReport,
    round: u64,
) -> bool
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
{
    let txn = match d.txn {
        Some(t) => t,
        None => {
            let t = sys.begin();
            d.txn = Some(t);
            d.began_round = round;
            t
        }
    };
    let (step, fresh) = match d.pending.take() {
        Some(s) => (s, false),
        None => (d.script.next(d.last.as_ref()), true),
    };
    match step {
        Step::Invoke(obj, inv) => match sys.invoke(txn, obj, inv.clone()) {
            Ok(resp) => {
                d.last = Some(resp);
                d.blocked_epoch = None;
                true
            }
            Err(TxnError::Blocked { .. }) => {
                if fresh {
                    report.blocked_ops += 1;
                }
                d.pending = Some(Step::Invoke(obj, inv));
                d.blocked_epoch = Some(epoch(sys.stats()));
                false
            }
            Err(TxnError::Aborted(_)) => {
                let jitter = restart_jitter(sys, cfg, txn, d.retries);
                restart(d, cfg, report, sys.stats().committed, jitter);
                true
            }
            Err(e) => panic!("script error: {e}"),
        },
        Step::Commit => {
            // Volatile runs still get a commit-total phase window: here it
            // covers exactly the validate+apply work (no journal below us).
            let total = sys.obs_mut().span_begin(Phase::CommitTotal);
            let outcome = sys.commit(txn);
            sys.obs_mut().span_end(total);
            match outcome {
                Ok(()) => {
                    d.done = true;
                    d.committed = true;
                    true
                }
                Err(TxnError::Aborted(_)) => {
                    let jitter = restart_jitter(sys, cfg, txn, d.retries);
                    restart(d, cfg, report, sys.stats().committed, jitter);
                    true
                }
                Err(e) => panic!("commit error: {e}"),
            }
        }
        Step::Abort => {
            sys.abort(txn).expect("active transaction");
            d.done = true;
            d.voluntary_abort = true;
            true
        }
    }
}

/// With backoff enabled, compute this restart's seeded jitter and record it
/// in the retry-jitter histogram; with backoff off the restart is immediate
/// and nothing is sampled.
fn restart_jitter<A, E, C>(
    sys: &mut TxnSystem<A, E, C>,
    cfg: &SchedulerCfg,
    txn: TxnId,
    retries: usize,
) -> u64
where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
{
    if !cfg.backoff {
        return 0;
    }
    let jitter = seeded_jitter(cfg.seed, txn.0 as u64, retries);
    sys.obs_mut().on_retry_jitter(jitter);
    jitter
}

/// Deterministic restart jitter: a seeded hash of the restarting
/// transaction and its retry count, bounded by the exponential base for
/// that retry. Jitter decorrelates the restart schedule of a conflict
/// clique (all victims of one storm would otherwise wake in lockstep and
/// collide again) while keeping the run a pure function of the seed.
pub(crate) fn seeded_jitter(seed: u64, salt: u64, retries: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (seed, salt, retries as u64).hash(&mut h);
    h.finish() % (backoff_base(retries) + 1)
}

/// Exponential backoff base for the `retries`-th restart, in scheduler
/// rounds: 1, 2, 4, … capped at 32 so an exhausted retry budget cannot
/// stretch a run past `max_rounds`.
pub(crate) fn backoff_base(retries: usize) -> u64 {
    1u64 << retries.min(5)
}

/// Reset a driver after a system abort. The driver sleeps (via
/// `blocked_epoch`) until the next completion event so that a restarted
/// deadlock victim does not immediately re-acquire its locks and get chosen
/// as the victim again — without this, clique-shaped conflicts livelock.
/// On top of that it backs off exponentially with the caller's seeded
/// jitter, so repeat offenders retreat further each time.
fn restart<A: Adt>(
    d: &mut Driver<A>,
    cfg: &SchedulerCfg,
    report: &mut RunReport,
    commits_now: u64,
    jitter: u64,
) {
    d.txn = None;
    d.last = None;
    d.pending = None;
    d.blocked_epoch = None;
    d.sleep_until_commit = Some(commits_now);
    d.backoff_rounds = if cfg.backoff { backoff_base(d.retries) + jitter } else { 0 };
    d.retries += 1;
    report.retries += 1;
    d.script.reset();
    if d.retries > cfg.max_retries {
        d.done = true;
    }
}

fn abort_and_restart<A, E, C>(
    sys: &mut TxnSystem<A, E, C>,
    drivers: &mut [Driver<A>],
    victim: TxnId,
    cfg: &SchedulerCfg,
    report: &mut RunReport,
) where
    A: Adt,
    E: RecoveryEngine<A>,
    C: Conflict<A>,
{
    sys.abort_with(victim, AbortReason::Deadlock).expect("victim is active");
    let commits = sys.stats().committed;
    if let Some(d) = drivers.iter_mut().find(|d| d.txn == Some(victim)) {
        let jitter = restart_jitter(sys, cfg, victim, d.retries);
        restart(d, cfg, report, commits, jitter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DuEngine, UipEngine};
    use crate::script::OpsScript;
    use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
    use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};
    use ccr_core::ids::ObjectId;

    const X: ObjectId = ObjectId::SOLE;

    fn transfer_scripts(n: usize) -> Vec<Box<dyn Script<BankAccount>>> {
        // Each deposits 2 then withdraws 1 on the single hot account.
        (0..n)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect()
    }

    #[test]
    fn uip_nrbc_runs_hotspot_without_blocking() {
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let report = run(&mut sys, transfer_scripts(8), &SchedulerCfg::default());
        assert_eq!(report.committed, 8);
        assert_eq!(report.gave_up, 0);
        assert_eq!(sys.committed_state(X), 8);
        // Every recorded execution must be dynamic atomic (Theorem 9).
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn du_nfc_commits_all_with_blocking() {
        let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nfc());
        let report = run(&mut sys, transfer_scripts(8), &SchedulerCfg::default());
        assert_eq!(report.committed, 8);
        assert_eq!(sys.committed_state(X), 8);
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn admission_control_bounds_in_flight_transactions() {
        // With MPL 1 everything serialises: no blocks, no deadlocks, ever —
        // even on the clique-shaped hotspot that thrashes unthrottled.
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let cfg = SchedulerCfg { mpl: 1, ..Default::default() };
        let report = run(&mut sys, transfer_scripts(8), &cfg);
        assert_eq!(report.committed, 8);
        assert_eq!(report.blocked_ops, 0);
        assert_eq!(report.deadlock_aborts, 0);
        assert!(report.admission_rounds > 0);
        assert_eq!(sys.committed_state(X), 8);
    }

    #[test]
    fn deadlines_type_the_abort_and_everything_still_commits() {
        // Blocking DU hotspot under a tight deadline: transactions stuck
        // behind the lock queue exceed their round budget, are aborted with
        // the typed Deadline reason, back off with seeded jitter, and every
        // script still commits within the retry budget.
        let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nfc());
        let cfg = SchedulerCfg { deadline: 6, backoff: true, ..Default::default() };
        let report = run(&mut sys, transfer_scripts(8), &cfg);
        assert_eq!(report.committed, 8);
        assert_eq!(report.gave_up, 0);
        assert_eq!(sys.committed_state(X), 8);
        assert!(report.stats.deadline_aborts > 0, "the tight deadline must fire");
        assert!(report.retries > 0, "deadline aborts restart the script");
        let spec = SystemSpec::single(BankAccount::default());
        assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
    }

    #[test]
    fn deadline_runs_are_deterministic() {
        let run_once = || {
            let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
                TxnSystem::new(BankAccount::default(), 1, bank_nfc());
            let cfg = SchedulerCfg { seed: 11, deadline: 6, backoff: true, ..Default::default() };
            let r = run(&mut sys, transfer_scripts(8), &cfg);
            (r.rounds, r.retries, r.stats.deadline_aborts, sys.trace().clone())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn voluntary_aborts_are_counted_not_retried() {
        use crate::script::ConditionalScript;
        use ccr_adt::bank::BankResp;
        // Withdraw 5 from an empty account; on refusal, abort voluntarily.
        fn decide(pos: usize, last: Option<&BankResp>) -> Step<BankAccount> {
            match pos {
                0 => Step::Invoke(X, BankInv::Withdraw(5)),
                _ => match last {
                    Some(BankResp::Ok) => Step::Commit,
                    _ => Step::Abort,
                },
            }
        }
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let scripts: Vec<Box<dyn Script<BankAccount>>> =
            vec![Box::new(ConditionalScript::new(decide))];
        let report = run(&mut sys, scripts, &SchedulerCfg::default());
        assert_eq!(report.voluntary_aborts, 1);
        assert_eq!(report.committed, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(sys.committed_state(X), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run_once = |seed: u64| {
            let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
                TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
            let cfg = SchedulerCfg { seed, ..Default::default() };
            let r = run(&mut sys, transfer_scripts(6), &cfg);
            (r.stats.ops, r.stats.blocks, sys.trace().clone())
        };
        assert_eq!(run_once(7).2, run_once(7).2);
        assert_eq!(run_once(7).0, run_once(7).0);
    }

    #[test]
    fn no_wait_terminates_on_the_hotspot() {
        use crate::system::ConflictPolicy;
        // A conflict-heavy hotspot under no-wait: every conflict aborts the
        // requester, yet retries with post-abort backoff drain the queue.
        let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc())
                .with_policy(ConflictPolicy::NoWait);
        let scripts: Vec<Box<dyn Script<BankAccount>>> = (0..8)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Balance, BankInv::Deposit(1)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect();
        let report = run(&mut sys, scripts, &SchedulerCfg::default());
        assert_eq!(report.committed, 8);
        assert_eq!(report.deadlock_aborts, 0, "no-wait never needs detection");
        assert!(report.stats.conflict_aborts > 0, "conflicts occurred");
        assert_eq!(sys.committed_state(X), 8);
    }

    #[test]
    fn wound_wait_is_deadlock_free() {
        use crate::system::ConflictPolicy;
        use ccr_core::ids::ObjectId;
        // The crosswise balance/deposit pattern that deadlocks under the
        // blocking policy cannot deadlock under wound-wait: no deadlock
        // aborts may ever be needed.
        let y = ObjectId(1);
        for seed in 0..8u64 {
            let mut sys: TxnSystem<BankAccount, UipEngine<BankAccount>, _> =
                TxnSystem::new(BankAccount::default(), 2, bank_nrbc())
                    .with_policy(ConflictPolicy::WoundWait);
            let mut scripts: Vec<Box<dyn Script<BankAccount>>> = Vec::new();
            for i in 0..8 {
                let (a, b) = if i % 2 == 0 {
                    (ccr_core::ids::ObjectId(0), y)
                } else {
                    (y, ccr_core::ids::ObjectId(0))
                };
                scripts.push(Box::new(OpsScript::new(vec![
                    (a, BankInv::Balance),
                    (b, BankInv::Deposit(1)),
                ])));
            }
            let cfg = SchedulerCfg { seed, ..Default::default() };
            let report = run(&mut sys, scripts, &cfg);
            assert_eq!(report.committed, 8, "all must commit (seed {seed})");
            assert_eq!(report.deadlock_aborts, 0, "wound-wait never deadlocks");
            // The committed trace remains dynamic atomic.
            use ccr_core::atomicity::{check_dynamic_atomic, SystemSpec};
            let spec = SystemSpec::uniform(BankAccount::default(), 2);
            assert!(check_dynamic_atomic(&spec, sys.trace()).is_ok());
        }
    }

    #[test]
    fn mismatched_pairing_still_terminates_correctly() {
        // DU with the (insufficient) NRBC relation: validation aborts kick
        // in, every script eventually commits via retry, and the committed
        // trace remains atomic.
        let mut sys: TxnSystem<BankAccount, DuEngine<BankAccount>, _> =
            TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
        let scripts: Vec<Box<dyn Script<BankAccount>>> = (0..6)
            .map(|_| {
                Box::new(OpsScript::on(X, vec![BankInv::Deposit(5), BankInv::Withdraw(3)]))
                    as Box<dyn Script<BankAccount>>
            })
            .collect();
        let report = run(&mut sys, scripts, &SchedulerCfg::default());
        assert_eq!(report.committed, 6);
        assert_eq!(sys.committed_state(X), 12);
    }
}
