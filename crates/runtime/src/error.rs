//! Runtime error types.

use ccr_core::ids::{ObjectId, TxnId};
use std::fmt;

/// Why a transaction was aborted by the system (as opposed to by the
/// application calling `abort`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// Chosen as a deadlock victim.
    Deadlock,
    /// Deferred-update commit validation failed: the intentions list could
    /// not be applied to the committed base state. Cannot happen when the
    /// conflict relation contains `NFC` (Theorem 10); with weaker relations
    /// it is the runtime's last line of defence.
    Validation,
    /// The application requested the abort.
    Requested,
    /// Aborted because the conflict policy aborts requesters instead of
    /// blocking them (optimistic-flavoured configurations).
    ConflictAbort,
    /// The transaction exceeded its logical-time deadline. Deadline aborts
    /// go through the ordinary abort path, so they are atomicity-preserving
    /// by construction — the journal never sees the transaction.
    Deadline,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Deadlock => write!(f, "deadlock victim"),
            AbortReason::Validation => write!(f, "deferred-update validation failed"),
            AbortReason::Requested => write!(f, "requested"),
            AbortReason::ConflictAbort => write!(f, "conflict (abort policy)"),
            AbortReason::Deadline => write!(f, "deadline exceeded"),
        }
    }
}

/// Errors surfaced by [`crate::system::TxnSystem`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxnError {
    /// The operation conflicts with operations held by the listed active
    /// transactions; the caller should wait for one of them to finish (or
    /// abort and retry, per policy).
    Blocked {
        /// Transactions holding conflicting operations.
        on: Vec<TxnId>,
    },
    /// The transaction has been aborted.
    Aborted(AbortReason),
    /// The transaction id is unknown or already completed.
    NotActive(TxnId),
    /// The object id is unknown.
    NoSuchObject(ObjectId),
    /// The invocation has no legal response in the transaction's view —
    /// either the specification is partial here, or (with a too-weak
    /// conflict relation) recovery corrupted the view.
    NoLegalResponse,
    /// The durable system is in read-only degraded mode (exhausted device
    /// retries or a full device): the commit was refused and the
    /// transaction's volatile effects rolled back. Reads keep serving;
    /// healing the device and writing a checkpoint restores writes.
    ReadOnly,
    /// The admission gate shed this commit: the in-flight journal backlog
    /// exceeded its bound, so the transaction was cleanly aborted before
    /// the journal saw it. The caller should back off and retry — shedding
    /// is overload protection, not failure.
    Shed,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Blocked { on } => write!(f, "blocked on {on:?}"),
            TxnError::Aborted(r) => write!(f, "aborted: {r}"),
            TxnError::NotActive(t) => write!(f, "transaction {t} is not active"),
            TxnError::NoSuchObject(o) => write!(f, "no such object {o}"),
            TxnError::NoLegalResponse => write!(f, "no legal response in view"),
            TxnError::ReadOnly => write!(f, "system is in read-only degraded mode"),
            TxnError::Shed => write!(f, "shed by the admission gate (journal backlog)"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Internal recovery failures (engine level).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoveryError {
    /// Replaying the surviving log after an abort failed: some remaining
    /// operation is no longer legal. Cannot happen when the conflict
    /// relation contains `NRBC` (Theorem 9).
    ReplayFailed {
        /// Object whose log could not be replayed.
        obj: ObjectId,
    },
    /// A deferred-update intentions list could not be applied at commit.
    ApplyFailed {
        /// Object whose intentions could not be applied.
        obj: ObjectId,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::ReplayFailed { obj } => {
                write!(f, "undo replay failed at {obj} (conflict relation ⊉ NRBC?)")
            }
            RecoveryError::ApplyFailed { obj } => {
                write!(f, "intentions apply failed at {obj} (conflict relation ⊉ NFC?)")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}
