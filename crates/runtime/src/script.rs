//! Transaction scripts: restartable descriptions of a transaction's logic.
//!
//! Schedulers re-run scripts when their transaction is chosen as a deadlock
//! victim or fails deferred-update validation, so a script must be
//! resettable. Most workloads are fixed operation lists ([`OpsScript`]);
//! response-dependent logic implements [`Script`] directly (see
//! [`ConditionalScript`] for a worked example used in tests).

use ccr_core::adt::Adt;
use ccr_core::ids::ObjectId;

/// One step of a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step<A: Adt> {
    /// Invoke an operation.
    Invoke(ObjectId, A::Invocation),
    /// Commit and finish.
    Commit,
    /// Abort voluntarily and finish.
    Abort,
}

/// A restartable transaction body.
pub trait Script<A: Adt>: Send {
    /// Restart from the beginning (called before first use and on retry).
    fn reset(&mut self);

    /// The next step. `last` is the response to the previous `Invoke` (or
    /// `None` at the start). Must eventually return `Commit` or `Abort`.
    fn next(&mut self, last: Option<&A::Response>) -> Step<A>;
}

/// A fixed list of invocations followed by a commit.
pub struct OpsScript<A: Adt> {
    steps: Vec<(ObjectId, A::Invocation)>,
    pos: usize,
}

impl<A: Adt> OpsScript<A> {
    /// Create from `(object, invocation)` pairs.
    pub fn new(steps: Vec<(ObjectId, A::Invocation)>) -> Self {
        OpsScript { steps, pos: 0 }
    }

    /// Convenience: all invocations target a single object.
    pub fn on(obj: ObjectId, invs: Vec<A::Invocation>) -> Self {
        OpsScript::new(invs.into_iter().map(|i| (obj, i)).collect())
    }
}

impl<A: Adt> Script<A> for OpsScript<A> {
    fn reset(&mut self) {
        self.pos = 0;
    }

    fn next(&mut self, _last: Option<&A::Response>) -> Step<A> {
        match self.steps.get(self.pos) {
            Some((obj, inv)) => {
                self.pos += 1;
                Step::Invoke(*obj, inv.clone())
            }
            None => Step::Commit,
        }
    }
}

/// A script whose continuation depends on the previous response via a pure
/// decision function — enough for "check then act" transactions while
/// remaining trivially resettable.
pub struct ConditionalScript<A: Adt> {
    /// `decide(step_index, last_response)` returns the next step.
    decide: fn(usize, Option<&A::Response>) -> Step<A>,
    pos: usize,
}

impl<A: Adt> ConditionalScript<A> {
    /// Create from the decision function.
    pub fn new(decide: fn(usize, Option<&A::Response>) -> Step<A>) -> Self {
        ConditionalScript { decide, pos: 0 }
    }
}

impl<A: Adt> Script<A> for ConditionalScript<A> {
    fn reset(&mut self) {
        self.pos = 0;
    }

    fn next(&mut self, last: Option<&A::Response>) -> Step<A> {
        let step = (self.decide)(self.pos, last);
        self.pos += 1;
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_adt::bank::{BankAccount, BankInv, BankResp};

    #[test]
    fn ops_script_replays_after_reset() {
        let mut s: OpsScript<BankAccount> =
            OpsScript::on(ObjectId::SOLE, vec![BankInv::Deposit(1), BankInv::Balance]);
        assert!(matches!(s.next(None), Step::Invoke(_, BankInv::Deposit(1))));
        assert!(matches!(s.next(None), Step::Invoke(_, BankInv::Balance)));
        assert!(matches!(s.next(None), Step::Commit));
        s.reset();
        assert!(matches!(s.next(None), Step::Invoke(_, BankInv::Deposit(1))));
    }

    #[test]
    fn conditional_script_branches_on_response() {
        // Withdraw 5; if refused, abort instead of committing.
        fn decide(pos: usize, last: Option<&BankResp>) -> Step<BankAccount> {
            match pos {
                0 => Step::Invoke(ObjectId::SOLE, BankInv::Withdraw(5)),
                _ => match last {
                    Some(BankResp::Ok) => Step::Commit,
                    _ => Step::Abort,
                },
            }
        }
        let mut s = ConditionalScript::new(decide);
        assert!(matches!(s.next(None), Step::Invoke(..)));
        assert!(matches!(s.next(Some(&BankResp::No)), Step::Abort));
        s.reset();
        s.next(None);
        assert!(matches!(s.next(Some(&BankResp::Ok)), Step::Commit));
    }
}
