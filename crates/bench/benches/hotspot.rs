//! B1: end-to-end hot-spot workloads through the scheduler for every
//! configuration — the committed-work-per-wall-time comparison behind the
//! EXPERIMENTS.md shape claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccr_adt::bank::{bank_nfc, bank_nrbc, BankAccount, BankInv};
use ccr_adt::traits::RwConflict;
use ccr_core::conflict::{Conflict, SymmetricClosure};
use ccr_core::ids::ObjectId;
use ccr_runtime::engine::{DuEngine, RecoveryEngine, UipEngine};
use ccr_runtime::scheduler::{run, SchedulerCfg};
use ccr_runtime::script::Script;
use ccr_runtime::system::TxnSystem;
use ccr_workload::gen::{banking, deposit_only, withdraw_heavy, WorkloadCfg};

fn w() -> WorkloadCfg {
    WorkloadCfg { txns: 32, ops_per_txn: 3, objects: 2, hot_fraction: 0.9, seed: 11 }
}

fn run_one<E, C>(conflict: C, scripts: Vec<Box<dyn Script<BankAccount>>>) -> u64
where
    E: RecoveryEngine<BankAccount>,
    C: Conflict<BankAccount>,
{
    let mut sys: TxnSystem<BankAccount, E, C> = TxnSystem::new(BankAccount::default(), 2, conflict);
    sys.set_record_trace(false);
    let t = sys.begin();
    for i in 0..2 {
        sys.invoke(t, ObjectId(i), BankInv::Deposit(500)).unwrap();
    }
    sys.commit(t).unwrap();
    let report = run(&mut sys, scripts, &SchedulerCfg::default());
    report.committed
}

fn hotspot(c: &mut Criterion) {
    let cfg = w();
    let mut g = c.benchmark_group("hotspot");
    g.sample_size(20);
    for (wl_name, make) in [
        ("deposit-only", deposit_only as fn(&WorkloadCfg) -> _),
        ("withdraw-heavy", withdraw_heavy as fn(&WorkloadCfg) -> _),
    ] {
        g.bench_with_input(BenchmarkId::new("uip-nrbc", wl_name), &wl_name, |b, _| {
            b.iter(|| run_one::<UipEngine<BankAccount>, _>(bank_nrbc(), make(&cfg)))
        });
        g.bench_with_input(BenchmarkId::new("uip-sym-nrbc", wl_name), &wl_name, |b, _| {
            b.iter(|| {
                run_one::<UipEngine<BankAccount>, _>(SymmetricClosure(bank_nrbc()), make(&cfg))
            })
        });
        g.bench_with_input(BenchmarkId::new("du-nfc", wl_name), &wl_name, |b, _| {
            b.iter(|| run_one::<DuEngine<BankAccount>, _>(bank_nfc(), make(&cfg)))
        });
        g.bench_with_input(BenchmarkId::new("uip-2pl", wl_name), &wl_name, |b, _| {
            b.iter(|| {
                run_one::<UipEngine<BankAccount>, _>(
                    RwConflict::new(BankAccount::default()),
                    make(&cfg),
                )
            })
        });
    }
    // The mixed workload (documented thrash case) at a reduced MPL.
    let small = WorkloadCfg { txns: 12, ..cfg };
    g.bench_function("uip-nrbc/banking-mixed-mpl12", |b| {
        b.iter(|| run_one::<UipEngine<BankAccount>, _>(bank_nrbc(), banking(&small, 0.7)))
    });
    g.bench_function("uip-2pl/banking-mixed-mpl12", |b| {
        b.iter(|| {
            run_one::<UipEngine<BankAccount>, _>(
                RwConflict::new(BankAccount::default()),
                banking(&small, 0.7),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, hotspot);
criterion_main!(benches);
