//! Cost of the theorem machinery itself: relation extraction, the
//! counterexample constructions, and bounded model checking — the tooling a
//! user pays for when verifying a new ADT's conflict tables.

use criterion::{criterion_group, criterion_main, Criterion};

use ccr_adt::bank::{ops, BankAccount};
use ccr_core::commutativity::right_commutes_backward;
use ccr_core::conflict::{nfc_table, nrbc_table};
use ccr_core::equieffect::InclusionCfg;
use ccr_core::explore::ExploreCfg;
use ccr_core::ids::{ObjectId, TxnId};
use ccr_core::object::ObjectAutomaton;
use ccr_core::theorems::{check_correctness, probe_uip_boundary, uip_counterexample};
use ccr_core::view::Uip;

fn grid() -> Vec<ccr_core::adt::Op<BankAccount>> {
    vec![
        ops::deposit(1),
        ops::withdraw_ok(1),
        ops::withdraw_no(1),
        ops::balance(0),
        ops::balance(1),
    ]
}

fn relations(c: &mut Criterion) {
    let ba = BankAccount { amounts: vec![1, 2] };
    let cfg = InclusionCfg::default();
    let mut g = c.benchmark_group("theorems");
    g.bench_function("extract-nrbc+nfc (5-op grid)", |b| {
        b.iter(|| {
            let nrbc = nrbc_table(&ba, &grid(), cfg);
            let nfc = nfc_table(&ba, &grid(), cfg);
            (nrbc.density(), nfc.density())
        })
    });
    g.bench_function("counterexample-construct+verify", |b| {
        let p = ops::withdraw_ok(1);
        let q = ops::deposit(1);
        let fail = right_commutes_backward(&ba, &p, &q, cfg).unwrap_err();
        let nfc = nfc_table(&ba, &grid(), cfg);
        let automaton = ObjectAutomaton::new(ba.clone(), Uip, nfc, ObjectId::SOLE);
        b.iter(|| {
            let h = uip_counterexample(&p, &q, &fail, ObjectId::SOLE);
            automaton.accepts(&h).is_ok()
        })
    });
    g.bench_function("probe-uip-boundary (one missing pair)", |b| {
        let nrbc = nrbc_table(&ba, &grid(), cfg);
        let (p, q) = nrbc.pairs().into_iter().next().expect("non-empty");
        let weakened = nrbc.without(&p, &q);
        b.iter(|| probe_uip_boundary(&ba, &grid(), &weakened, cfg).unwrap().len())
    });
    g.sample_size(10);
    g.bench_function("bounded-model-check (2 txns, 2 ops)", |b| {
        let nrbc = nrbc_table(&ba, &grid(), cfg);
        let automaton = ObjectAutomaton::new(ba.clone(), Uip, nrbc, ObjectId::SOLE);
        let ecfg = ExploreCfg {
            txns: vec![TxnId(0), TxnId(1)],
            max_ops_per_txn: 2,
            max_total_ops: 2,
            allow_aborts: true,
            max_histories: 0,
        };
        b.iter(|| {
            let report = check_correctness(&automaton, &ecfg, false);
            assert!(report.correct());
            report.stats.histories
        })
    });
    g.finish();
}

criterion_group!(benches, relations);
criterion_main!(benches);
