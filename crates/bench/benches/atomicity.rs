//! B2 (part 2): cost of the atomicity checkers — serializability search and
//! dynamic atomicity as a function of history size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccr_adt::bank::{bank_nrbc, BankAccount, BankInv};
use ccr_core::atomicity::{check_dynamic_atomic, find_serialization, SystemSpec};
use ccr_core::history::History;
use ccr_core::ids::ObjectId;
use ccr_runtime::scheduler::{run, SchedulerCfg};
use ccr_runtime::script::{OpsScript, Script};
use ccr_runtime::system::TxnSystem;

/// Produce a committed, interleaved history with `txns` transactions via the
/// runtime (each deposits then withdraws on the hot account).
fn history(txns: usize) -> History<BankAccount> {
    let mut sys: TxnSystem<BankAccount, ccr_runtime::UipEngine<BankAccount>, _> =
        TxnSystem::new(BankAccount::default(), 1, bank_nrbc());
    let scripts: Vec<Box<dyn Script<BankAccount>>> = (0..txns)
        .map(|_| {
            Box::new(OpsScript::on(ObjectId::SOLE, vec![BankInv::Deposit(2), BankInv::Withdraw(1)]))
                as Box<dyn Script<BankAccount>>
        })
        .collect();
    let _ = run(&mut sys, scripts, &SchedulerCfg::default());
    sys.trace().clone()
}

fn checkers(c: &mut Criterion) {
    let spec = SystemSpec::single(BankAccount::default());
    let mut g = c.benchmark_group("atomicity");
    for txns in [2usize, 4, 6, 8] {
        let h = history(txns);
        g.bench_with_input(BenchmarkId::new("find-serialization", txns), &h, |b, h| {
            b.iter(|| find_serialization(&spec, &h.permanent()))
        });
        g.bench_with_input(BenchmarkId::new("dynamic-atomic", txns), &h, |b, h| {
            b.iter(|| check_dynamic_atomic(&spec, h).is_ok())
        });
    }
    g.finish();
}

fn history_algebra(c: &mut Criterion) {
    let h = history(8);
    let mut g = c.benchmark_group("history");
    g.bench_function("opseq", |b| b.iter(|| h.opseq().len()));
    g.bench_function("precedes", |b| b.iter(|| h.precedes().len()));
    g.bench_function("permanent+serial", |b| {
        b.iter(|| {
            let p = h.permanent();
            let order: Vec<_> = p.txns().into_iter().collect();
            p.serial(&order).len()
        })
    });
    g.finish();
}

criterion_group!(benches, checkers, history_algebra);
criterion_main!(benches);
