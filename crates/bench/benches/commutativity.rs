//! B2 (part 1): cost of the commutativity decision procedures — the
//! machinery behind Figures 6-1/6-2 and the `NFC`/`NRBC` relations.
//!
//! Benchmarks single-pair FC/RBC checks, whole-table construction for the
//! bank (Figure 6-1/6-2 regeneration), and the scaling of the state-cover
//! engine with the cover size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccr_adt::bank::{ops, BankAccount};
use ccr_adt::set::{ops as set_ops, IntSet};
use ccr_core::commutativity::{build_tables, commute_forward, right_commutes_backward};
use ccr_core::conflict::{nfc_table, nrbc_table};
use ccr_core::equieffect::InclusionCfg;

fn single_pair(c: &mut Criterion) {
    let ba = BankAccount::default();
    let cfg = InclusionCfg::default();
    let mut g = c.benchmark_group("commutativity/single-pair");
    g.bench_function("fc/deposit-withdraw (commutes)", |b| {
        b.iter(|| commute_forward(&ba, &ops::deposit(2), &ops::withdraw_ok(3), cfg).is_ok())
    });
    g.bench_function("fc/withdraw-withdraw (conflicts)", |b| {
        b.iter(|| commute_forward(&ba, &ops::withdraw_ok(2), &ops::withdraw_ok(3), cfg).is_err())
    });
    g.bench_function("rbc/withdraw-deposit (conflicts)", |b| {
        b.iter(|| {
            right_commutes_backward(&ba, &ops::withdraw_ok(3), &ops::deposit(2), cfg).is_err()
        })
    });
    g.bench_function("rbc/deposit-withdraw (commutes)", |b| {
        b.iter(|| right_commutes_backward(&ba, &ops::deposit(2), &ops::withdraw_ok(3), cfg).is_ok())
    });
    g.finish();
}

fn figure_tables(c: &mut Criterion) {
    let cfg = InclusionCfg::default();
    let mut g = c.benchmark_group("commutativity/figures");
    g.bench_function("figure-6-1-and-6-2 (bank, 9-op grid)", |b| {
        let ba = BankAccount::default();
        let grid = vec![
            ops::deposit(1),
            ops::deposit(2),
            ops::withdraw_ok(1),
            ops::withdraw_ok(2),
            ops::withdraw_no(1),
            ops::withdraw_no(2),
            ops::balance(0),
            ops::balance(1),
            ops::balance(2),
        ];
        b.iter(|| build_tables(&ba, &grid, cfg))
    });
    g.bench_function("nfc+nrbc extraction (bank)", |b| {
        let ba = BankAccount::default();
        let grid = vec![ops::deposit(1), ops::withdraw_ok(1), ops::withdraw_no(1), ops::balance(0)];
        b.iter(|| {
            let nfc = nfc_table(&ba, &grid, cfg);
            let nrbc = nrbc_table(&ba, &grid, cfg);
            (nfc.density(), nrbc.density())
        })
    });
    g.finish();
}

fn cover_scaling(c: &mut Criterion) {
    // The set's cover is the powerset of the mentioned elements: 2^n states.
    let cfg = InclusionCfg::default();
    let mut g = c.benchmark_group("commutativity/cover-scaling");
    for n in [1u8, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("set-insert-pair", n), &n, |b, &n| {
            let set = IntSet { elems: (0..n).collect() };
            b.iter(|| {
                commute_forward(&set, &set_ops::insert_added(0), &set_ops::insert_added(0), cfg)
                    .is_err()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, single_pair, figure_tables, cover_scaling);
criterion_main!(benches);
