//! Recovery-engine micro-benchmarks and the undo-strategy ablation.
//!
//! * operation execution cost under UIP vs DU;
//! * commit cost (UIP's trivial commit vs DU's validate-and-apply);
//! * **abort cost** vs the number of concurrent operations in the log —
//!   the design-choice ablation from DESIGN.md: inverse-based undo is O(own
//!   ops) while replay-based undo is O(log), and DU aborts are O(1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccr_adt::bank::{ops, BankAccount};
use ccr_core::adt::{Adt, Op};
use ccr_core::ids::{ObjectId, TxnId};
use ccr_runtime::engine::{DuEngine, RecoveryEngine, UipEngine, UipInverseEngine};

fn record<E: RecoveryEngine<BankAccount>>(e: &mut E, txn: TxnId, op: Op<BankAccount>) {
    let s = e.view_state(txn);
    let post = BankAccount::default().apply(&s, &op).into_iter().next().expect("legal");
    e.record(txn, op, post);
}

fn op_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/op");
    g.bench_function("uip/deposit", |b| {
        let mut e = UipEngine::new(BankAccount::default(), ObjectId::SOLE);
        let mut i = 0u32;
        b.iter(|| {
            record(&mut e, TxnId(i % 8), ops::deposit(1));
            i += 1;
        })
    });
    g.bench_function("du/deposit", |b| {
        let mut e = DuEngine::new(BankAccount::default(), ObjectId::SOLE);
        let mut i = 0u32;
        b.iter(|| {
            record(&mut e, TxnId(i % 8), ops::deposit(1));
            i += 1;
        })
    });
    g.finish();
}

fn commit_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/commit");
    for ops_per_txn in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::new("uip", ops_per_txn), &ops_per_txn, |b, &n| {
            let mut next = 0u32;
            b.iter_batched(
                || {
                    let mut e = UipEngine::new(BankAccount::default(), ObjectId::SOLE);
                    let t = TxnId(next);
                    next += 1;
                    for _ in 0..n {
                        record(&mut e, t, ops::deposit(1));
                    }
                    (e, t)
                },
                |(mut e, t)| {
                    e.prepare_commit(t).unwrap();
                    e.commit(t);
                },
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("du", ops_per_txn), &ops_per_txn, |b, &n| {
            let mut next = 0u32;
            b.iter_batched(
                || {
                    let mut e = DuEngine::new(BankAccount::default(), ObjectId::SOLE);
                    let t = TxnId(next);
                    next += 1;
                    for _ in 0..n {
                        record(&mut e, t, ops::deposit(1));
                    }
                    (e, t)
                },
                |(mut e, t)| {
                    e.prepare_commit(t).unwrap();
                    e.commit(t);
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The ablation: abort one transaction's single op while `log` other
/// operations from concurrent transactions sit in the log.
fn abort_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/abort-vs-log");
    for log in [4usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("uip-replay", log), &log, |b, &log| {
            b.iter_batched(
                || {
                    let mut e = UipEngine::new(BankAccount::default(), ObjectId::SOLE);
                    record(&mut e, TxnId(0), ops::deposit(1));
                    for i in 0..log {
                        record(&mut e, TxnId(1 + (i as u32 % 4)), ops::deposit(1));
                    }
                    e
                },
                |mut e| e.abort(TxnId(0)).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("uip-inverse", log), &log, |b, &log| {
            b.iter_batched(
                || {
                    let mut e = UipInverseEngine::new(BankAccount::default(), ObjectId::SOLE);
                    record(&mut e, TxnId(0), ops::deposit(1));
                    for i in 0..log {
                        record(&mut e, TxnId(1 + (i as u32 % 4)), ops::deposit(1));
                    }
                    e
                },
                |mut e| e.abort(TxnId(0)).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("du", log), &log, |b, &log| {
            b.iter_batched(
                || {
                    let mut e = DuEngine::new(BankAccount::default(), ObjectId::SOLE);
                    record(&mut e, TxnId(0), ops::deposit(1));
                    for i in 0..log {
                        record(&mut e, TxnId(1 + (i as u32 % 4)), ops::deposit(1));
                    }
                    e
                },
                |mut e| e.abort(TxnId(0)).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, op_execution, commit_cost, abort_cost);
criterion_main!(benches);
