//! The structured event schema (see DESIGN.md §8).
//!
//! Every runtime action of interest becomes one [`ObsEvent`], stamped with
//! the tracer's **logical event clock** (a `u64` that ticks once per emitted
//! event) and, in threaded runs that opt in, a wall-clock microsecond offset.
//! The logical stamp is the deterministic one: the same seed produces the
//! same event sequence with the same stamps, byte for byte, which is what
//! makes traces diffable CI artifacts. Wall stamps are for humans reading a
//! threaded profile and are off by default.

use ccr_core::ids::{ObjectId, TxnId};

use crate::span::Phase;

/// Why a transaction was aborted, as observed by the tracer. Richer than the
/// runtime's public `AbortReason`: it separates the abort paths that the
/// legacy counters distinguished (wound-wait victims vs no-wait requesters
/// vs externally forced aborts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// The application asked for the abort.
    Requested,
    /// Chosen as a deadlock victim.
    Deadlock,
    /// Deferred-update validation failed.
    Validation,
    /// Wounded by an older transaction under the wound-wait policy.
    Wounded,
    /// Aborted as a conflicting requester under the no-wait policy.
    NoWaitConflict,
    /// Aborted from outside the lock manager (fault injection, drivers).
    External,
    /// The transaction exceeded its logical-time deadline.
    Deadline,
}

impl AbortCause {
    /// Short lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Requested => "requested",
            AbortCause::Deadlock => "deadlock",
            AbortCause::Validation => "validation",
            AbortCause::Wounded => "wounded",
            AbortCause::NoWaitConflict => "nowait",
            AbortCause::External => "external",
            AbortCause::Deadline => "deadline",
        }
    }
}

/// Which fault-injection counter an injected fault bumps (the crash-shaped
/// faults are counted by their [`EventKind::Recovery`] / torn-write events
/// instead, mirroring the pre-tracer counter semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCounter {
    /// A transaction was force-aborted by the plan.
    ForcedAbort,
    /// Every active transaction was aborted at once.
    WoundStorm,
    /// The next commit was artificially delayed.
    DelayedCommit,
    /// A commit's flush was torn at sector granularity.
    SectorTear,
    /// A commit's multi-sector flush reached the platter out of order.
    ReorderedFlush,
    /// The device was armed to fail checked ops with transient I/O errors.
    TransientIo,
    /// The device was put in the permanent out-of-space condition.
    DiskFull,
    /// The device was armed to serve checked ops slowly (gray failure).
    SlowDevice,
    /// The device was armed to stall fsyncs (gray failure).
    FsyncStall,
}

/// What kind of physical log damage recovery's scanner classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A frame's CRC failed: bits changed at rest.
    BitFlip,
    /// The log's tail is incomplete (torn frame or a hole where the frame's
    /// extent should be).
    TornTail,
    /// Damage *before* intact frames — unrecoverable under any tail policy.
    Interior,
}

impl CorruptionKind {
    /// Short lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::BitFlip => "bitflip",
            CorruptionKind::TornTail => "torn_tail",
            CorruptionKind::Interior => "interior",
        }
    }
}

/// A wait-for-graph snapshot: `(waiter, holders)` edges at the instant of a
/// block or wound event.
pub type WaitGraph = Vec<(TxnId, Vec<TxnId>)>;

/// What happened. String payloads are rendered lazily (only when event
/// recording is on), so the counters-only mode never allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction began.
    Begin,
    /// An operation executed: invocation, chosen response, and the logical
    /// ticks the invocation spent blocked before succeeding (0 when it ran
    /// on the first attempt).
    Op {
        /// Rendered invocation.
        inv: String,
        /// Rendered response.
        resp: String,
        /// Logical ticks between the first blocked attempt and success.
        waited: u64,
    },
    /// An invocation found every legal response in conflict and blocked.
    Block {
        /// Rendered invocation.
        inv: String,
        /// The conflicting holders.
        on: Vec<TxnId>,
        /// Snapshot of the whole wait-for graph, including the new edges.
        graph: WaitGraph,
    },
    /// A previously blocked transaction's invocation succeeded.
    Unblock {
        /// Logical ticks spent blocked.
        waited: u64,
    },
    /// A holder was wounded (aborted) by an older requester.
    Wound {
        /// The older requester that wounded this transaction.
        by: TxnId,
        /// Wait-for graph at the instant of the wound.
        graph: WaitGraph,
    },
    /// The transaction committed at every object it touched.
    Commit,
    /// The transaction aborted.
    Abort {
        /// Why.
        cause: AbortCause,
    },
    /// Undo-replay failed while aborting (weak conflict relation under UIP).
    ReplayFailure,
    /// A torn journal record was injected (crash mid-flush).
    TornWrite {
        /// Index of the torn record.
        record: usize,
    },
    /// Crash recovery completed by replaying the journal.
    Recovery {
        /// Committed records replayed.
        replayed: usize,
    },
    /// A fault-plan entry fired (the crash-shaped ones are followed by
    /// [`EventKind::Recovery`] once the rebuild succeeds).
    Fault {
        /// The fault's compact text form (`crash`, `torn2`, `abort`, …).
        kind: String,
        /// Which injection counter the fault bumped, if it took effect
        /// (`None` for crash-shaped faults — those are counted by their
        /// recovery/torn-write events — and for no-op injections).
        counter: Option<FaultCounter>,
    },
    /// Recovery scanned the durable log segments.
    SegmentScan {
        /// Segments visited.
        segments: u64,
        /// Valid frames decoded.
        frames: u64,
        /// Sectors read.
        sectors: u64,
        /// Damage classification (`clean`, `torn-tail`, `interior`, …).
        damage: String,
    },
    /// The scanner detected physical log damage.
    CorruptionDetected {
        /// What kind of damage.
        kind: CorruptionKind,
        /// The first affected sector.
        sector: u64,
    },
    /// A checkpoint was written (and the log prefix truncated).
    Checkpoint {
        /// Committed records folded into the checkpoint image.
        records: u64,
        /// Whole log segments deleted by the truncation.
        truncated_segments: u64,
    },
    /// A group-commit flush made a batch of commit records durable with one
    /// fsync. Counter-neutral: the batch's transactions are counted by their
    /// own [`EventKind::Commit`] events.
    GroupFlush {
        /// Commit records in the flushed batch.
        batch: u64,
        /// Flush latency in wall microseconds (0 in logical-time runs).
        micros: u64,
    },
    /// A checked device operation was retried after transient I/O errors
    /// (one event per retried op, drained from the storage backend).
    IoRetry {
        /// Attempts consumed, including the final one.
        attempts: u32,
        /// Total logical-clock backoff ticks waited across the retries.
        backoff: u64,
        /// Whether the op eventually succeeded within the retry budget.
        ok: bool,
    },
    /// The durable system entered (or exited) read-only degraded mode.
    Degraded {
        /// `true` on entry (device failure), `false` on exit (healed device
        /// proved writable again by a checkpoint or recovery).
        entered: bool,
        /// Why the mode changed (rendered lazily; empty when exiting).
        reason: String,
    },
    /// The admission gate shed a commit: the in-flight journal backlog
    /// exceeded its bound, so the transaction was cleanly aborted before
    /// the journal saw it and told to back off.
    Shed,
    /// The durable path observed device stall time — the latency surplus
    /// the gray channels charged since the previous observation (one event
    /// per commit attempt that paid a stall).
    Stall {
        /// Extra logical ticks the device charged beyond healthy service.
        ticks: u64,
    },
    /// The recovery-convergence oracle leg ran: recovery was re-executed
    /// with a fresh crash injected at every device-op index and every
    /// eventual outcome matched the baseline.
    ConvergenceCheck {
        /// Nested-crash trials executed (one per device-op index).
        trials: u64,
        /// Device ops the baseline recovery consumed.
        device_ops: u64,
    },
    /// A participant durably journaled a 2PC PREPARE and voted yes: the
    /// transaction is in doubt on that shard until the decision lands.
    Prepare {
        /// Global (cross-shard) transaction id.
        gtid: u64,
    },
    /// The coordinator's decision for a prepared global transaction was
    /// durably journaled on a participant.
    Decide {
        /// Global transaction id.
        gtid: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// A recovery scan surfaced in-doubt transactions (prepares with no
    /// durable decision) awaiting resolution.
    InDoubt {
        /// In-doubt transactions found by the scan.
        count: u64,
    },
    /// An in-doubt transaction was resolved after recovery — by the
    /// coordinator's durable decision, or by presuming abort.
    Resolved {
        /// Global transaction id.
        gtid: u64,
        /// The resolved outcome (`false` includes presumed abort).
        commit: bool,
    },
    /// A profiled pipeline phase opened (see `ccr_obs::span`).
    /// Counter-neutral: phases measure time, they don't change outcomes.
    PhaseBegin {
        /// Which phase.
        phase: Phase,
    },
    /// A profiled pipeline phase closed. Counter-neutral.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Logical-tick duration (or deterministic phase units — device ops,
        /// records — for externally measured recovery stages).
        ticks: u64,
        /// Wall nanoseconds; 0 unless the tracer's wall clock is enabled.
        wall_ns: u64,
    },
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Logical event-clock stamp (monotonic, ticks once per event).
    pub seq: u64,
    /// Microseconds since the tracer's wall epoch; `None` unless wall
    /// stamping was explicitly enabled (threaded profiling runs).
    pub wall_us: Option<u64>,
    /// The transaction the event belongs to, if any.
    pub txn: Option<TxnId>,
    /// The object involved, if any.
    pub obj: Option<ObjectId>,
    /// What happened.
    pub kind: EventKind,
}

impl ObsEvent {
    /// Short lowercase name of the event kind (exporter phase names).
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            EventKind::Begin => "begin",
            EventKind::Op { .. } => "op",
            EventKind::Block { .. } => "block",
            EventKind::Unblock { .. } => "unblock",
            EventKind::Wound { .. } => "wound",
            EventKind::Commit => "commit",
            EventKind::Abort { .. } => "abort",
            EventKind::ReplayFailure => "replay_failure",
            EventKind::TornWrite { .. } => "torn_write",
            EventKind::Recovery { .. } => "recovery",
            EventKind::Fault { .. } => "fault",
            EventKind::SegmentScan { .. } => "segment_scan",
            EventKind::CorruptionDetected { .. } => "corruption",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::GroupFlush { .. } => "group_flush",
            EventKind::IoRetry { .. } => "io_retry",
            EventKind::Degraded { .. } => "degraded",
            EventKind::Shed => "shed",
            EventKind::Stall { .. } => "stall",
            EventKind::ConvergenceCheck { .. } => "convergence_check",
            EventKind::Prepare { .. } => "prepare",
            EventKind::Decide { .. } => "decide",
            EventKind::InDoubt { .. } => "in_doubt",
            EventKind::Resolved { .. } => "resolved",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
        }
    }
}

impl std::fmt::Display for FaultCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultCounter::ForcedAbort => "forced_abort",
            FaultCounter::WoundStorm => "wound_storm",
            FaultCounter::DelayedCommit => "delayed_commit",
            FaultCounter::SectorTear => "sector_tear",
            FaultCounter::ReorderedFlush => "reordered_flush",
            FaultCounter::TransientIo => "transient_io",
            FaultCounter::DiskFull => "disk_full",
            FaultCounter::SlowDevice => "slow_device",
            FaultCounter::FsyncStall => "fsync_stall",
        };
        write!(f, "{s}")
    }
}
