//! Trace and metrics exporters.
//!
//! Three renderings of one [`Tracer`]:
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON array format, loadable
//!   in `chrome://tracing` / Perfetto. Transactions map to *tids*, so each
//!   transaction gets its own row; spans (`ph:"X"`) cover op execution and
//!   lock waits, instants (`ph:"i"`) mark begins, commits, aborts, wounds,
//!   faults and recoveries.
//! * [`flame_summary`] — a compact text flamegraph: one line per
//!   `kind;detail` stack with its total logical-tick weight, suitable for
//!   `flamegraph.pl`-style folded-stack tooling or plain reading.
//! * [`MetricsReport`] — labels + counters + histogram percentile summaries,
//!   rendered to JSON by [`MetricsReport::to_json`].
//!
//! All three are deterministic: they render only logical-clock data unless
//! wall stamping was explicitly enabled, so the same seed yields
//! byte-identical output.

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::hist::HistogramSummary;
use crate::stats::SystemStats;
use crate::tracer::Tracer;

/// Escape a string for embedding in a JSON document (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &BTreeMap<String, String>) -> String {
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{}:{}", json_string(k), json_string(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// One Chrome `trace_event` record. `ts`/`dur` are the logical clock (or
/// wall microseconds when stamped); `tid` is the transaction id + 1 (tid 0
/// is reserved for system-wide events: faults, torn writes, recoveries).
fn chrome_record(
    ph: char,
    name: &str,
    cat: &str,
    tid: u64,
    ts: u64,
    dur: Option<u64>,
    args: &[(String, String)],
) -> String {
    let mut rec = format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        json_string(name),
        json_string(cat),
        ph,
        tid,
        ts
    );
    if let Some(d) = dur {
        rec.push_str(&format!(",\"dur\":{d}"));
    }
    if ph == 'i' {
        // Thread-scoped instant so each marker renders on its txn row.
        rec.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        let body: Vec<String> =
            args.iter().map(|(k, v)| format!("{}:{}", json_string(k), v.clone())).collect();
        rec.push_str(&format!(",\"args\":{{{}}}", body.join(",")));
    }
    rec.push('}');
    rec
}

fn txn_tid(txn: Option<ccr_core::ids::TxnId>) -> u64 {
    txn.map(|t| t.0 as u64 + 1).unwrap_or(0)
}

fn graph_json(graph: &[(ccr_core::ids::TxnId, Vec<ccr_core::ids::TxnId>)]) -> String {
    let edges: Vec<String> = graph
        .iter()
        .map(|(w, hs)| {
            let holders: Vec<String> = hs.iter().map(|h| format!("\"{h}\"")).collect();
            format!("\"{w}\":[{}]", holders.join(","))
        })
        .collect();
    format!("{{{}}}", edges.join(","))
}

/// Render the recorded events as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...],"otherData":{...labels...}}`).
pub fn chrome_trace(tracer: &Tracer) -> String {
    let mut records: Vec<String> = Vec::with_capacity(tracer.events().len() + 8);
    for e in tracer.events() {
        let ts = e.wall_us.unwrap_or(e.seq);
        let tid = txn_tid(e.txn);
        let obj = e.obj.map(|o| format!("\"{o}\""));
        let mut args: Vec<(String, String)> = vec![("seq".into(), e.seq.to_string())];
        if let Some(o) = &obj {
            args.push(("obj".into(), o.clone()));
        }
        match &e.kind {
            EventKind::Begin => {
                records.push(chrome_record('i', "begin", "txn", tid, ts, None, &args));
            }
            EventKind::Op { inv, resp, waited } => {
                args.push(("inv".into(), json_string(inv)));
                args.push(("resp".into(), json_string(resp)));
                // A span of 1 logical tick (+ any blocked wait drawn by the
                // preceding lock_wait span).
                args.push(("waited".into(), waited.to_string()));
                records.push(chrome_record('X', "op", "op", tid, ts, Some(1), &args));
            }
            EventKind::Block { inv, on, graph } => {
                args.push(("inv".into(), json_string(inv)));
                let holders: Vec<String> = on.iter().map(|h| format!("\"{h}\"")).collect();
                args.push(("on".into(), format!("[{}]", holders.join(","))));
                args.push(("wait_for".into(), graph_json(graph)));
                records.push(chrome_record('i', "block", "lock", tid, ts, None, &args));
            }
            EventKind::Unblock { waited } => {
                // Draw the wait as a span ending at the unblock instant.
                records.push(chrome_record(
                    'X',
                    "lock_wait",
                    "lock",
                    tid,
                    ts.saturating_sub(*waited),
                    Some(*waited),
                    &args,
                ));
            }
            EventKind::Wound { by, graph } => {
                args.push(("by".into(), format!("\"{by}\"")));
                args.push(("wait_for".into(), graph_json(graph)));
                records.push(chrome_record('i', "wound", "lock", tid, ts, None, &args));
            }
            EventKind::Commit => {
                records.push(chrome_record('i', "commit", "txn", tid, ts, None, &args));
            }
            EventKind::Abort { cause } => {
                args.push(("cause".into(), json_string(cause.label())));
                records.push(chrome_record('i', "abort", "txn", tid, ts, None, &args));
            }
            EventKind::ReplayFailure => {
                records.push(chrome_record(
                    'i',
                    "replay_failure",
                    "recovery",
                    tid,
                    ts,
                    None,
                    &args,
                ));
            }
            EventKind::TornWrite { record } => {
                args.push(("record".into(), record.to_string()));
                records.push(chrome_record('i', "torn_write", "recovery", tid, ts, None, &args));
            }
            EventKind::Recovery { replayed } => {
                args.push(("replayed".into(), replayed.to_string()));
                records.push(chrome_record('i', "recovery", "recovery", tid, ts, None, &args));
            }
            EventKind::Fault { kind, counter } => {
                args.push(("fault".into(), json_string(kind)));
                if let Some(c) = counter {
                    args.push(("counter".into(), json_string(&c.to_string())));
                }
                records.push(chrome_record('i', "fault", "fault", tid, ts, None, &args));
            }
            EventKind::SegmentScan { segments, frames, sectors, damage } => {
                args.push(("segments".into(), segments.to_string()));
                args.push(("frames".into(), frames.to_string()));
                args.push(("sectors".into(), sectors.to_string()));
                args.push(("damage".into(), json_string(damage)));
                records.push(chrome_record('i', "segment_scan", "storage", tid, ts, None, &args));
            }
            EventKind::CorruptionDetected { kind, sector } => {
                args.push(("kind".into(), json_string(kind.label())));
                args.push(("sector".into(), sector.to_string()));
                records.push(chrome_record('i', "corruption", "storage", tid, ts, None, &args));
            }
            EventKind::Checkpoint { records: recs, truncated_segments } => {
                args.push(("records".into(), recs.to_string()));
                args.push(("truncated".into(), truncated_segments.to_string()));
                records.push(chrome_record('i', "checkpoint", "storage", tid, ts, None, &args));
            }
            EventKind::GroupFlush { batch, micros } => {
                args.push(("batch".into(), batch.to_string()));
                args.push(("micros".into(), micros.to_string()));
                records.push(chrome_record('i', "group_flush", "storage", tid, ts, None, &args));
            }
            EventKind::IoRetry { attempts, backoff, ok } => {
                args.push(("attempts".into(), attempts.to_string()));
                args.push(("backoff".into(), backoff.to_string()));
                args.push(("ok".into(), ok.to_string()));
                records.push(chrome_record('i', "io_retry", "storage", tid, ts, None, &args));
            }
            EventKind::Degraded { entered, reason } => {
                args.push(("entered".into(), entered.to_string()));
                args.push(("reason".into(), json_string(reason)));
                records.push(chrome_record('i', "degraded", "storage", tid, ts, None, &args));
            }
            EventKind::Shed => {
                records.push(chrome_record('i', "shed", "storage", tid, ts, None, &args));
            }
            EventKind::Stall { ticks } => {
                args.push(("ticks".into(), ticks.to_string()));
                records.push(chrome_record('i', "stall", "storage", tid, ts, None, &args));
            }
            EventKind::ConvergenceCheck { trials, device_ops } => {
                args.push(("trials".into(), trials.to_string()));
                args.push(("device_ops".into(), device_ops.to_string()));
                records.push(chrome_record('i', "convergence", "recovery", tid, ts, None, &args));
            }
            EventKind::Prepare { gtid } => {
                args.push(("gtid".into(), gtid.to_string()));
                records.push(chrome_record('i', "prepare", "2pc", tid, ts, None, &args));
            }
            EventKind::Decide { gtid, commit } => {
                args.push(("gtid".into(), gtid.to_string()));
                args.push(("commit".into(), commit.to_string()));
                records.push(chrome_record('i', "decide", "2pc", tid, ts, None, &args));
            }
            EventKind::InDoubt { count } => {
                args.push(("count".into(), count.to_string()));
                records.push(chrome_record('i', "in_doubt", "2pc", tid, ts, None, &args));
            }
            EventKind::Resolved { gtid, commit } => {
                args.push(("gtid".into(), gtid.to_string()));
                args.push(("commit".into(), commit.to_string()));
                records.push(chrome_record('i', "resolved", "2pc", tid, ts, None, &args));
            }
            // The matching PhaseEnd renders the whole span; the begin event
            // exists for the logical clock and stream readers only.
            EventKind::PhaseBegin { .. } => {}
            EventKind::PhaseEnd { phase, ticks, wall_ns } => {
                args.push(("ticks".into(), ticks.to_string()));
                args.push(("wall_ns".into(), wall_ns.to_string()));
                records.push(chrome_record(
                    'X',
                    phase.label(),
                    phase.path(),
                    tid,
                    ts.saturating_sub(*ticks),
                    Some((*ticks).max(1)),
                    &args,
                ));
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{}}}\n",
        records.join(",\n"),
        json_labels(tracer.labels())
    )
}

/// Render a compact folded-stack flamegraph summary: one `stack weight` line
/// per distinct event stack, weighted by logical ticks (spans use their
/// duration, instants weigh 1), sorted by stack name for determinism.
pub fn flame_summary(tracer: &Tracer) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for e in tracer.events() {
        let (stack, weight) = match &e.kind {
            EventKind::Op { inv, .. } => (format!("op;{inv}"), 1),
            EventKind::Unblock { waited } => ("lock;wait".to_string(), (*waited).max(1)),
            EventKind::Block { .. } => ("lock;block".to_string(), 1),
            EventKind::Wound { .. } => ("lock;wound".to_string(), 1),
            EventKind::Begin => ("txn;begin".to_string(), 1),
            EventKind::Commit => ("txn;commit".to_string(), 1),
            EventKind::Abort { cause } => (format!("txn;abort;{}", cause.label()), 1),
            EventKind::ReplayFailure => ("recovery;replay_failure".to_string(), 1),
            EventKind::TornWrite { .. } => ("recovery;torn_write".to_string(), 1),
            EventKind::Recovery { replayed } => {
                ("recovery;replay".to_string(), (*replayed as u64).max(1))
            }
            EventKind::Fault { kind, .. } => (format!("fault;{kind}"), 1),
            EventKind::SegmentScan { sectors, damage, .. } => {
                (format!("storage;scan;{damage}"), (*sectors).max(1))
            }
            EventKind::CorruptionDetected { kind, .. } => {
                (format!("storage;corruption;{}", kind.label()), 1)
            }
            EventKind::Checkpoint { .. } => ("storage;checkpoint".to_string(), 1),
            EventKind::GroupFlush { batch, .. } => {
                ("storage;group_flush".to_string(), (*batch).max(1))
            }
            EventKind::IoRetry { attempts, .. } => {
                ("storage;io_retry".to_string(), (*attempts as u64).max(1))
            }
            EventKind::Degraded { entered, .. } => {
                (format!("storage;degraded;{}", if *entered { "enter" } else { "exit" }), 1)
            }
            EventKind::Shed => ("storage;shed".to_string(), 1),
            EventKind::Stall { ticks } => ("storage;stall".to_string(), (*ticks).max(1)),
            EventKind::ConvergenceCheck { trials, .. } => {
                ("recovery;convergence".to_string(), (*trials).max(1))
            }
            EventKind::Prepare { .. } => ("2pc;prepare".to_string(), 1),
            EventKind::Decide { commit, .. } => {
                (format!("2pc;decide;{}", if *commit { "commit" } else { "abort" }), 1)
            }
            EventKind::InDoubt { count } => ("2pc;in_doubt".to_string(), (*count).max(1)),
            EventKind::Resolved { commit, .. } => {
                (format!("2pc;resolved;{}", if *commit { "commit" } else { "abort" }), 1)
            }
            EventKind::PhaseBegin { .. } => continue,
            EventKind::PhaseEnd { phase, ticks, .. } => {
                // Totals are tiled by their children; weighting both would
                // double-count, so totals are excluded from the flame.
                if phase.is_total() {
                    continue;
                }
                (format!("phase;{};{}", phase.path(), phase.label()), (*ticks).max(1))
            }
        };
        *weights.entry(stack).or_insert(0) += weight;
    }
    let mut out = String::new();
    for (stack, weight) in &weights {
        out.push_str(&format!("{stack} {weight}\n"));
    }
    out
}

/// Labels + counters + histogram summaries for one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsReport {
    /// The tracer's labels (combo, policy, ADT, …).
    pub labels: BTreeMap<String, String>,
    /// Logical events observed (the final clock value).
    pub events: u64,
    /// The counter projection.
    pub stats: SystemStats,
    /// Op latency (logical ticks; 0 = never blocked).
    pub op_latency: HistogramSummary,
    /// Lock-wait time for invocations that blocked.
    pub lock_wait: HistogramSummary,
    /// Begin-to-commit logical ticks.
    pub time_to_commit: HistogramSummary,
    /// Journal records replayed per crash recovery.
    pub replay_len: HistogramSummary,
    /// Sectors read per recovery segment scan.
    pub scan_len: HistogramSummary,
    /// Commit records per group-commit flush.
    pub batch_size: HistogramSummary,
    /// Group-flush latency (wall microseconds; empty in logical-time runs).
    pub flush_latency: HistogramSummary,
    /// Total logical backoff ticks per retried device op.
    pub retry_backoff: HistogramSummary,
    /// Seeded jitter ticks per transaction-restart backoff.
    pub retry_jitter: HistogramSummary,
    /// Device stall ticks observed per commit attempt that paid them.
    pub stall_latency: HistogramSummary,
    /// Logical ticks a 2PC participant spent in doubt (prepare → decide).
    pub prepare_to_decide: HistogramSummary,
}

impl MetricsReport {
    /// Snapshot a tracer's metrics.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        MetricsReport {
            labels: tracer.labels().clone(),
            events: tracer.clock(),
            stats: tracer.stats().clone(),
            op_latency: tracer.op_latency().summary(),
            lock_wait: tracer.lock_wait().summary(),
            time_to_commit: tracer.time_to_commit().summary(),
            replay_len: tracer.replay_len().summary(),
            scan_len: tracer.scan_len().summary(),
            batch_size: tracer.batch_size().summary(),
            flush_latency: tracer.flush_latency().summary(),
            retry_backoff: tracer.retry_backoff().summary(),
            retry_jitter: tracer.retry_jitter().summary(),
            stall_latency: tracer.stall_latency().summary(),
            prepare_to_decide: tracer.prepare_to_decide().summary(),
        }
    }

    /// Render as a JSON object (field order fixed for diffable artifacts).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"labels\":{},\"events\":{},\"stats\":{},",
                "\"op_latency\":{},\"lock_wait\":{},",
                "\"time_to_commit\":{},\"replay_len\":{},\"scan_len\":{},",
                "\"batch_size\":{},\"flush_latency\":{},\"retry_backoff\":{},",
                "\"retry_jitter\":{},\"stall_latency\":{},\"prepare_to_decide\":{}}}"
            ),
            json_labels(&self.labels),
            self.events,
            self.stats.to_json(),
            self.op_latency.to_json(),
            self.lock_wait.to_json(),
            self.time_to_commit.to_json(),
            self.replay_len.to_json(),
            self.scan_len.to_json(),
            self.batch_size.to_json(),
            self.flush_latency.to_json(),
            self.retry_backoff.to_json(),
            self.retry_jitter.to_json(),
            self.stall_latency.to_json(),
            self.prepare_to_decide.to_json(),
        )
    }
}

impl Tracer {
    /// Snapshot this tracer's labels, counters and histogram summaries.
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport::from_tracer(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AbortCause;
    use ccr_core::ids::{ObjectId, TxnId};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new();
        t.set_label("combo", "uip-nrbc");
        t.set_label("policy", "block");
        t.on_begin(TxnId(0));
        t.on_begin(TxnId(1));
        t.on_op(TxnId(0), ObjectId(0), || ("enq(1)".into(), "ok".into()));
        t.on_block(TxnId(1), ObjectId(0), || {
            ("deq".into(), vec![TxnId(0)], vec![(TxnId(1), vec![TxnId(0)])])
        });
        t.on_commit(TxnId(0));
        t.on_op(TxnId(1), ObjectId(0), || ("deq".into(), "got(1)".into()));
        t.on_abort(TxnId(1), AbortCause::Requested);
        t
    }

    #[test]
    fn chrome_trace_is_valid_shaped_and_deterministic() {
        let a = chrome_trace(&sample_tracer());
        let b = chrome_trace(&sample_tracer());
        assert_eq!(a, b, "same observations must render byte-identically");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"combo\":\"uip-nrbc\""));
        assert!(a.contains("\"wait_for\":{\"B\":[\"A\"]}"));
        // Balanced braces/brackets (cheap well-formedness check — no string
        // payloads here contain braces).
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn flame_summary_weights_waits_and_sorts() {
        let f = flame_summary(&sample_tracer());
        let lines: Vec<&str> = f.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "folded stacks are sorted for determinism");
        assert!(f.contains("op;enq(1) 1"));
        assert!(f.contains("lock;wait 1"), "B waited 1 tick: {f}");
        assert!(f.contains("txn;abort;requested 1"));
    }

    #[test]
    fn metrics_report_round_trips_to_json() {
        let r = sample_tracer().metrics_report();
        let js = r.to_json();
        assert!(js.starts_with("{\"labels\":{\"combo\":\"uip-nrbc\",\"policy\":\"block\"}"));
        assert!(js.contains("\"stats\":{\"begun\":2,"));
        assert!(js.contains("\"time_to_commit\":{\"count\":1,"));
        assert_eq!(r, sample_tracer().metrics_report());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
