//! # ccr-obs — deterministic tracing and metrics for the ccr runtime
//!
//! Zero-dependency observability layer (only `ccr-core` for the id types).
//! The [`Tracer`] records structured [`ObsEvent`]s across the whole
//! transaction lifecycle — begin, op invoke/response, block/unblock, wound,
//! validation, commit/abort, fault injection, and crash-recovery replay —
//! stamped with a **logical event clock** so that a seeded run produces a
//! byte-identical trace every time. Wall-clock stamps are opt-in for
//! threaded profiling.
//!
//! On top of the event stream sit:
//!
//! * [`SystemStats`] — the aggregate counters, now *derived* from events in
//!   one place ([`SystemStats::absorb`]) instead of bumped ad hoc across the
//!   runtime;
//! * [`LogHistogram`] — log-bucketed, mergeable latency histograms for op
//!   latency, lock-wait time, time-to-commit and recovery replay length;
//! * exporters: [`chrome_trace`] (Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto), [`flame_summary`] (folded-stack text),
//!   and [`MetricsReport`] (JSON metrics snapshot).
//!
//! See DESIGN.md §8 for the schema and the determinism contract.

#![warn(missing_docs)]

pub mod conflict;
pub mod event;
pub mod export;
pub mod hist;
pub mod span;
pub mod stats;
pub mod tracer;

pub use conflict::{ConflictCell, ConflictKey, ConflictMatrix};
pub use event::{AbortCause, CorruptionKind, EventKind, FaultCounter, ObsEvent, WaitGraph};
pub use export::{chrome_trace, flame_summary, json_string, MetricsReport};
pub use hist::{HistogramSummary, LogHistogram};
pub use span::{Phase, PhaseProfile, PhaseProfiles, SpanToken};
pub use stats::{project, SystemStats};
pub use tracer::Tracer;
