//! Aggregate execution counters, derived from tracer events.
//!
//! [`SystemStats`] began life in `ccr-runtime` as a bag of manually bumped
//! counters. It now lives here and is a **projection of the event stream**:
//! the [`Tracer`](crate::Tracer) folds every emitted event into these
//! counters in exactly one place ([`SystemStats::absorb`]), and
//! [`Tracer::project_stats`](crate::Tracer::project_stats) recomputes the
//! same struct from the recorded events — the equality of the two is a test
//! invariant. `ccr-runtime` re-exports this type, so existing
//! `sys.stats().committed`-style call sites are unchanged.

use crate::event::{AbortCause, CorruptionKind, EventKind, FaultCounter, ObsEvent};

/// Aggregate counters for an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (all reasons).
    pub aborted: u64,
    /// Aborts due to deferred-update validation failure.
    pub validation_aborts: u64,
    /// Operations executed.
    pub ops: u64,
    /// Invocations that came back blocked.
    pub blocks: u64,
    /// Holders aborted by the wound-wait policy.
    pub wounds: u64,
    /// Requesters aborted by the no-wait policy.
    pub conflict_aborts: u64,
    /// Undo-replay failures (weak conflict relation under UIP).
    pub replay_failures: u64,
    /// Simulated crashes survived (fault injection).
    pub crashes: u64,
    /// Crashes injected with a torn (truncated) final journal record.
    pub torn_crashes: u64,
    /// Transactions force-aborted by fault injection.
    pub forced_aborts: u64,
    /// Commits artificially delayed by fault injection.
    pub delayed_commits: u64,
    /// Wound-storm faults injected (every active transaction aborted).
    pub wound_storms: u64,
    /// Commit flushes torn at sector granularity by fault injection.
    pub sector_tears: u64,
    /// Commit flushes persisted out of order by fault injection.
    pub reordered_flushes: u64,
    /// Bit flips detected by the recovery scanner's CRC check.
    pub bitflips_detected: u64,
    /// Checkpoints written (log prefix truncations).
    pub checkpoints: u64,
    /// Transient-I/O fault injections (a budget of checked device ops armed
    /// to fail once; retries with backoff normally absorb them).
    pub transient_io_faults: u64,
    /// Disk-full fault injections (the permanent out-of-space condition).
    pub disk_full_faults: u64,
    /// Checked device ops that needed retries after transient I/O errors.
    pub io_retries: u64,
    /// Entries into read-only degraded mode (exhausted retries or a full
    /// device).
    pub degraded_entries: u64,
    /// Exits from degraded mode (a healed device proved writable again).
    pub degraded_exits: u64,
    /// Recovery-convergence oracle passes (nested crash-during-recovery
    /// sweeps that matched the baseline outcome).
    pub convergence_checks: u64,
    /// Commits shed by the admission gate (journal backlog over bound).
    pub sheds: u64,
    /// Transactions aborted for exceeding their logical-time deadline.
    pub deadline_aborts: u64,
    /// Device stall ticks observed by the durable path — the latency
    /// surplus the gray channels charged (sum over Stall events).
    pub stall_ticks: u64,
    /// Mode flips: every entry *or* exit of degraded mode (the hysteresis
    /// detector's activity figure; `degraded_entries + degraded_exits`).
    pub mode_flips: u64,
    /// Slow-device fault injections (checked ops armed to serve slowly).
    pub slow_device_faults: u64,
    /// Fsync-stall fault injections (flushes armed to hang).
    pub fsync_stall_faults: u64,
    /// 2PC PREPARE records durably journaled (yes-votes).
    pub prepares: u64,
    /// 2PC decisions durably journaled on participants (commit or abort).
    pub decides: u64,
    /// In-doubt transactions surfaced by recovery scans (sum over scans).
    pub in_doubt: u64,
    /// In-doubt transactions resolved after recovery — by the coordinator's
    /// durable decision or by presumed abort.
    pub resolved: u64,
}

impl SystemStats {
    /// Fold one event into the counters. This is the *only* place any of
    /// these counters is incremented — every layer that used to bump a field
    /// by hand now emits the corresponding event instead.
    pub fn absorb(&mut self, kind: &EventKind) {
        match kind {
            EventKind::Begin => self.begun += 1,
            EventKind::Op { .. } => self.ops += 1,
            EventKind::Block { .. } => self.blocks += 1,
            EventKind::Unblock { .. } => {}
            EventKind::Wound { .. } => {} // counted by the Abort(Wounded) that follows
            EventKind::Commit => self.committed += 1,
            EventKind::Abort { cause } => {
                self.aborted += 1;
                match cause {
                    AbortCause::Validation => self.validation_aborts += 1,
                    AbortCause::Wounded => self.wounds += 1,
                    AbortCause::NoWaitConflict => self.conflict_aborts += 1,
                    AbortCause::Deadline => self.deadline_aborts += 1,
                    AbortCause::Requested | AbortCause::Deadlock | AbortCause::External => {}
                }
            }
            EventKind::ReplayFailure => self.replay_failures += 1,
            EventKind::TornWrite { .. } => self.torn_crashes += 1,
            EventKind::Recovery { .. } => self.crashes += 1,
            EventKind::Fault { counter, .. } => {
                if let Some(c) = counter {
                    self.absorb_fault(*c);
                }
            }
            EventKind::SegmentScan { .. } => {}
            EventKind::CorruptionDetected { kind, .. } => {
                // Torn tails and interior damage are counted by their fault /
                // torn-write events; the CRC detections get their own counter.
                if *kind == CorruptionKind::BitFlip {
                    self.bitflips_detected += 1;
                }
            }
            EventKind::Checkpoint { .. } => self.checkpoints += 1,
            // Counter-neutral: the batch's commits are counted by their own
            // Commit events; the flush itself feeds histograms only.
            EventKind::GroupFlush { .. } => {}
            EventKind::IoRetry { .. } => self.io_retries += 1,
            EventKind::Degraded { entered, .. } => {
                self.mode_flips += 1;
                if *entered {
                    self.degraded_entries += 1;
                } else {
                    self.degraded_exits += 1;
                }
            }
            EventKind::Shed => self.sheds += 1,
            EventKind::Stall { ticks } => self.stall_ticks += ticks,
            EventKind::ConvergenceCheck { .. } => self.convergence_checks += 1,
            EventKind::Prepare { .. } => self.prepares += 1,
            EventKind::Decide { .. } => self.decides += 1,
            EventKind::InDoubt { count } => self.in_doubt += count,
            EventKind::Resolved { .. } => self.resolved += 1,
            // Counter-neutral: spans measure where time goes, the phases'
            // outcomes are counted by their own commit/recovery events.
            EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => {}
        }
    }

    /// Fold one *effective* injected fault into its counter (separate from
    /// [`absorb`](Self::absorb) because a fault event may be recorded
    /// without a counter bump, e.g. a force-abort that found no victim).
    pub fn absorb_fault(&mut self, counter: FaultCounter) {
        match counter {
            FaultCounter::ForcedAbort => self.forced_aborts += 1,
            FaultCounter::WoundStorm => self.wound_storms += 1,
            FaultCounter::DelayedCommit => self.delayed_commits += 1,
            FaultCounter::SectorTear => self.sector_tears += 1,
            FaultCounter::ReorderedFlush => self.reordered_flushes += 1,
            FaultCounter::TransientIo => self.transient_io_faults += 1,
            FaultCounter::DiskFull => self.disk_full_faults += 1,
            FaultCounter::SlowDevice => self.slow_device_faults += 1,
            FaultCounter::FsyncStall => self.fsync_stall_faults += 1,
        }
    }

    /// Render the counters as a JSON object (field order fixed).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"begun\":{},\"committed\":{},\"aborted\":{},\"validation_aborts\":{},",
                "\"ops\":{},\"blocks\":{},\"wounds\":{},\"conflict_aborts\":{},",
                "\"replay_failures\":{},\"crashes\":{},\"torn_crashes\":{},",
                "\"forced_aborts\":{},\"delayed_commits\":{},\"wound_storms\":{},",
                "\"sector_tears\":{},\"reordered_flushes\":{},\"bitflips_detected\":{},",
                "\"checkpoints\":{},\"transient_io_faults\":{},\"disk_full_faults\":{},",
                "\"io_retries\":{},\"degraded_entries\":{},\"degraded_exits\":{},",
                "\"convergence_checks\":{},\"sheds\":{},\"deadline_aborts\":{},",
                "\"stall_ticks\":{},\"mode_flips\":{},\"slow_device_faults\":{},",
                "\"fsync_stall_faults\":{},\"prepares\":{},\"decides\":{},",
                "\"in_doubt\":{},\"resolved\":{}}}"
            ),
            self.begun,
            self.committed,
            self.aborted,
            self.validation_aborts,
            self.ops,
            self.blocks,
            self.wounds,
            self.conflict_aborts,
            self.replay_failures,
            self.crashes,
            self.torn_crashes,
            self.forced_aborts,
            self.delayed_commits,
            self.wound_storms,
            self.sector_tears,
            self.reordered_flushes,
            self.bitflips_detected,
            self.checkpoints,
            self.transient_io_faults,
            self.disk_full_faults,
            self.io_retries,
            self.degraded_entries,
            self.degraded_exits,
            self.convergence_checks,
            self.sheds,
            self.deadline_aborts,
            self.stall_ticks,
            self.mode_flips,
            self.slow_device_faults,
            self.fsync_stall_faults,
            self.prepares,
            self.decides,
            self.in_doubt,
            self.resolved,
        )
    }
}

/// Recompute the counter projection from a recorded event stream. Equals the
/// incrementally maintained stats whenever event recording was on for the
/// whole run (asserted by the tracer tests).
pub fn project(events: &[ObsEvent]) -> SystemStats {
    let mut s = SystemStats::default();
    for e in events {
        s.absorb(&e.kind);
    }
    s
}
